"""Distributed trace context: correlation IDs across process borders.

A :class:`TraceContext` carries the identity of one end-to-end request —
a ``trace_id`` minted by whoever saw the request first (the client, or
the daemon for clients that send none) and the ``parent_span_id`` of the
enclosing span, if any.  It crosses:

* **HTTP**, as the ``X-Trace-Id`` / ``X-Parent-Span-Id`` headers
  (:meth:`TraceContext.to_headers` / :func:`context_from_headers`);
* **the multiprocessing boundary**, as a plain JSON-safe dict
  (:meth:`TraceContext.to_wire` / :func:`context_from_wire`) inside the
  worker job message.

Within one process the context is **ambient and thread-local**: arm it
with :class:`bound_context` and any code on the same thread — the
structured logger in particular — picks it up via
:func:`current_context` without explicit plumbing.

IDs are random hex (`trace_id` 128-bit, span ids 64-bit), matching the
W3C trace-context sizes without committing to its header syntax — the
service speaks its own two plain headers.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

#: HTTP header names (case-insensitive on the wire; the daemon folds
#: incoming header names to lowercase).
TRACE_ID_HEADER = "X-Trace-Id"
PARENT_SPAN_HEADER = "X-Parent-Span-Id"

#: Accepted id shape: hex, bounded so a hostile header cannot smuggle
#: an unbounded or log-breaking string into every correlated log line.
_ID_RE = re.compile(r"^[0-9a-f]{8,64}$")


def new_trace_id() -> str:
    """A fresh 128-bit random trace id (32 hex chars)."""
    return os.urandom(16).hex()


def new_span_id() -> str:
    """A fresh 64-bit random span id (16 hex chars)."""
    return os.urandom(8).hex()


def valid_trace_id(value: object) -> bool:
    """True when ``value`` is usable as a trace/span id."""
    return isinstance(value, str) and bool(_ID_RE.match(value))


@dataclass
class TraceContext:
    """Identity of one end-to-end request.

    Attributes:
        trace_id: correlation id shared by every span and log line of
            the request, across client, daemon, and worker processes.
        parent_span_id: span id of the caller's enclosing span (``None``
            at the root).
        sampled: whether this request's spans are being recorded; an
            unsampled context still correlates log lines.
    """

    trace_id: str
    parent_span_id: Optional[str] = None
    sampled: bool = True

    def to_headers(self) -> Dict[str, str]:
        headers = {TRACE_ID_HEADER: self.trace_id}
        if self.parent_span_id:
            headers[PARENT_SPAN_HEADER] = self.parent_span_id
        return headers

    def to_wire(self) -> dict:
        """JSON-safe form for the worker job message."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "sampled": self.sampled,
        }


def context_from_headers(headers: Mapping[str, str]) -> Optional[TraceContext]:
    """Decode the trace headers of one request (lowercase header keys).

    Returns ``None`` when no trace header is present.  A malformed
    ``X-Trace-Id`` is *replaced* with a fresh id rather than rejected:
    tracing is diagnostics, and a 400 for a bad diagnostic header would
    fail requests that would otherwise succeed.
    """
    raw = headers.get(TRACE_ID_HEADER.lower())
    if raw is None:
        return None
    trace_id = raw.strip().lower()
    if not valid_trace_id(trace_id):
        trace_id = new_trace_id()
    parent = headers.get(PARENT_SPAN_HEADER.lower())
    if parent is not None:
        parent = parent.strip().lower()
        if not valid_trace_id(parent):
            parent = None
    return TraceContext(trace_id=trace_id, parent_span_id=parent)


def context_from_wire(data: Optional[Mapping]) -> Optional[TraceContext]:
    """Rehydrate a :meth:`TraceContext.to_wire` dict (tolerant)."""
    if not isinstance(data, Mapping):
        return None
    trace_id = data.get("trace_id")
    if not valid_trace_id(trace_id):
        return None
    parent = data.get("parent_span_id")
    if not valid_trace_id(parent):
        parent = None
    return TraceContext(
        trace_id=trace_id,
        parent_span_id=parent,
        sampled=bool(data.get("sampled", True)),
    )


# ----------------------------------------------------------------------
# Ambient (thread-local) context
# ----------------------------------------------------------------------

_state = threading.local()


def current_context() -> Optional[TraceContext]:
    """The thread's bound context, or ``None`` outside any request."""
    return getattr(_state, "context", None)


class bound_context:
    """Context manager binding a :class:`TraceContext` to this thread.

    Nested bindings restore the previous context on exit, so a client
    issuing sub-requests inside a traced request keeps correlation.
    """

    def __init__(self, context: Optional[TraceContext]) -> None:
        self._context = context

    def __enter__(self) -> Optional[TraceContext]:
        self._previous = current_context()
        _state.context = self._context
        return self._context

    def __exit__(self, *exc) -> bool:
        _state.context = self._previous
        return False


__all__ = [
    "TRACE_ID_HEADER",
    "PARENT_SPAN_HEADER",
    "TraceContext",
    "bound_context",
    "context_from_headers",
    "context_from_wire",
    "current_context",
    "new_span_id",
    "new_trace_id",
    "valid_trace_id",
]

"""Cross-cutting observability: pipeline spans and a metrics registry.

Two independent, individually armable instruments:

* :mod:`repro.obs.spans` — a nested wall-clock **span tracer** over the
  offline pipeline (parse → DAG analysis → HPDS scheduling → TB
  allocation → kernelgen → simulation), with per-span counters;
* :mod:`repro.obs.metrics` — a **metrics registry** (labelled counters,
  gauges, histograms) the runtime publishes into, exportable as JSON or
  Prometheus text format.

Both are opt-in and ~zero cost when disarmed: instrumentation sites
either call :func:`repro.obs.spans.span` (which returns a shared no-op
context manager) or guard on a ``None`` registry reference.  The
:func:`observe` context manager arms both at once — this is what
``resccl profile`` uses::

    from repro import obs

    with obs.observe() as ob:
        plan = backend.plan(cluster, program, nbytes)
        report = simulate(plan, record_trace=True)
    print(ob.tracer.render())
    print(ob.registry.to_prometheus())
"""

from __future__ import annotations

from dataclasses import dataclass

from .context import (
    TraceContext,
    bound_context,
    context_from_headers,
    context_from_wire,
    current_context,
    new_span_id,
    new_trace_id,
)
from .log import JsonLogger, LogRing, get_logger, log_ring
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
    current_registry,
    install_registry,
)
from .spans import (
    Span,
    SpanTracer,
    current_span,
    current_tracer,
    install_tracer,
    span,
    tracing,
)


@dataclass
class Observation:
    """The armed instruments yielded by :func:`observe`."""

    tracer: SpanTracer
    registry: MetricsRegistry


class observe:
    """Arm a fresh span tracer *and* metrics registry together."""

    def __enter__(self) -> Observation:
        self._tracing = tracing()
        self._collecting = collecting()
        tracer = self._tracing.__enter__()
        registry = self._collecting.__enter__()
        return Observation(tracer=tracer, registry=registry)

    def __exit__(self, *exc) -> bool:
        self._collecting.__exit__(*exc)
        self._tracing.__exit__(*exc)
        return False


__all__ = [
    "Span",
    "SpanTracer",
    "span",
    "current_span",
    "current_tracer",
    "install_tracer",
    "tracing",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_registry",
    "install_registry",
    "collecting",
    "Observation",
    "observe",
    "TraceContext",
    "bound_context",
    "context_from_headers",
    "context_from_wire",
    "current_context",
    "new_span_id",
    "new_trace_id",
    "JsonLogger",
    "LogRing",
    "get_logger",
    "log_ring",
]

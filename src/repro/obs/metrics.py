"""Metrics registry: labelled counters, gauges, and histograms.

The runtime publishes operational measurements here — per-link bytes and
busy time, FIFO credit stalls and queue depths, flow admissions and rate
reallocations, fault/recovery counts — when a registry is armed via
:func:`collecting` (or :func:`repro.obs.observe`).  Publishers hold a
reference obtained from :func:`current_registry` at construction time
and guard every publish with a ``None`` check, so the disarmed path
costs one attribute test.

Exports: :meth:`MetricsRegistry.to_json` (nested dict) and
:meth:`MetricsRegistry.to_prometheus` (Prometheus text exposition
format, one sample per label set).

Metric names use Prometheus conventions: ``<subsystem>_<what>_<unit>``
with ``_total`` suffixes on counters (``sim_credit_stalls_total``,
``net_flows_admitted_total``, ``sim_link_bytes_total{link="..."}``).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (microsecond-scale durations
#: and small integer depths both fit this decade ladder).
DEFAULT_BUCKETS = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label escaping: ``\\``, ``"``, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value, one series per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.series: Dict[LabelKey, float] = {}

    def inc(self, value: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0.0) + value

    def value(self, **labels: str) -> float:
        return self.series.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self.series.items())


class Gauge:
    """Point-in-time value, one series per label set."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.series: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self.series[_label_key(labels)] = value

    def value(self, **labels: str) -> float:
        return self.series.get(_label_key(labels), 0.0)

    def samples(self) -> List[Tuple[LabelKey, float]]:
        return sorted(self.series.items())


class _HistogramSeries:
    __slots__ = ("bucket_counts", "count", "sum", "min", "max", "exemplars")

    def __init__(self, nbuckets: int) -> None:
        self.bucket_counts = [0] * (nbuckets + 1)  # +inf bucket last
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        # bucket index -> {"labels": {...}, "value": v, "ts": t};
        # lazily allocated — most series never carry exemplars.
        self.exemplars: Optional[Dict[int, dict]] = None

    def set_exemplar(self, index: int, labels: Dict[str, str],
                     value: float, ts: Optional[float] = None) -> None:
        if self.exemplars is None:
            self.exemplars = {}
        self.exemplars[index] = {
            "labels": dict(labels),
            "value": value,
            "ts": time.time() if ts is None else ts,
        }


class Histogram:
    """Cumulative-bucket distribution, one series per label set.

    Buckets can carry OpenMetrics-style **exemplars**: pass
    ``exemplar={"trace_id": ...}`` to :meth:`observe` and the bucket the
    value lands in remembers that reference (last-writer-wins).  The
    service daemon attaches the ``trace_id`` of retained requests, so a
    p99 bucket in ``/metrics`` links to a trace ``/debug/traces/<id>``
    can still return.  Rendering is strictly additive — series without
    exemplars render byte-identically to before exemplars existed.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self.series: Dict[LabelKey, _HistogramSeries] = {}

    def _bucket_index(self, value: float) -> int:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                return index
        return len(self.buckets)  # +Inf

    def observe(
        self,
        value: float,
        *,
        exemplar: Optional[Dict[str, str]] = None,
        **labels: str,
    ) -> None:
        key = _label_key(labels)
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = _HistogramSeries(len(self.buckets))
        series.count += 1
        series.sum += value
        series.min = min(series.min, value)
        series.max = max(series.max, value)
        index = self._bucket_index(value)
        series.bucket_counts[index] += 1
        if exemplar:
            series.set_exemplar(index, exemplar, value)

    def samples(self) -> List[Tuple[LabelKey, _HistogramSeries]]:
        return sorted(self.series.items(), key=lambda item: item[0])


class MetricsRegistry:
    """Creates, deduplicates, and exports metrics.

    Convenience forms (``inc`` / ``set`` / ``observe``) auto-create the
    metric on first use, which keeps publisher call sites to one line.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        # (source, metric name, label key) -> last cumulative snapshot
        # seen from that source; see merge_json(source=...).
        self._watermarks: Dict[Tuple, object] = {}

    # -- typed accessors ------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help)

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def _get_or_create(self, name: str, cls, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    # -- one-line publish helpers --------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: str) -> None:
        self.counter(name).inc(value, **labels)

    def set(self, name: str, value: float, **labels: str) -> None:
        self.gauge(name).set(value, **labels)

    def observe(
        self,
        name: str,
        value: float,
        *,
        exemplar: Optional[Dict[str, str]] = None,
        **labels: str,
    ) -> None:
        self.histogram(name).observe(value, exemplar=exemplar, **labels)

    def get(self, name: str):
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- export ---------------------------------------------------------

    def to_json(self) -> dict:
        """Nested dict: name -> {type, help, samples: [{labels, ...}]}."""
        out: Dict[str, dict] = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: dict = {"type": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["samples"] = []
                for key, s in metric.samples():
                    sample = {
                        "labels": dict(key),
                        "count": s.count,
                        "sum": s.sum,
                        "min": s.min if s.count else None,
                        "max": s.max if s.count else None,
                        "bucket_counts": list(s.bucket_counts),
                    }
                    if s.exemplars:
                        # str keys: JSON round-trips must stay lossless.
                        sample["exemplars"] = {
                            str(i): dict(ex)
                            for i, ex in sorted(s.exemplars.items())
                        }
                    entry["samples"].append(sample)
            else:
                entry["samples"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in metric.samples()
                ]
            out[name] = entry
        return out

    def merge_json(self, data: dict, source: Optional[str] = None) -> None:
        """Fold a :meth:`to_json` export into this registry.

        Without ``source`` (the :func:`parallel_sweep` mode), exports
        are **disjoint deltas**: counters add, gauges overwrite
        (last-merged-wins, matching sequential execution), and histogram
        series accumulate count/sum/min/max/bucket_counts.  Buckets of
        an incoming histogram must match any existing metric of the same
        name.

        With ``source`` (the service daemon folding worker registries),
        exports are **cumulative snapshots** of that source's registry:
        the registry keeps a per-``(source, series)`` watermark and
        merges only the positive delta since the last snapshot, so
        re-reported totals never double-count.  A counter or bucket
        falling *below* its watermark means the source process was
        replaced and its registry reset (a respawned service worker);
        the full new value is merged — totals stay monotonic, nothing is
        lost — and ``service_worker_restarts_total{source=...,
        detected="counter-reset"}`` is incremented once per such merge.

        Histogram exemplars travel along and overwrite (last-writer-
        wins), matching their per-bucket semantics.
        """
        regressed = False
        for name, entry in data.items():
            kind = entry.get("type")
            samples = entry.get("samples", ())
            if kind == "counter":
                metric = self.counter(name, entry.get("help", ""))
                for sample in samples:
                    labels = sample.get("labels", {})
                    value = sample["value"]
                    if source is None:
                        metric.inc(value, **labels)
                        continue
                    mark_key = (source, name, _label_key(labels))
                    watermark = self._watermarks.get(mark_key, 0.0)
                    if value >= watermark:
                        delta = value - watermark
                    else:
                        regressed = True
                        delta = value
                    metric.inc(delta, **labels)
                    self._watermarks[mark_key] = value
            elif kind == "gauge":
                metric = self.gauge(name, entry.get("help", ""))
                for sample in samples:
                    metric.set(sample["value"], **sample.get("labels", {}))
            elif kind == "histogram":
                buckets = tuple(entry.get("buckets", DEFAULT_BUCKETS))
                metric = self.histogram(name, entry.get("help", ""), buckets)
                if metric.buckets != buckets:
                    raise ValueError(
                        f"histogram {name!r}: incoming buckets {buckets} "
                        f"do not match registered {metric.buckets}"
                    )
                for sample in samples:
                    key = _label_key(sample.get("labels", {}))
                    series = metric.series.get(key)
                    if series is None:
                        series = metric.series[key] = _HistogramSeries(
                            len(metric.buckets)
                        )
                    count = sample["count"]
                    total = sample["sum"]
                    bucket_counts = list(sample["bucket_counts"])
                    if source is not None:
                        mark_key = (source, name, key)
                        mark = self._watermarks.get(mark_key)
                        if mark is not None:
                            # Bucket counts are ints and strictly
                            # monotone within one source process; any
                            # decrease is a registry reset.
                            reset = count < mark["count"] or any(
                                new < old for new, old in
                                zip(bucket_counts, mark["bucket_counts"])
                            )
                            if reset:
                                regressed = True
                            else:
                                count = count - mark["count"]
                                total = total - mark["sum"]
                                bucket_counts = [
                                    new - old for new, old in
                                    zip(bucket_counts, mark["bucket_counts"])
                                ]
                        self._watermarks[mark_key] = {
                            "count": sample["count"],
                            "sum": sample["sum"],
                            "bucket_counts": list(sample["bucket_counts"]),
                        }
                    series.count += count
                    series.sum += total
                    if count and sample["count"]:
                        series.min = min(series.min, sample["min"])
                        series.max = max(series.max, sample["max"])
                    for index, bucket_count in enumerate(bucket_counts):
                        series.bucket_counts[index] += bucket_count
                    for idx_str, ex in (sample.get("exemplars") or {}).items():
                        series.set_exemplar(
                            int(idx_str),
                            ex.get("labels", {}),
                            ex.get("value", 0.0),
                            ex.get("ts"),
                        )
            else:
                raise ValueError(f"metric {name!r}: unknown type {kind!r}")
        if regressed and source is not None:
            self.inc(
                "service_worker_restarts_total",
                1,
                source=source,
                detected="counter-reset",
            )

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, series in metric.samples():
                    cumulative = 0
                    for index, (bound, count) in enumerate(zip(
                        metric.buckets, series.bucket_counts
                    )):
                        cumulative += count
                        bucket_key = key + (("le", _fmt(bound)),)
                        lines.append(
                            f"{name}_bucket{_render_labels(bucket_key)} "
                            f"{cumulative}"
                            f"{_render_exemplar(series, index)}"
                        )
                    inf_key = key + (("le", "+Inf"),)
                    lines.append(
                        f"{name}_bucket{_render_labels(inf_key)} "
                        f"{series.count}"
                        f"{_render_exemplar(series, len(metric.buckets))}"
                    )
                    lines.append(
                        f"{name}_sum{_render_labels(key)} {_fmt(series.sum)}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(key)} {series.count}"
                    )
            else:
                for key, value in metric.samples():
                    lines.append(
                        f"{name}{_render_labels(key)} {_fmt(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self, limit: int = 0) -> str:
        """Compact human-readable dump for CLI output."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                for key, series in metric.samples():
                    mean = series.sum / series.count if series.count else 0.0
                    lines.append(
                        f"  {name}{_render_labels(key)} "
                        f"count={series.count} mean={mean:.1f} "
                        f"max={series.max if series.count else 0:.1f}"
                    )
            else:
                for key, value in metric.samples():
                    lines.append(
                        f"  {name}{_render_labels(key)} {_fmt(value)}"
                    )
        if limit and len(lines) > limit:
            hidden = len(lines) - limit
            lines = lines[:limit] + [f"  ... {hidden} more series"]
        return "\n".join(lines)


def _fmt(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_exemplar(series: _HistogramSeries, index: int) -> str:
    """OpenMetrics exemplar suffix for one bucket line ('' when none).

    ``name_bucket{le="x"} N # {trace_id="..."} value timestamp`` — only
    emitted for buckets that explicitly carry an exemplar, so registries
    that never attach one render byte-identically to before.
    """
    if not series.exemplars:
        return ""
    ex = series.exemplars.get(index)
    if ex is None:
        return ""
    labels = _render_labels(_label_key(ex["labels"]))
    return f" # {labels or '{}'} {_fmt(ex['value'])} {ex['ts']:.3f}"


# ----------------------------------------------------------------------
# Ambient (module-level) registry
# ----------------------------------------------------------------------

_current: Optional[MetricsRegistry] = None


def current_registry() -> Optional[MetricsRegistry]:
    """The armed registry, or ``None`` when metrics collection is off."""
    return _current


def install_registry(registry: Optional[MetricsRegistry]) -> None:
    """Arm (or, with ``None``, disarm) the ambient registry."""
    global _current
    _current = registry


class collecting:
    """Context manager arming a fresh :class:`MetricsRegistry`."""

    def __enter__(self) -> MetricsRegistry:
        self._previous = _current
        registry = MetricsRegistry()
        install_registry(registry)
        return registry

    def __exit__(self, *exc) -> bool:
        install_registry(self._previous)
        return False


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "current_registry",
    "install_registry",
    "collecting",
]

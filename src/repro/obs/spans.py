"""Pipeline span tracing: nested wall-clock timing with counters.

A :class:`SpanTracer` records a tree of named spans over the offline
pipeline — parse, DAG analysis, HPDS scheduling, TB allocation, kernel
generation, simulation — each carrying wall time (microseconds since the
tracer was armed), free-form string attributes, and numeric counters
(tasks scheduled, merges accepted, DAG nodes, ...).

Tracing is **opt-in and free when off**: instrumentation sites call the
module-level :func:`span` helper, which returns a shared null context
manager whenever no tracer is installed — one global read and one no-op
method call, no allocation, no clock read.  Arm a tracer with
:func:`tracing`::

    from repro.obs import tracing

    with tracing() as tracer:
        compiled = ResCCLCompiler().compile(program, cluster)
    print(tracer.render())

Instrumented code inside the ``with`` block nests automatically::

    with span("scheduling") as sp:
        pipeline = hpds_schedule(dag)
        sp.set(tasks_scheduled=pipeline.task_count)
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional


class Span:
    """One timed region of the pipeline.

    Attributes:
        name: region name (``parsing``, ``scheduling``, ``simulate``...).
        start_us / end_us: wall-clock bounds, microseconds relative to
            the owning tracer's arming instant.
        attrs: free-form string attributes (algorithm, backend, ...).
        counters: numeric measurements set by the instrumented code.
        children: nested spans, in start order.
    """

    __slots__ = ("name", "start_us", "end_us", "attrs", "counters", "children")

    def __init__(self, name: str, start_us: float, attrs: Dict[str, str]) -> None:
        self.name = name
        self.start_us = start_us
        self.end_us = start_us
        self.attrs = attrs
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us

    @property
    def self_time_us(self) -> float:
        """Duration not covered by child spans."""
        return self.duration_us - sum(c.duration_us for c in self.children)

    def set(self, **counters: float) -> None:
        """Set (overwrite) counter values on this span."""
        self.counters.update(counters)

    def incr(self, name: str, value: float = 1) -> None:
        """Increment one counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def to_dict(self) -> dict:
        """JSON-friendly nested representation."""
        return {
            "name": self.name,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [c.to_dict() for c in self.children],
        }


class _NullSpan:
    """Absorbs counter calls when tracing is disarmed."""

    __slots__ = ()

    def set(self, **counters: float) -> None:
        pass

    def incr(self, name: str, value: float = 1) -> None:
        pass


class _NullSpanContext:
    """Shared no-op context manager returned while disarmed."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class _SpanContext:
    """Context manager pushing/popping one span on an armed tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "SpanTracer", name: str, attrs: Dict[str, str]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self._span = self._tracer._push(self._name, self._attrs)
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer._pop(self._span)
        return False


class SpanTracer:
    """Collects a forest of nested spans with a monotonic clock.

    Safe under concurrent use from several threads: the open-span stack
    is **per thread**, so spans opened by thread A never nest under an
    unrelated span that thread B happens to have open (which a single
    shared stack would do — and did, before the service daemon ran
    tracers from multiple threads).  Spans of all threads land in one
    shared ``roots`` forest in completion-independent *start* order.
    Mutations are single ``list.append``/``dict`` operations, atomic
    under the GIL, so no lock sits on the hot path.

    ``epoch_wall`` records the wall-clock (``time.time()``) instant of
    the monotonic epoch, so a tracer serialized out of a worker process
    can be offset-aligned into another process's request timeline.
    """

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        #: Wall-clock instant of the monotonic epoch (cross-process
        #: alignment anchor; wall and monotonic clocks are sampled
        #: back-to-back so the skew is one clock-read).
        self.epoch_wall = time.time()
        self.roots: List[Span] = []
        self._stacks: Dict[int, List[Span]] = {}

    def _now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def _thread_stack(self) -> List[Span]:
        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            stack = self._stacks[ident] = []
        return stack

    def _push(self, name: str, attrs: Dict[str, str]) -> Span:
        span = Span(name, self._now_us(), attrs)
        stack = self._thread_stack()
        if stack:
            stack[-1].children.append(span)
        else:
            self.roots.append(span)
        stack.append(span)
        return span

    def _pop(self, span: Span) -> None:
        span.end_us = self._now_us()
        # Tolerate mismatched exits (an exception may unwind several
        # levels): pop up to and including the span being closed.
        stack = self._thread_stack()
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.end_us = span.end_us

    def span(self, name: str, **attrs: str) -> _SpanContext:
        """Open a nested span under the current one (this thread's)."""
        return _SpanContext(self, name, attrs)

    def current(self) -> Span:
        """This thread's innermost open span (null when none is open)."""
        stack = self._stacks.get(threading.get_ident())
        if stack:
            return stack[-1]
        return NULL_SPAN  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_dict(self) -> List[dict]:
        return [root.to_dict() for root in self.roots]

    def render(self) -> str:
        """ASCII span tree with durations and counters."""
        lines: List[str] = []

        def visit(span: Span, depth: int) -> None:
            pad = "  " * depth
            detail = ""
            if span.attrs:
                detail += " " + " ".join(
                    f"{k}={v}" for k, v in sorted(span.attrs.items())
                )
            if span.counters:
                detail += "  [" + ", ".join(
                    f"{k}={_fmt_counter(v)}"
                    for k, v in sorted(span.counters.items())
                ) + "]"
            lines.append(
                f"{pad}{span.name:<{max(1, 24 - 2 * depth)}} "
                f"{span.duration_us / 1000.0:9.3f} ms{detail}"
            )
            for child in span.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)

    def to_chrome_events(self, pid: int = 9992, tid: int = 0) -> List[dict]:
        """Spans as Chrome trace-event ``X`` entries (wall-clock µs).

        NOTE: span timestamps are *wall-clock* microseconds since the
        tracer was armed, while TB lanes use *simulated* microseconds;
        the exporter places spans in their own process so the two time
        bases never share a track.
        """
        events: List[dict] = []

        def visit(span: Span) -> None:
            args: Dict[str, object] = dict(span.attrs)
            args.update(span.counters)
            events.append(
                {
                    "name": span.name,
                    "cat": "pipeline",
                    "ph": "X",
                    "ts": span.start_us,
                    "dur": span.duration_us,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            for child in span.children:
                visit(child)

        for root in self.roots:
            visit(root)
        return events


def _fmt_counter(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.2f}"


# ----------------------------------------------------------------------
# Ambient (module-level) tracer
# ----------------------------------------------------------------------

_current: Optional[SpanTracer] = None


def current_tracer() -> Optional[SpanTracer]:
    """The armed tracer, or ``None`` when tracing is off."""
    return _current


def install_tracer(tracer: Optional[SpanTracer]) -> None:
    """Arm (or, with ``None``, disarm) the ambient tracer."""
    global _current
    _current = tracer


def span(name: str, **attrs: str):
    """Open a span on the ambient tracer; a shared no-op when disarmed."""
    tracer = _current
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name, **attrs)


def current_span():
    """Innermost open span of the ambient tracer (null when disarmed)."""
    tracer = _current
    if tracer is None:
        return NULL_SPAN
    return tracer.current()


class tracing:
    """Context manager arming a fresh :class:`SpanTracer`.

    Nested arming restores the previous tracer on exit.
    """

    def __enter__(self) -> SpanTracer:
        self._previous = _current
        tracer = SpanTracer()
        install_tracer(tracer)
        return tracer

    def __exit__(self, *exc) -> bool:
        install_tracer(self._previous)
        return False


__all__ = [
    "Span",
    "SpanTracer",
    "NULL_SPAN",
    "span",
    "current_span",
    "current_tracer",
    "install_tracer",
    "tracing",
]

"""Structured JSON logging with trace correlation.

One log line is one JSON object::

    {"ts": 1754640000.123, "level": "info", "component": "daemon",
     "event": "request-finished", "trace_id": "4f2a...", "status": 200}

Two sinks, independently armed:

* a process-wide bounded **ring buffer** (always on) — the flight
  recorder snapshots a request's correlated tail from it, and tests
  read it directly via :func:`log_ring`;
* an optional **stream** (armed with :func:`configure`) — ``resccl
  serve`` points it at stderr so the daemon's operational output is
  machine-parseable; embedded daemons (tests, benchmarks) leave it off
  and stay silent.

Loggers are cheap named handles (:func:`get_logger`); every record
automatically picks up the thread's ambient
:class:`~repro.obs.context.TraceContext` so call sites never thread a
``trace_id`` argument through.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, TextIO

from .context import current_context

#: Default ring capacity: enough to hold the log tail of every request
#: the flight recorder can retain, small enough to be memory-noise.
DEFAULT_RING_CAPACITY = 2048


class LogRing:
    """Bounded in-memory buffer of recent structured log records."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        self._records: Deque[dict] = deque(maxlen=max(1, capacity))
        self._lock = threading.Lock()

    def append(self, record: dict) -> None:
        with self._lock:
            self._records.append(record)

    def tail(
        self, trace_id: Optional[str] = None, limit: int = 200
    ) -> List[dict]:
        """Most recent records, oldest first, optionally per-trace."""
        with self._lock:
            records = list(self._records)
        if trace_id is not None:
            records = [r for r in records if r.get("trace_id") == trace_id]
        return records[-limit:] if limit else records

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


_ring = LogRing()
_stream: Optional[TextIO] = None
_stream_lock = threading.Lock()


def log_ring() -> LogRing:
    """The process-wide ring buffer."""
    return _ring


def configure(
    stream: Optional[TextIO] = None,
    ring_capacity: Optional[int] = None,
) -> None:
    """Arm (or with ``stream=None`` disarm) the stream sink.

    ``ring_capacity`` replaces the ring buffer with a fresh one of the
    given size — existing records are dropped.
    """
    global _ring, _stream
    _stream = stream
    if ring_capacity is not None:
        _ring = LogRing(ring_capacity)


class JsonLogger:
    """Named handle emitting structured records into the sinks."""

    __slots__ = ("component",)

    def __init__(self, component: str) -> None:
        self.component = component

    def log(self, level: str, event: str, **fields: object) -> dict:
        record: dict = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "event": event,
        }
        context = current_context()
        if context is not None:
            record["trace_id"] = context.trace_id
        record.update(fields)
        _ring.append(record)
        stream = _stream
        if stream is not None:
            try:
                line = json.dumps(record, default=str, sort_keys=False)
            except (TypeError, ValueError):
                line = json.dumps(
                    {k: str(v) for k, v in record.items()}
                )
            with _stream_lock:
                try:
                    stream.write(line + "\n")
                    stream.flush()
                except (OSError, ValueError):
                    pass  # a closed stream must never fail the caller
        return record

    def info(self, event: str, **fields: object) -> dict:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> dict:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> dict:
        return self.log("error", event, **fields)


_loggers: Dict[str, JsonLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(component: str) -> JsonLogger:
    """The (cached) logger for one component name."""
    logger = _loggers.get(component)
    if logger is None:
        with _loggers_lock:
            logger = _loggers.setdefault(component, JsonLogger(component))
    return logger


__all__ = [
    "DEFAULT_RING_CAPACITY",
    "JsonLogger",
    "LogRing",
    "configure",
    "get_logger",
    "log_ring",
]

"""Table 1: global link utilization of existing algorithms on MSCCL."""

from __future__ import annotations

from ..algorithms import (
    hm_allgather,
    hm_allreduce,
    mesh_allgather,
    mesh_allreduce,
)
from ..baselines import MSCCLBackend
from ..ir.task import Collective
from ..synth import TACCLSynthesizer, TECCLSynthesizer
from ..topology import single_node
from .base import (
    DEFAULT_MAX_MICROBATCHES,
    MB,
    ExperimentResult,
    a100_cluster,
    run_backend,
)

PAPER_ROWS = {
    8: (0.767, 0.710, 0.516, 0.457, 0.527),
    16: (0.675, 0.618, 0.343, 0.318, 0.332),
    32: (0.668, 0.461, 0.446, 0.419, 0.381),
}


def _expert_programs(cluster):
    if cluster.nodes == 1:
        return (
            mesh_allgather(cluster.world_size),
            mesh_allreduce(cluster.world_size),
        )
    return (
        hm_allgather(cluster.nodes, cluster.gpus_per_node),
        hm_allreduce(cluster.nodes, cluster.gpus_per_node),
    )


def run(buffer_mb: int = 256, scales=(1, 2, 4)) -> ExperimentResult:
    """Measure MS/TA/TE link utilization under the MSCCL backend.

    ``data`` maps world size -> (MS-AG, MS-AR, TA-AG, TA-AR, TE-AG)
    utilization fractions.
    """
    buffer_bytes = buffer_mb * MB
    results = {}
    for nodes in scales:
        cluster = single_node(8) if nodes == 1 else a100_cluster(nodes, 8)
        expert = MSCCLBackend(max_microbatches=DEFAULT_MAX_MICROBATCHES)
        synth_backend = MSCCLBackend(
            instances=4, max_microbatches=DEFAULT_MAX_MICROBATCHES
        )
        ms_ag, ms_ar = _expert_programs(cluster)
        ta_ag = TACCLSynthesizer().synthesize(cluster, Collective.ALLGATHER)
        ta_ar = TACCLSynthesizer().synthesize(cluster, Collective.ALLREDUCE)
        te_ag = TECCLSynthesizer().synthesize(cluster, Collective.ALLGATHER)
        results[cluster.world_size] = tuple(
            run_backend(
                backend, cluster, buffer_bytes, program=program
            ).link_utilization()
            for backend, program in (
                (expert, ms_ag),
                (expert, ms_ar),
                (synth_backend, ta_ag),
                (synth_backend, ta_ar),
                (synth_backend, te_ag),
            )
        )

    rows = []
    for scale, values in results.items():
        rows.append([f"{scale} GPUs"] + [f"{v:.1%}" for v in values])
        if scale in PAPER_ROWS:
            rows.append(
                ["  (paper)"] + [f"{v:.1%}" for v in PAPER_ROWS[scale]]
            )
    return ExperimentResult(
        name="table1",
        title="Table 1 — global link utilization under the MSCCL backend",
        headers=["Topo", "MS-AG", "MS-AR", "TA-AG", "TA-AR", "TE-AG"],
        rows=rows,
        data=results,
        paper_note="expert 46-77%, synthesized 32-53%, degrading with scale",
    )


__all__ = ["run", "PAPER_ROWS"]

"""Figure 4: impact of TB parallelism on P2P bandwidth over one NIC."""

from __future__ import annotations

from ..ir.dag import build_dag
from ..ir.task import Collective, CommType, Transfer
from ..lang.builder import AlgoProgram
from ..runtime import simulate
from ..runtime.plan import (
    ExecutionPlan,
    Invocation,
    Side,
    SimConfig,
    TBProgram,
)
from .base import MB, ExperimentResult, a100_cluster

CHUNK = MB
N_MB = 24
WARPS_PER_TB = 4  # the default (small) blocks of the motivation study


def p2p_plan(tb_count: int) -> ExecutionPlan:
    """Rank 0 -> rank 8 (different servers): one NIC, ``tb_count`` TBs.

    The payload splits into ``tb_count`` parallel streams (distinct
    chunk ids), one per sending TB — the emulated two-GPU AllGather of
    the paper's study.
    """
    cluster = a100_cluster(2, 8)
    program = AlgoProgram.create(
        16, Collective.ALLGATHER, name=f"p2p-{tb_count}tb"
    )
    for stream in range(tb_count):
        program.transfers.append(
            Transfer(src=0, dst=8, step=0, chunk=stream, op=CommType.RECV)
        )
    dag = build_dag(program.transfers, cluster)
    tbs = []
    for stream, task in enumerate(dag.tasks):
        tbs.append(
            TBProgram(
                rank=0,
                tb_index=stream,
                invocations=[
                    Invocation(task.task_id, Side.SEND, mb)
                    for mb in range(N_MB)
                ],
                nwarps=WARPS_PER_TB,
            )
        )
        tbs.append(
            TBProgram(
                rank=8,
                tb_index=stream,
                invocations=[
                    Invocation(task.task_id, Side.RECV, mb)
                    for mb in range(N_MB)
                ],
                nwarps=WARPS_PER_TB,
            )
        )
    return ExecutionPlan(
        name=f"p2p-{tb_count}tb",
        cluster=cluster,
        program=program,
        dag=dag,
        n_microbatches=N_MB,
        chunk_bytes=CHUNK,
        tb_programs=tbs,
        config=SimConfig(fifo_depth=4),
        chunks_per_microbatch=tb_count,
    )


def run(tb_counts=(1, 2, 3, 4, 6, 8, 12, 16)) -> ExperimentResult:
    """``data`` is a list of (tb_count, algo_bandwidth_gbps)."""
    results = []
    for tb_count in tb_counts:
        report = simulate(p2p_plan(tb_count))
        results.append((tb_count, report.algo_bandwidth_gbps))

    peak = max(bw for _, bw in results)
    rows = [
        [str(count), f"{bw:.2f}", "#" * int(30 * bw / peak)]
        for count, bw in results
    ]
    return ExperimentResult(
        name="fig4",
        title="Figure 4 — P2P bandwidth over one NIC vs TB count (4-warp TBs)",
        headers=["TBs", "GB/s", ""],
        rows=rows,
        data=results,
        paper_note="bandwidth rises to 4 TBs, then declines",
    )


__all__ = ["run", "p2p_plan"]

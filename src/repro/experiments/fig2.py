"""Figure 2: primitive time breakdown on the existing (MSCCL) runtime."""

from __future__ import annotations

from ..algorithms import mesh_allreduce
from ..analysis import tb_breakdown, worst_idle_tb
from ..baselines import MSCCLBackend
from ..ir.task import Collective
from ..synth import TACCLSynthesizer
from ..topology import single_node
from .base import DEFAULT_MAX_MICROBATCHES, MB, ExperimentResult, run_backend


def summarize(report):
    """(worst TB idle fraction, sync share of total TB lifetime)."""
    entries = tb_breakdown(report)
    total_lifetime = sum(e.lifetime_us for e in entries)
    total_sync = sum(e.sync_us + e.tail_us for e in entries)
    worst = worst_idle_tb(report)
    return worst.idle_fraction, total_sync / total_lifetime


def run(buffer_mb: int = 128, gpus: int = 8) -> ExperimentResult:
    """Run custom + synthesized single-node AllReduce on MSCCL.

    ``data`` maps algorithm kind -> SimReport.
    """
    cluster = single_node(gpus)
    expert = mesh_allreduce(gpus)
    synthesized = TACCLSynthesizer().synthesize(cluster, Collective.ALLREDUCE)
    reports = {}
    for name, program in (("custom", expert), ("synthesized", synthesized)):
        backend = MSCCLBackend(
            instances=4, max_microbatches=DEFAULT_MAX_MICROBATCHES
        )
        reports[name] = run_backend(
            backend, cluster, buffer_mb * MB, program=program
        )

    rows = []
    for name, report in reports.items():
        worst_idle, sync_share = summarize(report)
        rows.append(
            [
                name,
                str(report.tb_count()),
                f"{worst_idle:.1%}",
                f"{sync_share:.1%}",
                f"{report.avg_idle_fraction():.1%}",
            ]
        )
    return ExperimentResult(
        name="fig2",
        title="Figure 2 — MSCCL single-node AllReduce primitive breakdown",
        headers=["algorithm", "TBs", "worst TB idle", "sync share", "avg idle"],
        rows=rows,
        data=reports,
        paper_note="worst extra-channel TB idle 98.2% (custom); "
        "sync blocking up to 67.1% (synthesized)",
    )


__all__ = ["run", "summarize"]

"""Figure 8: expert algorithms under the 4-GPU-per-server topologies."""

from __future__ import annotations

from ..algorithms import hm_allgather, hm_allreduce
from ..ir.task import Collective
from .base import MB, ExperimentResult, a100_cluster, make_backends, run_backend


def run(sizes_mb=(32, 128, 512), node_counts=(2, 4)) -> ExperimentResult:
    """``data`` maps (nodes, collective, size_mb) -> {backend: GB/s}."""
    results = {}
    for nodes in node_counts:
        cluster = a100_cluster(nodes, 4)
        for coll_name, program, collective in (
            ("AllGather", hm_allgather(nodes, 4), Collective.ALLGATHER),
            ("AllReduce", hm_allreduce(nodes, 4), Collective.ALLREDUCE),
        ):
            backends = make_backends()
            for size in sizes_mb:
                results[(nodes, coll_name, size)] = {
                    name: run_backend(
                        backend,
                        cluster,
                        size * MB,
                        program=program,
                        collective=collective,
                    ).algo_bandwidth_gbps
                    for name, backend in backends.items()
                }

    rows = [
        [
            f"{nodes}x4",
            coll,
            f"{size} MB",
            f"{bws['NCCL']:.1f}",
            f"{bws['MSCCL']:.1f}",
            f"{bws['ResCCL']:.1f}",
            f"{bws['ResCCL'] / bws['NCCL']:.2f}x",
            f"{bws['ResCCL'] / bws['MSCCL']:.2f}x",
        ]
        for (nodes, coll, size), bws in sorted(results.items())
    ]
    return ExperimentResult(
        name="fig8",
        title="Figure 8 — expert algorithms on 4-GPU-per-server topologies",
        headers=["topo", "collective", "buffer", "NCCL", "MSCCL", "ResCCL",
                 "vs NCCL", "vs MSCCL"],
        rows=rows,
        data=results,
        paper_note="AG 1.6-2.3x vs NCCL, +6.8-23.1% vs MSCCL; AR up to 3.7x "
        "vs NCCL, up to 2.4x vs MSCCL",
    )


__all__ = ["run"]

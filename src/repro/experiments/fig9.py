"""Figure 9: synthesized algorithms under the 4-GPU-per-server topologies."""

from __future__ import annotations

from ..baselines import MSCCLBackend
from ..core import ResCCLBackend
from ..ir.task import Collective
from ..synth import TACCLSynthesizer, TECCLSynthesizer
from .base import (
    DEFAULT_MAX_MICROBATCHES,
    MB,
    ExperimentResult,
    a100_cluster,
    run_backend,
)


def run(sizes_mb=(32, 128, 512), node_counts=(2, 4)) -> ExperimentResult:
    """``data`` maps (nodes, synth, collective, size_mb) -> speedup."""
    results = {}
    for nodes in node_counts:
        cluster = a100_cluster(nodes, 4)
        msccl = MSCCLBackend(
            instances=4, max_microbatches=DEFAULT_MAX_MICROBATCHES
        )
        resccl = ResCCLBackend(max_microbatches=DEFAULT_MAX_MICROBATCHES)
        for synth in (TACCLSynthesizer(), TECCLSynthesizer()):
            for collective in (Collective.ALLGATHER, Collective.ALLREDUCE):
                program = synth.synthesize(cluster, collective)
                for size in sizes_mb:
                    m = run_backend(msccl, cluster, size * MB, program=program)
                    r = run_backend(resccl, cluster, size * MB, program=program)
                    results[(nodes, synth.name, collective.value, size)] = (
                        r.algo_bandwidth / m.algo_bandwidth
                    )

    rows = [
        [f"{nodes}x4", synth, coll, f"{size} MB", f"{speedup:.2f}x"]
        for (nodes, synth, coll, size), speedup in sorted(results.items())
    ]
    return ExperimentResult(
        name="fig9",
        title="Figure 9 — ResCCL/MSCCL speedup, synthesized algorithms, "
        "4-GPU nodes",
        headers=["topo", "synth", "collective", "buffer", "speedup"],
        rows=rows,
        data=results,
        paper_note="AG +9.8-31.1%, AR up to +50.1% over MSCCL",
    )


__all__ = ["run"]

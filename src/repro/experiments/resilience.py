"""Resilience experiment: goodput under fault intensity x recovery policy.

The chaos sweep behind ``resccl experiment resilience`` and
``benchmarks/test_resilience_recovery.py``: one seeded fault scenario is
generated at full intensity per backend, then replayed at cumulative
prefixes (:meth:`~repro.faults.plan.FaultPlan.scaled_to`) under each
recovery policy (retry/backoff vs ring fallback vs replan-and-resume by
default).  Because every lower intensity is a strict subset of a higher
one, goodput degradation is monotone by construction and the sweep
isolates the *recovery policy's* contribution to it.

``data`` maps ``backend -> policy -> [cell, ...]`` where each cell
carries intensity, goodput ratio vs the clean run, completion time, and
the run's :class:`~repro.runtime.metrics.FaultStats`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..algorithms.ring import ring_allreduce
from ..faults import make_policy, parse_inject_spec, plan_edges
from ..faults.recovery import ResilientRunner
from ..ir.task import Collective
from ..runtime import simulate
from .base import (
    DEFAULT_MAX_MICROBATCHES,
    MB,
    ExperimentResult,
    a100_cluster,
    make_backends,
)

DEFAULT_INTENSITIES = (0.0, 0.25, 0.5, 0.75, 1.0)
DEFAULT_POLICIES = ("retry", "fallback", "replan")
DEFAULT_BACKENDS = ("ResCCL", "MSCCL", "NCCL")


def run(
    seed: int = 0,
    size_mb: int = 64,
    nodes: int = 1,
    gpus: int = 8,
    scenario: str = "link-flap",
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    policies: Sequence[str] = DEFAULT_POLICIES,
    backends: Sequence[str] = DEFAULT_BACKENDS,
) -> ExperimentResult:
    """Sweep fault intensity x recovery policy x backend."""
    cluster = a100_cluster(nodes, gpus)
    program = ring_allreduce(cluster.world_size)
    available = make_backends(max_microbatches=DEFAULT_MAX_MICROBATCHES)

    data: Dict[str, Dict[str, List[dict]]] = {}
    rows: List[List[str]] = []
    for backend_name in backends:
        backend = available[backend_name]
        if backend_name == "NCCL":
            plan = backend.plan(cluster, Collective.ALLREDUCE, size_mb * MB)
        else:
            plan = backend.plan(cluster, program, size_mb * MB)
        baseline = simulate(plan)
        master = parse_inject_spec(
            scenario,
            edges=plan_edges(plan),
            horizon_us=baseline.completion_time_us,
            seed=seed,
            window_us=plan.config.watchdog_window_us,
        )
        data[backend_name] = {}
        for policy_name in policies:
            cells: List[dict] = []
            for intensity in intensities:
                # Policies are stateful: build a fresh one per run.
                report = ResilientRunner(
                    plan,
                    master.scaled_to(intensity),
                    policy=make_policy(policy_name),
                ).run()
                goodput = (
                    report.algo_bandwidth / baseline.algo_bandwidth
                    if baseline.algo_bandwidth > 0 else 0.0
                )
                slowdown = (
                    report.completion_time_us / baseline.completion_time_us
                    if baseline.completion_time_us > 0 else 1.0
                )
                cells.append(
                    {
                        "intensity": intensity,
                        "goodput": goodput,
                        "slowdown": slowdown,
                        "completion_time_us": report.completion_time_us,
                        "fault_stats": report.fault_stats,
                    }
                )
                rows.append(
                    [
                        backend_name,
                        policy_name,
                        f"{intensity:.2f}",
                        f"{goodput:.3f}",
                        f"{slowdown:.2f}x",
                        f"{report.completion_time_us / 1e3:.2f}",
                        str(report.fault_stats.recovered),
                        str(report.fault_stats.replans),
                        str(report.fault_stats.fallbacks),
                    ]
                )
            data[backend_name][policy_name] = cells

    return ExperimentResult(
        name="resilience",
        title=(
            f"Resilience — {scenario} x recovery policy "
            f"({cluster.world_size}-rank AllReduce, {size_mb} MB, seed {seed})"
        ),
        headers=[
            "backend", "policy", "intensity", "goodput", "slowdown",
            "time (ms)", "recovered", "replans", "fallbacks",
        ],
        rows=rows,
        data=data,
        paper_note=(
            "extension beyond the paper: ResCCL's schedules should degrade "
            "gracefully, not cliff, as transient faults accumulate"
        ),
    )


__all__ = ["run", "DEFAULT_INTENSITIES", "DEFAULT_POLICIES", "DEFAULT_BACKENDS"]

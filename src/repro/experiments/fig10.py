"""Figure 10: offline workflow scaling (a) and HPDS vs round-robin (b)."""

from __future__ import annotations

from ..algorithms import hm_allgather, hm_allreduce
from ..core import ResCCLBackend, ResCCLCompiler
from ..ir.task import Collective
from ..synth import TACCLSynthesizer, TECCLSynthesizer
from ..topology import multi_node
from .base import MB, ExperimentResult, a100_cluster, run_backend


def run_phases(scales=((2, 8), (4, 8), (8, 8), (16, 8), (32, 8))) -> ExperimentResult:
    """Figure 10(a): real wall-clock of the four compiler phases.

    ``data`` is a list of (world_size, task_count, {phase: us}).
    """
    results = []
    compiler = ResCCLCompiler()
    for nodes, gpus in scales:
        cluster = multi_node(nodes, gpus)
        source = hm_allreduce(nodes, gpus).to_source()
        compiled = compiler.compile(source, cluster)
        results.append(
            (cluster.world_size, len(compiled.dag), dict(compiled.phase_times_us))
        )

    rows = []
    for world, tasks, phases in results:
        total = sum(phases.values())
        rows.append(
            [
                f"{world}",
                f"{tasks}",
                f"{phases['parsing'] / 1e3:.1f}",
                f"{phases['analysis'] / 1e3:.1f}",
                f"{phases['scheduling'] / 1e3:.1f}",
                f"{phases['lowering'] / 1e3:.1f}",
                f"{total / 1e3:.1f}",
            ]
        )
    return ExperimentResult(
        name="fig10a",
        title="Figure 10(a) — offline workflow phase breakdown",
        headers=["GPUs", "tasks", "parse ms", "analyze ms", "schedule ms",
                 "lower ms", "total ms"],
        rows=rows,
        data=results,
        paper_note="whole pipeline ~11 min at 1,024 GPUs, once, offline",
    )


def run_schedulers(sizes_mb=(32, 128)) -> ExperimentResult:
    """Figure 10(b): HPDS vs RR on the 8-GPU two-server topology.

    ``data`` maps (algorithm, size_mb) -> (hpds_gbps, rr_gbps).
    """
    cluster = a100_cluster(2, 4)
    programs = {
        "expert-AG": hm_allgather(2, 4),
        "expert-AR": hm_allreduce(2, 4),
        "TACCL-AG": TACCLSynthesizer().synthesize(cluster, Collective.ALLGATHER),
        "TACCL-AR": TACCLSynthesizer().synthesize(cluster, Collective.ALLREDUCE),
        "TECCL-AG": TECCLSynthesizer().synthesize(cluster, Collective.ALLGATHER),
        "TECCL-AR": TECCLSynthesizer().synthesize(cluster, Collective.ALLREDUCE),
    }
    hpds = ResCCLBackend(scheduler="hpds", max_microbatches=16)
    rr = ResCCLBackend(scheduler="rr", max_microbatches=16)
    results = {}
    for name, program in programs.items():
        for size in sizes_mb:
            h = run_backend(hpds, cluster, size * MB, program=program)
            r = run_backend(rr, cluster, size * MB, program=program)
            results[(name, size)] = (
                h.algo_bandwidth_gbps,
                r.algo_bandwidth_gbps,
            )

    rows = [
        [name, f"{size} MB", f"{h:.1f}", f"{r:.1f}", f"{h / r:.2f}x"]
        for (name, size), (h, r) in sorted(results.items())
    ]
    return ExperimentResult(
        name="fig10b",
        title="Figure 10(b) — HPDS vs round-robin scheduling (2x4 GPUs)",
        headers=["algorithm", "buffer", "HPDS GB/s", "RR GB/s", "speedup"],
        rows=rows,
        data=results,
        paper_note="HPDS consistently ahead, up to 187%",
    )


__all__ = ["run_phases", "run_schedulers"]

"""Figure 13: end-to-end Megatron training throughput, GPT-3 and T5."""

from __future__ import annotations

from ..baselines import MSCCLBackend, NCCLBackend
from ..core import ResCCLBackend
from ..training import (
    GPT3_MODELS,
    MegatronSimulator,
    ParallelConfig,
    T5_MODELS,
)
from .base import ExperimentResult, a100_cluster


def default_jobs():
    """The paper's section 5.5 deployment matrix."""
    cluster16 = a100_cluster(2, 8)
    cluster32 = a100_cluster(4, 8)
    jobs = []
    for model in T5_MODELS:
        jobs.append(
            (model, ParallelConfig(tp=1, dp=16, batch_size=16), cluster16)
        )
    for model in GPT3_MODELS[:2]:
        jobs.append(
            (
                model,
                ParallelConfig(tp=8, dp=2, batch_size=16, microbatch_size=4),
                cluster16,
            )
        )
    for model in GPT3_MODELS[2:]:
        jobs.append(
            (
                model,
                ParallelConfig(tp=8, dp=4, batch_size=32, microbatch_size=4),
                cluster32,
            )
        )
    return jobs


def run(jobs=None, max_microbatches: int = 8) -> ExperimentResult:
    """``data`` maps model name -> {backend: samples/s}."""
    results = {}
    for model, parallel, cluster in jobs or default_jobs():
        throughputs = {}
        for name, backend in (
            ("NCCL", NCCLBackend(max_microbatches=max_microbatches)),
            ("MSCCL", MSCCLBackend(max_microbatches=max_microbatches)),
            ("ResCCL", ResCCLBackend(max_microbatches=max_microbatches)),
        ):
            simulator = MegatronSimulator(cluster, backend)
            throughputs[name] = simulator.throughput(model, parallel)
        results[model.name] = throughputs

    rows = [
        [
            model,
            f"{bws['NCCL']:.1f}",
            f"{bws['MSCCL']:.1f}",
            f"{bws['ResCCL']:.1f}",
            f"{bws['ResCCL'] / bws['NCCL'] - 1:+.1%}",
            f"{bws['ResCCL'] / bws['MSCCL'] - 1:+.1%}",
        ]
        for model, bws in results.items()
    ]
    return ExperimentResult(
        name="fig13",
        title="Figure 13 — Megatron training throughput (samples/s)",
        headers=["model", "NCCL", "MSCCL", "ResCCL", "vs NCCL", "vs MSCCL"],
        rows=rows,
        data=results,
        paper_note="T5 +18-39% vs NCCL; GPT-3 +11-20% vs NCCL; "
        "+7.1%-1.8x / +7.5-29.3% vs MSCCL",
    )


__all__ = ["run", "default_jobs"]

"""Figure 3: runtime interpreter vs direct kernel execution."""

from __future__ import annotations

from ..algorithms import hm_allgather, hm_allreduce
from ..core import ResCCLBackend
from ..runtime import simulate
from ..runtime.plan import ExecMode
from .base import MB, ExperimentResult, a100_cluster


def run(sizes_mb=(64, 128, 256, 512), nodes: int = 2, gpus: int = 8) -> ExperimentResult:
    """Same ResCCL schedule, kernel mode vs interpreter mode.

    ``data`` is a list of (collective, size_mb, kernel_gbps, interp_gbps).
    """
    cluster = a100_cluster(nodes, gpus)
    kernel = ResCCLBackend(mode=ExecMode.KERNEL, max_microbatches=64)
    interp = ResCCLBackend(mode=ExecMode.INTERPRETER, max_microbatches=64)
    results = []
    for name, program in (
        ("AllGather", hm_allgather(nodes, gpus)),
        ("AllReduce", hm_allreduce(nodes, gpus)),
    ):
        for size in sizes_mb:
            k = simulate(kernel.plan(cluster, program, size * MB))
            i = simulate(interp.plan(cluster, program, size * MB))
            results.append(
                (name, size, k.algo_bandwidth_gbps, i.algo_bandwidth_gbps)
            )

    rows = []
    losses = []
    for name, size, kernel_bw, interp_bw in results:
        loss = 1.0 - interp_bw / kernel_bw
        losses.append(loss)
        rows.append(
            [name, f"{size} MB", f"{kernel_bw:.1f}", f"{interp_bw:.1f}",
             f"{loss:.1%}"]
        )
    average = sum(losses) / len(losses)
    rows.append(["average", "", "", "", f"{average:.1%}"])
    return ExperimentResult(
        name="fig3",
        title="Figure 3 — runtime interpreter vs direct kernel execution",
        headers=["collective", "buffer", "kernel GB/s", "interp GB/s", "loss"],
        rows=rows,
        data=results,
        paper_note="average loss 17.1%",
    )


__all__ = ["run"]

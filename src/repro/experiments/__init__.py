"""Programmatic reproductions of every evaluation table and figure.

Each experiment is a pytest-free callable returning an
:class:`~repro.experiments.base.ExperimentResult`; the benchmark suite
wraps these with shape assertions, and the CLI exposes them as
``resccl experiment <id>``::

    from repro.experiments import run_experiment
    print(run_experiment("fig6").render())
"""

from typing import Callable, Dict, List

from . import ablations, fig2, fig3, fig4, fig6, fig7, fig8, fig9, fig10
from . import fig11, fig12, fig13, resilience, table1, table3
from .base import ExperimentResult

#: Experiment id -> runner (call with defaults for the paper's setup).
REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "table1": table1.run,
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10a": fig10.run_phases,
    "fig10b": fig10.run_schedulers,
    "fig11": fig11.run,
    "table3": table3.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "granularity": ablations.run_granularity,
    "tb-merge": ablations.run_tb_merge,
    "contention": ablations.run_contention,
    "protocols": ablations.run_protocols,
    "chunk-size": ablations.run_chunk_size,
    "resilience": resilience.run,
}


def available_experiments() -> List[str]:
    """Ids accepted by :func:`run_experiment`."""
    return sorted(REGISTRY)


def run_experiment(name: str, **params) -> ExperimentResult:
    """Run one experiment by id with the paper's default parameters."""
    try:
        runner = REGISTRY[name]
    except KeyError:
        known = ", ".join(available_experiments())
        raise ValueError(f"unknown experiment {name!r}; known: {known}") from None
    return runner(**params)


__all__ = [
    "ExperimentResult",
    "REGISTRY",
    "available_experiments",
    "run_experiment",
]

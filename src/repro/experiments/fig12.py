"""Figure 12: per-TB time breakdown on the V100 cluster."""

from __future__ import annotations

from ..algorithms import hm_allreduce
from ..analysis import tb_breakdown
from ..baselines import MSCCLBackend
from ..core import ResCCLBackend
from ..ir.task import Collective
from ..synth import TACCLSynthesizer
from .base import (
    DEFAULT_MAX_MICROBATCHES,
    MB,
    ExperimentResult,
    run_backend,
    v100_cluster,
)


def occupancy_us(report) -> float:
    """Total SM occupancy: sum of TB lifetimes (with retained tails)."""
    return sum(entry.lifetime_us for entry in tb_breakdown(report))


def run(buffer_mb: int = 128, nodes: int = 2, gpus: int = 8) -> ExperimentResult:
    """``data`` maps algorithm kind -> {backend: SimReport}."""
    cluster = v100_cluster(nodes, gpus)
    expert = hm_allreduce(nodes, gpus)
    synthesized = TACCLSynthesizer().synthesize(cluster, Collective.ALLREDUCE)
    results = {}
    for name, program, instances in (
        ("expert", expert, 1),
        ("synthesized", synthesized, 4),
    ):
        msccl = MSCCLBackend(
            instances=instances, max_microbatches=DEFAULT_MAX_MICROBATCHES
        )
        resccl = ResCCLBackend(max_microbatches=DEFAULT_MAX_MICROBATCHES)
        results[name] = {
            "MSCCL": run_backend(msccl, cluster, buffer_mb * MB, program=program),
            "ResCCL": run_backend(
                resccl, cluster, buffer_mb * MB, program=program
            ),
        }

    rows = []
    for algo, reports in results.items():
        msccl, resccl = reports["MSCCL"], reports["ResCCL"]
        rows.append(
            [
                algo,
                f"{1 - resccl.tb_count() / msccl.tb_count():.0%}",
                f"{occupancy_us(resccl) / occupancy_us(msccl):.1%}",
                f"{resccl.avg_busy_fraction() - msccl.avg_busy_fraction():+.1%}",
            ]
        )
    return ExperimentResult(
        name="fig12",
        title="Figure 12 — per-TB breakdown summary (ResCCL vs MSCCL, V100)",
        headers=["algorithm", "TB saving", "occupancy ratio", "util gain"],
        rows=rows,
        data=results,
        paper_note="up to 75% fewer TBs, occupancy as low as 3.8%, "
        "+43.4-66.9% utilization",
    )


__all__ = ["run", "occupancy_us"]

"""Extension & ablation experiments: design choices DESIGN.md calls out."""

from __future__ import annotations

import copy

from ..algorithms import hm_allreduce, hm_reducescatter
from ..baselines import MSCCLBackend
from ..core import ResCCLBackend, ResCCLCompiler, allocate_tbs
from ..core.kernelgen import lower_to_programs
from ..ir.task import Collective
from ..runtime import simulate
from ..runtime.plan import (
    ExecMode,
    ExecutionPlan,
    Protocol,
    SimConfig,
    plan_microbatches,
)
from ..synth import TACCLSynthesizer
from .base import (
    DEFAULT_MAX_MICROBATCHES,
    MB,
    ExperimentResult,
    a100_cluster,
    run_backend,
)


# ----------------------------------------------------------------------
# Execution granularity (section 3, Eq. 3-5)
# ----------------------------------------------------------------------


def run_granularity(sizes_mb=(16, 64, 256)) -> ExperimentResult:
    """The same HM AllReduce at the three execution granularities.

    All variants run in interpreter mode so the measured differences
    isolate *scheduling granularity* from kernel generation.
    ``data`` maps size_mb -> {granularity: SimReport}.
    """
    cluster = a100_cluster(2, 8)
    staged = hm_allreduce(2, 8)
    flat = copy.deepcopy(staged)
    flat.stage_starts = [0]  # algorithm-level: no manual stage division

    algo_level = MSCCLBackend(max_microbatches=DEFAULT_MAX_MICROBATCHES)
    stage_level = MSCCLBackend(max_microbatches=DEFAULT_MAX_MICROBATCHES)
    task_level = ResCCLBackend(
        mode=ExecMode.INTERPRETER, max_microbatches=DEFAULT_MAX_MICROBATCHES
    )
    results = {}
    for size in sizes_mb:
        results[size] = {
            "algorithm-level": run_backend(
                algo_level, cluster, size * MB, program=flat
            ),
            "stage-level": run_backend(
                stage_level, cluster, size * MB, program=staged
            ),
            "task-level": run_backend(
                task_level, cluster, size * MB, program=staged
            ),
        }

    rows = []
    for size, by_level in results.items():
        for level, report in by_level.items():
            rows.append(
                [
                    f"{size} MB",
                    level,
                    f"{report.completion_time_us / 1e3:.2f}",
                    f"{report.algo_bandwidth_gbps:.1f}",
                    str(report.max_tbs_per_rank()),
                ]
            )
    return ExperimentResult(
        name="granularity",
        title="Ablation — execution granularity (HM AllReduce, interpreter "
        "mode for all)",
        headers=["buffer", "granularity", "time ms", "GB/s", "TB/rank"],
        rows=rows,
        data=results,
        paper_note="Equation 6: lim T_A : T_S : T_P — task-level strictly "
        "smallest",
    )


# ----------------------------------------------------------------------
# TB-merge pipelining allowance (section 4.4 design choice)
# ----------------------------------------------------------------------


def _run_with_allowance(cluster, program, buffer_bytes, allowance_from_mb):
    compiled = ResCCLCompiler().compile(program, cluster)
    n_mb, chunk = plan_microbatches(
        buffer_bytes, program.nchunks, max_microbatches=16
    )
    allowance = n_mb if allowance_from_mb else 0
    assignments = allocate_tbs(
        compiled.dag, compiled.pipeline, pipelining_allowance=allowance
    )
    plan = ExecutionPlan(
        name=f"{program.name}/allow={allowance}",
        cluster=cluster,
        program=program,
        dag=compiled.dag,
        n_microbatches=n_mb,
        chunk_bytes=chunk,
        tb_programs=lower_to_programs(assignments, n_mb, nwarps=16),
    )
    return simulate(plan)


def run_tb_merge(buffer_mb: int = 128) -> ExperimentResult:
    """Naive (allowance-0) vs pipelining-aware TB merging.

    ``data`` maps algorithm -> {policy: SimReport}.
    """
    cluster = a100_cluster(2, 8)
    programs = {
        "HM ReduceScatter": hm_reducescatter(2, 8),
        "TACCL AllGather": TACCLSynthesizer().synthesize(
            cluster, Collective.ALLGATHER
        ),
    }
    results = {}
    for name, program in programs.items():
        results[name] = {
            "naive merge (allowance 0)": _run_with_allowance(
                cluster, program, buffer_mb * MB, False
            ),
            "allowance = n_mb": _run_with_allowance(
                cluster, program, buffer_mb * MB, True
            ),
        }

    rows = []
    for name, variants in results.items():
        for variant, report in variants.items():
            rows.append(
                [
                    name,
                    variant,
                    f"{report.algo_bandwidth_gbps:.1f}",
                    str(report.max_tbs_per_rank()),
                ]
            )
    return ExperimentResult(
        name="tb-merge",
        title="Ablation — TB-merge pipelining allowance",
        headers=["algorithm", "merge policy", "GB/s", "TB/rank"],
        rows=rows,
        data=results,
        paper_note="static windows ignore micro-batch overlap; merging "
        "across small gaps serializes pipelined connections",
    )


# ----------------------------------------------------------------------
# Congestion resilience (section 4.4 discussion)
# ----------------------------------------------------------------------


def background_on_all_nics(cluster, rate: float):
    """An external job streaming at ``rate`` through every NIC direction."""
    flows = []
    for node in range(cluster.nodes):
        for nic in range(cluster.nics_per_node):
            flows.append(((f"nic:out:{node}:{nic}",), rate))
            flows.append(((f"nic:in:{node}:{nic}",), rate))
    return flows


def run_contention(
    gammas=(0.0, 0.03, 0.1, 0.3), buffer_mb: int = 128
) -> ExperimentResult:
    """Clean and congested bandwidth across fabric conflict penalties.

    ``data`` maps gamma -> {backend: (clean_gbps, loaded_gbps)}.
    """
    cluster = a100_cluster(2, 8)
    program = hm_allreduce(2, 8)
    congestors = background_on_all_nics(
        cluster, cluster.profile.nic.bandwidth / 2
    )
    results = {}
    for gamma in gammas:
        msccl = MSCCLBackend(
            instances=4,
            max_microbatches=16,
            config=SimConfig(gamma=gamma, fifo_depth=1),
        )
        resccl = ResCCLBackend(
            max_microbatches=16, config=SimConfig(gamma=gamma)
        )
        row = {}
        for name, backend in (("MSCCL", msccl), ("ResCCL", resccl)):
            clean = run_backend(
                backend, cluster, buffer_mb * MB, program=program
            ).algo_bandwidth_gbps
            loaded = run_backend(
                backend,
                cluster,
                buffer_mb * MB,
                program=program,
                background_traffic=congestors,
            ).algo_bandwidth_gbps
            row[name] = (clean, loaded)
        results[gamma] = row

    rows = [
        [
            f"{gamma:.2f}",
            f"{row['MSCCL'][0]:.1f}",
            f"{row['MSCCL'][1]:.1f}",
            f"{row['ResCCL'][0]:.1f}",
            f"{row['ResCCL'][1]:.1f}",
            f"{row['ResCCL'][1] / row['MSCCL'][1]:.2f}x",
        ]
        for gamma, row in results.items()
    ]
    return ExperimentResult(
        name="contention",
        title="Section 4.4 — congestion resilience (HM AllReduce, 2x8)",
        headers=["gamma", "MSCCL clean", "MSCCL loaded", "ResCCL clean",
                 "ResCCL loaded", "loaded advantage"],
        rows=rows,
        data=results,
        paper_note="conflict-free allocation inherently mitigates congestion",
    )


# ----------------------------------------------------------------------
# Transport protocols (Table 2 setup)
# ----------------------------------------------------------------------


def run_protocols(sizes_mb=(1, 4, 16, 64, 512)) -> ExperimentResult:
    """Simple / LL / LL128 across buffer sizes.

    ``data`` maps (protocol_name, size_mb) -> GB/s.
    """
    cluster = a100_cluster(2, 8)
    program = hm_allreduce(2, 8)
    results = {}
    for protocol in Protocol:
        backend = ResCCLBackend(
            max_microbatches=16, config=SimConfig(protocol=protocol)
        )
        for size in sizes_mb:
            report = run_backend(
                backend, cluster, size * MB, program=program
            )
            results[(protocol.value, size)] = report.algo_bandwidth_gbps

    rows = [
        [f"{size} MB"] + [f"{results[(p.value, size)]:.2f}" for p in Protocol]
        for size in sizes_mb
    ]
    return ExperimentResult(
        name="protocols",
        title="Ablation — transport protocols (HM AllReduce, 2x8)",
        headers=["buffer"] + [p.value for p in Protocol],
        rows=rows,
        data=results,
        paper_note="Simple = sustained bandwidth, LL = lowest latency, "
        "LL128 = both (partially)",
    )


# ----------------------------------------------------------------------
# Chunk size (Table 2's ChunkSize = 1 MB configuration)
# ----------------------------------------------------------------------


def _run_with_chunk(cluster, program, buffer_bytes, chunk_bytes):
    compiled = ResCCLCompiler().compile(program, cluster)
    n_mb, chunk = plan_microbatches(
        buffer_bytes,
        program.nchunks,
        target_chunk_bytes=chunk_bytes,
        max_microbatches=512,
    )
    assignments = allocate_tbs(
        compiled.dag, compiled.pipeline, pipelining_allowance=n_mb
    )
    plan = ExecutionPlan(
        name=f"{program.name}/chunk={chunk_bytes / MB:g}MB",
        cluster=cluster,
        program=program,
        dag=compiled.dag,
        n_microbatches=n_mb,
        chunk_bytes=chunk,
        tb_programs=lower_to_programs(assignments, n_mb, nwarps=16),
    )
    return simulate(plan)


def run_chunk_size(
    chunk_sizes_mb=(0.25, 0.5, 1.0, 2.0, 4.0, 16.0), buffer_mb: int = 256
) -> ExperimentResult:
    """Sweep the transfer chunk size at a fixed buffer.

    Small chunks pay per-chunk startup latency on every hop; huge chunks
    leave too few micro-batches for task-level pipelining to fill the
    pipeline.  Table 2's 1 MB default sits in the flat middle.
    ``data`` maps chunk_mb -> (n_microbatches, GB/s).
    """
    cluster = a100_cluster(2, 8)
    program = hm_allreduce(2, 8)
    results = {}
    for chunk_mb in chunk_sizes_mb:
        report = _run_with_chunk(
            cluster, program, buffer_mb * MB, chunk_mb * MB
        )
        n_mb = round(buffer_mb * MB / (program.nchunks * chunk_mb * MB))
        results[chunk_mb] = (max(1, n_mb), report.algo_bandwidth_gbps)

    rows = [
        [f"{chunk_mb:g} MB", str(n_mb), f"{gbps:.1f}"]
        for chunk_mb, (n_mb, gbps) in results.items()
    ]
    return ExperimentResult(
        name="chunk-size",
        title=f"Ablation — transfer chunk size (HM AllReduce, {buffer_mb} MB "
        "buffer)",
        headers=["chunk", "micro-batches", "GB/s"],
        rows=rows,
        data=results,
        paper_note="Table 2 fixes ChunkSize at 1 MB",
    )


__all__ = [
    "run_granularity",
    "run_tb_merge",
    "run_contention",
    "run_protocols",
    "run_chunk_size",
    "background_on_all_nics",
]

"""Figure 11: custom algorithms on the heterogeneous V100 cluster."""

from __future__ import annotations

from ..algorithms import hm_allgather, hm_allreduce, hm_reducescatter
from ..ir.task import Collective
from .base import MB, ExperimentResult, make_backends, run_backend, v100_cluster


def run(sizes_mb=(32, 128, 512, 2048), nodes: int = 2, gpus: int = 8) -> ExperimentResult:
    """``data`` maps (operator, size_mb) -> {backend: GB/s}."""
    cluster = v100_cluster(nodes, gpus)
    programs = {
        "HM-AllGather": (hm_allgather(nodes, gpus), Collective.ALLGATHER),
        "HM-ReduceScatter": (
            hm_reducescatter(nodes, gpus),
            Collective.REDUCESCATTER,
        ),
        "HM-AllReduce": (hm_allreduce(nodes, gpus), Collective.ALLREDUCE),
    }
    results = {}
    for name, (program, collective) in programs.items():
        backends = make_backends()
        for size in sizes_mb:
            results[(name, size)] = {
                backend_name: run_backend(
                    backend,
                    cluster,
                    size * MB,
                    program=program,
                    collective=collective,
                ).algo_bandwidth_gbps
                for backend_name, backend in backends.items()
            }

    rows = [
        [
            name,
            f"{size} MB",
            f"{bws['NCCL']:.1f}",
            f"{bws['MSCCL']:.1f}",
            f"{bws['ResCCL']:.1f}",
            f"{bws['ResCCL'] / bws['NCCL']:.2f}x",
            f"{bws['ResCCL'] / bws['MSCCL']:.2f}x",
        ]
        for (name, size), bws in sorted(results.items())
    ]
    return ExperimentResult(
        name="fig11",
        title="Figure 11 — custom algorithms on the V100 / 100G RoCE cluster",
        headers=["operator", "buffer", "NCCL", "MSCCL", "ResCCL", "vs NCCL",
                 "vs MSCCL"],
        rows=rows,
        data=results,
        paper_note="ResCCL up to 2.1-4.2x over NCCL and up to 1.3-2.7x over "
        "MSCCL, per operator",
    )


__all__ = ["run"]

"""Figure 6: expert-designed AG/AR bandwidth vs buffer size (8-GPU nodes)."""

from __future__ import annotations

from ..algorithms import hm_allgather, hm_allreduce
from ..ir.task import Collective
from .base import MB, ExperimentResult, a100_cluster, make_backends, run_backend


def run(
    sizes_mb=(8, 32, 128, 512, 2048), node_counts=(2, 4), gpus: int = 8
) -> ExperimentResult:
    """``data`` maps (nodes, collective, size_mb) -> {backend: GB/s}."""
    results = {}
    for nodes in node_counts:
        cluster = a100_cluster(nodes, gpus)
        programs = {
            "AllGather": (hm_allgather(nodes, gpus), Collective.ALLGATHER),
            "AllReduce": (hm_allreduce(nodes, gpus), Collective.ALLREDUCE),
        }
        for coll_name, (program, collective) in programs.items():
            backends = make_backends()
            for size in sizes_mb:
                results[(nodes, coll_name, size)] = {
                    name: run_backend(
                        backend,
                        cluster,
                        size * MB,
                        program=program,
                        collective=collective,
                    ).algo_bandwidth_gbps
                    for name, backend in backends.items()
                }

    rows = [
        [
            f"{nodes * gpus} GPUs",
            coll,
            f"{size} MB",
            f"{bws['NCCL']:.1f}",
            f"{bws['MSCCL']:.1f}",
            f"{bws['ResCCL']:.1f}",
            f"{bws['ResCCL'] / bws['NCCL']:.2f}x",
            f"{bws['ResCCL'] / bws['MSCCL']:.2f}x",
        ]
        for (nodes, coll, size), bws in sorted(results.items())
    ]
    return ExperimentResult(
        name="fig6",
        title="Figure 6 — expert-designed algorithm bandwidth (GB/s)",
        headers=["scale", "collective", "buffer", "NCCL", "MSCCL", "ResCCL",
                 "vs NCCL", "vs MSCCL"],
        rows=rows,
        data=results,
        paper_note="up to 2.2x/2.5x over NCCL (AG/AR), up to 1.6x/2.5x over "
        "MSCCL",
    )


__all__ = ["run"]

"""Figure 6: expert-designed AG/AR bandwidth vs buffer size (8-GPU nodes)."""

from __future__ import annotations

from ..algorithms import hm_allgather, hm_allreduce
from ..ir.task import Collective
from .base import (
    MB,
    ExperimentResult,
    a100_cluster,
    make_backends,
    parallel_sweep,
    run_backend,
)


def _fig6_point(point):
    """One grid cell: all three backends at one (nodes, collective, size).

    Module-level so :func:`parallel_sweep` can pickle it; each worker
    rebuilds the cluster and backends from the cell coordinates.
    """
    nodes, gpus, coll_name, size = point
    cluster = a100_cluster(nodes, gpus)
    if coll_name == "AllGather":
        program, collective = hm_allgather(nodes, gpus), Collective.ALLGATHER
    else:
        program, collective = hm_allreduce(nodes, gpus), Collective.ALLREDUCE
    backends = make_backends()
    return {
        name: run_backend(
            backend,
            cluster,
            size * MB,
            program=program,
            collective=collective,
        ).algo_bandwidth_gbps
        for name, backend in backends.items()
    }


def run(
    sizes_mb=(8, 32, 128, 512, 2048),
    node_counts=(2, 4),
    gpus: int = 8,
    jobs: int = 1,
) -> ExperimentResult:
    """``data`` maps (nodes, collective, size_mb) -> {backend: GB/s}.

    ``jobs > 1`` fans the grid cells out over worker processes; results
    and metrics are merged back in grid order, so the output is
    independent of ``jobs``.
    """
    points = [
        (nodes, gpus, coll_name, size)
        for nodes in node_counts
        for coll_name in ("AllGather", "AllReduce")
        for size in sizes_mb
    ]
    values = parallel_sweep(_fig6_point, points, jobs=jobs)
    results = {
        (nodes, coll_name, size): bws
        for (nodes, _, coll_name, size), bws in zip(points, values)
    }

    rows = [
        [
            f"{nodes * gpus} GPUs",
            coll,
            f"{size} MB",
            f"{bws['NCCL']:.1f}",
            f"{bws['MSCCL']:.1f}",
            f"{bws['ResCCL']:.1f}",
            f"{bws['ResCCL'] / bws['NCCL']:.2f}x",
            f"{bws['ResCCL'] / bws['MSCCL']:.2f}x",
        ]
        for (nodes, coll, size), bws in sorted(results.items())
    ]
    return ExperimentResult(
        name="fig6",
        title="Figure 6 — expert-designed algorithm bandwidth (GB/s)",
        headers=["scale", "collective", "buffer", "NCCL", "MSCCL", "ResCCL",
                 "vs NCCL", "vs MSCCL"],
        rows=rows,
        data=results,
        paper_note="up to 2.2x/2.5x over NCCL (AG/AR), up to 1.6x/2.5x over "
        "MSCCL",
    )


__all__ = ["run"]

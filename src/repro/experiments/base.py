"""Common machinery for the paper's evaluation experiments.

Every experiment module exposes ``run(**params) -> ExperimentResult``:
a self-contained, pytest-free reproduction of one table or figure that
returns both the formatted rows (for printing) and the raw data (for
the benchmark assertions or further analysis).

The registry at :mod:`repro.experiments` maps experiment ids
(``"table1"``, ``"fig6"``, ...) to these runners; the CLI exposes them
as ``resccl experiment <id>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..analysis import format_table
from ..baselines import MSCCLBackend, NCCLBackend
from ..core import ResCCLBackend
from ..ir.task import Collective
from ..lang.builder import AlgoProgram
from ..runtime import MB, SimReport, simulate
from ..topology import Cluster, multi_node, v100_profile

#: Micro-batch cap used across experiments: enough pipelining for the
#: effects to show, small enough to keep the discrete-event runs fast.
DEFAULT_MAX_MICROBATCHES = 16


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes:
        name: experiment id (``"fig6"``).
        title: human-readable headline.
        headers: column names of the formatted table.
        rows: formatted table rows (strings).
        data: the raw measurement structure (experiment-specific).
        paper_note: the paper's reported numbers, one line.
    """

    name: str
    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    data: Any = None
    paper_note: str = ""

    def table(self) -> str:
        return format_table(self.headers, self.rows)

    def render(self) -> str:
        parts = [f"{self.title}", "", self.table()]
        if self.paper_note:
            parts.append(f"paper: {self.paper_note}")
        return "\n".join(parts)


def a100_cluster(nodes: int, gpus: int) -> Cluster:
    """The paper's A100 testbed at the given shape."""
    return multi_node(nodes, gpus)


def v100_cluster(nodes: int, gpus: int) -> Cluster:
    """The heterogeneous V100 / 100G RoCE testbed of Figure 11."""
    return multi_node(nodes, gpus, profile=v100_profile())


def make_backends(
    msccl_instances: int = 1,
    max_microbatches: int = DEFAULT_MAX_MICROBATCHES,
) -> Dict[str, object]:
    """One instance of each backend at experiment settings."""
    return {
        "NCCL": NCCLBackend(max_microbatches=max_microbatches),
        "MSCCL": MSCCLBackend(
            instances=msccl_instances, max_microbatches=max_microbatches
        ),
        "ResCCL": ResCCLBackend(max_microbatches=max_microbatches),
    }


def run_backend(
    backend,
    cluster: Cluster,
    buffer_bytes: float,
    program: Optional[AlgoProgram] = None,
    collective: Optional[Collective] = None,
    background_traffic=None,
) -> SimReport:
    """Plan + simulate one collective call on any backend."""
    if isinstance(backend, NCCLBackend):
        if collective is None:
            collective = program.collective if program else Collective.ALLREDUCE
        plan = backend.plan(cluster, collective, buffer_bytes)
    else:
        if program is None:
            raise ValueError("custom backends need an algorithm program")
        plan = backend.plan(cluster, program, buffer_bytes)
    return simulate(plan, background_traffic=background_traffic)


def sweep_sizes(sizes_mb: Sequence[int]) -> List[float]:
    return [size * MB for size in sizes_mb]


__all__ = [
    "ExperimentResult",
    "DEFAULT_MAX_MICROBATCHES",
    "a100_cluster",
    "v100_cluster",
    "make_backends",
    "run_backend",
    "sweep_sizes",
    "MB",
]

"""Common machinery for the paper's evaluation experiments.

Every experiment module exposes ``run(**params) -> ExperimentResult``:
a self-contained, pytest-free reproduction of one table or figure that
returns both the formatted rows (for printing) and the raw data (for
the benchmark assertions or further analysis).

The registry at :mod:`repro.experiments` maps experiment ids
(``"table1"``, ``"fig6"``, ...) to these runners; the CLI exposes them
as ``resccl experiment <id>``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis import format_table
from ..baselines import MSCCLBackend, NCCLBackend
from ..core import ResCCLBackend
from ..ir.task import Collective
from ..lang.builder import AlgoProgram
from ..obs.log import get_logger
from ..obs.metrics import collecting, current_registry
from ..runtime import MB, SimReport, simulate
from ..topology import Cluster, multi_node, v100_profile

#: Micro-batch cap used across experiments: enough pipelining for the
#: effects to show, small enough to keep the discrete-event runs fast.
DEFAULT_MAX_MICROBATCHES = 16


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes:
        name: experiment id (``"fig6"``).
        title: human-readable headline.
        headers: column names of the formatted table.
        rows: formatted table rows (strings).
        data: the raw measurement structure (experiment-specific).
        paper_note: the paper's reported numbers, one line.
    """

    name: str
    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    data: Any = None
    paper_note: str = ""

    def table(self) -> str:
        return format_table(self.headers, self.rows)

    def render(self) -> str:
        parts = [f"{self.title}", "", self.table()]
        if self.paper_note:
            parts.append(f"paper: {self.paper_note}")
        return "\n".join(parts)


def a100_cluster(nodes: int, gpus: int) -> Cluster:
    """The paper's A100 testbed at the given shape."""
    return multi_node(nodes, gpus)


def v100_cluster(nodes: int, gpus: int) -> Cluster:
    """The heterogeneous V100 / 100G RoCE testbed of Figure 11."""
    return multi_node(nodes, gpus, profile=v100_profile())


def make_backends(
    msccl_instances: int = 1,
    max_microbatches: int = DEFAULT_MAX_MICROBATCHES,
) -> Dict[str, object]:
    """One instance of each backend at experiment settings."""
    return {
        "NCCL": NCCLBackend(max_microbatches=max_microbatches),
        "MSCCL": MSCCLBackend(
            instances=msccl_instances, max_microbatches=max_microbatches
        ),
        "ResCCL": ResCCLBackend(max_microbatches=max_microbatches),
    }


def run_backend(
    backend,
    cluster: Cluster,
    buffer_bytes: float,
    program: Optional[AlgoProgram] = None,
    collective: Optional[Collective] = None,
    background_traffic=None,
) -> SimReport:
    """Plan + simulate one collective call on any backend."""
    if isinstance(backend, NCCLBackend):
        if collective is None:
            collective = program.collective if program else Collective.ALLREDUCE
        plan = backend.plan(cluster, collective, buffer_bytes)
    else:
        if program is None:
            raise ValueError("custom backends need an algorithm program")
        plan = backend.plan(cluster, program, buffer_bytes)
    return simulate(plan, background_traffic=background_traffic)


def sweep_sizes(sizes_mb: Sequence[int]) -> List[float]:
    return [size * MB for size in sizes_mb]


# ----------------------------------------------------------------------
# Parallel sweep runner
# ----------------------------------------------------------------------


class SweepError(RuntimeError):
    """A sweep point raised inside a worker.

    Attributes:
        index: position of the failing point in the input sequence.
        point: the failing point itself.
        worker_traceback: the formatted traceback from the worker
            process (chained into :attr:`args` so it prints by default).
    """

    def __init__(self, index: int, point: Any, worker_traceback: str) -> None:
        super().__init__(
            f"sweep point #{index} ({point!r}) failed in worker:\n"
            f"{worker_traceback}"
        )
        self.index = index
        self.point = point
        self.worker_traceback = worker_traceback


@dataclass
class SweepOutcome:
    """Per-point result of a non-strict :func:`parallel_sweep`.

    ``wall_s`` is the point's own wall-clock cost (the ``fn(point)``
    call inside the worker, queueing excluded), so long sweeps — the
    autotuner in particular — can attribute search time per point.
    """

    index: int
    point: Any
    value: Any = None
    error: Optional[str] = None
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


def _sweep_worker(payload: Tuple[int, Callable[[Any], Any], Any]):
    """Run one sweep point under a private metrics registry.

    Module-level (picklable) pool target.  Returns ``(index, status,
    value_or_traceback, metrics_json_or_None, wall_s)``; exceptions
    never propagate raw across the process boundary — they are formatted
    here (an exception object whose state cannot be pickled would
    otherwise wedge or kill the pool on the return path), so the parent
    can re-raise with the worker's stack attached as plain text.
    Returned *values* are pickle-checked for the same reason: an
    unpicklable value degrades to an error result instead of poisoning
    the pool.
    """
    index, fn, point = payload
    start = time.perf_counter()
    try:
        with collecting() as registry:
            value = fn(point)
        wall_s = time.perf_counter() - start
        result = (index, "ok", value, registry.to_json(), wall_s)
    except KeyboardInterrupt:
        raise  # let Ctrl-C tear the pool down normally
    except BaseException:  # noqa: BLE001 - must cross the process boundary
        return (
            index, "error", traceback.format_exc(), None,
            time.perf_counter() - start,
        )
    try:
        pickle.dumps(result)
    except Exception as exc:  # noqa: BLE001 - unpicklable user value
        return (
            index,
            "error",
            f"sweep point returned an unpicklable value "
            f"({type(value).__name__}): {exc!r}",
            None,
            wall_s,
        )
    return result


def parallel_sweep(
    fn: Callable[[Any], Any],
    points: Sequence[Any],
    jobs: Optional[int] = None,
    strict: bool = True,
) -> List[Any]:
    """Map ``fn`` over sweep ``points``, optionally across processes.

    Args:
        fn: module-level (picklable) function of one point.
        jobs: worker-process count; ``None`` means ``os.cpu_count()``.
            ``jobs <= 1`` (or a single point) runs inline, with no
            registry juggling — identical to a plain loop.
        strict: raise :class:`SweepError` carrying the first failing
            worker's traceback (points are still all attempted).  With
            ``strict=False`` a list of :class:`SweepOutcome` is returned
            instead of raw values, errors included.

    Results are ordered by input position regardless of which worker
    finished first.  Worker metrics are folded into the ambient
    registry (when one is armed) in point order, so a parallel sweep's
    exported metrics match the sequential run's.  Completion progress is
    emitted periodically through :mod:`repro.obs.log` (component
    ``sweep``, event ``sweep-progress``) so long runs — autotuning in
    particular — are observable instead of silent.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    points = list(points)
    logger = get_logger("sweep")
    total = len(points)
    # Roughly eight progress lines per sweep, plus the final one.
    progress_every = max(1, total // 8)

    if jobs <= 1 or len(points) <= 1:
        if not strict:
            outcomes: List[SweepOutcome] = []
            for index, point in enumerate(points):
                start = time.perf_counter()
                try:
                    value = fn(point)
                    outcomes.append(
                        SweepOutcome(
                            index, point, value=value,
                            wall_s=time.perf_counter() - start,
                        )
                    )
                except KeyboardInterrupt:
                    raise
                except BaseException:  # noqa: BLE001 - mirrored worker policy
                    outcomes.append(
                        SweepOutcome(
                            index, point, error=traceback.format_exc(),
                            wall_s=time.perf_counter() - start,
                        )
                    )
                done = index + 1
                if done % progress_every == 0 or done == total:
                    logger.info("sweep-progress", done=done, total=total)
            return outcomes
        return [fn(point) for point in points]

    payloads = [(index, fn, point) for index, point in enumerate(points)]
    raw: Dict[int, Tuple] = {}
    with multiprocessing.Pool(processes=min(jobs, len(points))) as pool:
        for done, result in enumerate(
            pool.imap_unordered(_sweep_worker, payloads), 1
        ):
            raw[result[0]] = result
            if done % progress_every == 0 or done == total:
                logger.info(
                    "sweep-progress",
                    done=done,
                    total=total,
                    last_wall_s=round(result[4], 3),
                )

    # Merge metrics in input-point order (not completion order) so the
    # parent registry is deterministic regardless of worker scheduling.
    registry = current_registry()
    outcomes = []
    for index, point in enumerate(points):
        _, status, value, metrics, wall_s = raw[index]
        if status == "ok":
            if registry is not None and metrics:
                registry.merge_json(metrics)
            outcomes.append(
                SweepOutcome(index, point, value=value, wall_s=wall_s)
            )
        else:
            outcomes.append(
                SweepOutcome(index, point, error=value, wall_s=wall_s)
            )

    if strict:
        for outcome in outcomes:
            if not outcome.ok:
                raise SweepError(outcome.index, outcome.point, outcome.error)
        return [outcome.value for outcome in outcomes]
    return outcomes


__all__ = [
    "ExperimentResult",
    "DEFAULT_MAX_MICROBATCHES",
    "a100_cluster",
    "v100_cluster",
    "make_backends",
    "run_backend",
    "sweep_sizes",
    "SweepError",
    "SweepOutcome",
    "parallel_sweep",
    "MB",
]

"""Table 3: TB resource utilization, ResCCL vs MSCCL, four topologies."""

from __future__ import annotations

from ..algorithms import hm_allgather, hm_allreduce
from ..analysis import TBUtilizationRow
from ..baselines import MSCCLBackend
from ..core import ResCCLBackend
from ..ir.task import Collective
from ..synth import TACCLSynthesizer
from .base import (
    DEFAULT_MAX_MICROBATCHES,
    MB,
    ExperimentResult,
    a100_cluster,
    run_backend,
)

TOPOLOGIES = {
    "Topo1": (2, 4),
    "Topo2": (2, 8),
    "Topo3": (4, 4),
    "Topo4": (4, 8),
}


def run(buffer_mb: int = 128) -> ExperimentResult:
    """``data`` maps (topo, algorithm) -> {backend: TBUtilizationRow}."""
    buffer_bytes = buffer_mb * MB
    results = {}
    for topo_name, (nodes, gpus) in TOPOLOGIES.items():
        cluster = a100_cluster(nodes, gpus)
        algorithms = {
            "Expert AR": (hm_allreduce(nodes, gpus), 1),
            "Expert AG": (hm_allgather(nodes, gpus), 1),
            "Synth AR": (
                TACCLSynthesizer().synthesize(cluster, Collective.ALLREDUCE),
                4,
            ),
            "Synth AG": (
                TACCLSynthesizer().synthesize(cluster, Collective.ALLGATHER),
                4,
            ),
        }
        for algo_name, (program, instances) in algorithms.items():
            msccl = MSCCLBackend(
                instances=instances,
                max_microbatches=DEFAULT_MAX_MICROBATCHES,
            )
            resccl = ResCCLBackend(max_microbatches=DEFAULT_MAX_MICROBATCHES)
            results[(topo_name, algo_name)] = {
                "MSCCL": TBUtilizationRow.from_report(
                    run_backend(msccl, cluster, buffer_bytes, program=program),
                    "MSCCL",
                ),
                "ResCCL": TBUtilizationRow.from_report(
                    run_backend(
                        resccl, cluster, buffer_bytes, program=program
                    ),
                    "ResCCL",
                ),
            }

    rows = []
    for (topo, algo), backends in sorted(results.items()):
        for name in ("MSCCL", "ResCCL"):
            rows.append([topo, algo] + backends[name].cells())
    return ExperimentResult(
        name="table3",
        title="Table 3 — TB utilization: MSCCL vs ResCCL (per-rank TB counts)",
        headers=["topo", "algorithm", "backend", "TB/rank", "comm time",
                 "avg idle", "max idle"],
        rows=rows,
        data=results,
        paper_note="ResCCL cuts TBs by up to 77.8% and avg idle by 41.6 pts; "
        "expert TB counts 14->8 (Topo1) and 30->16 (Topo2)",
    )


__all__ = ["run", "TOPOLOGIES"]

"""TACCL stand-in: communication-sketch-guided synthesis.

TACCL (NSDI '23) guides an MILP solver with a human *communication
sketch* that restricts which GPUs carry inter-node traffic.  The stand-in
keeps that structure: per node, only a sketch-designated subset of GPUs
("senders") forward chunks across the network; every inter-node chunk
movement is

    owner --(intra)--> sender --(inter)--> ring-aligned peer
          --(intra fan-out)--> destinations.

Restricting inter traffic to few senders is exactly what makes the
solver's output unevenly loaded (section 5.4: "TACCL's solver abstracts
away certain real-world details, yielding synthesized algorithms that
distribute link load unevenly") — the sender GPUs' NICs and NVLink ports
saturate while the rest idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..ir.task import Collective
from ..lang.builder import AlgoProgram
from ..topology import Cluster
from .base import GreedyStepScheduler, assemble_allreduce, make_reducescatter


def _coprime_strides(gpus_per_node: int, count: int) -> List[int]:
    """Up to ``count`` strides coprime with the node size.

    Each stride generates a link-disjoint Hamiltonian ring over the
    node's GPUs, so striping chunks across strides engages multiple
    NVLink paths in parallel.
    """
    from math import gcd

    strides = [
        s for s in range(1, gpus_per_node) if gcd(s, gpus_per_node) == 1
    ]
    if not strides:
        return [1]
    return strides[: max(1, count)]


@dataclass
class TACCLSynthesizer:
    """Sketch-guided synthesizer stand-in.

    Args:
        senders_per_node: how many GPUs per node the sketch designates as
            inter-node senders (TACCL sketches typically pick one GPU per
            NIC or fewer; the default of 2 on an 8-GPU node reproduces
            the skewed load the paper observes).
        intra_rings: parallel intra-node rings; chunks are striped over
            them and each ring uses a different (coprime) stride, so a
            GPU has ``intra_rings`` distinct intra send connections —
            the multi-path structure solver outputs exhibit.
    """

    senders_per_node: int = 2
    intra_rings: int = 4

    name = "TACCL"

    def _senders(self, cluster: Cluster, node: int) -> List[int]:
        count = max(1, min(self.senders_per_node, cluster.gpus_per_node))
        return [node * cluster.gpus_per_node + i for i in range(count)]

    def synthesize_allgather(self, cluster: Cluster) -> AlgoProgram:
        """Synthesize an AllGather schedule for the cluster."""
        scheduler = GreedyStepScheduler(cluster)
        nranks = cluster.world_size
        for chunk in range(nranks):
            scheduler.seed(chunk, chunk)

        # Per node-pair round-robin over the sketch's sender set.
        sender_cursor: Dict[Tuple[int, int], int] = {}

        strides = _coprime_strides(cluster.gpus_per_node, self.intra_rings)

        def local_ring(root: int, chunk: int) -> None:
            """Distribute a chunk around one of the node's intra rings.

            The ring (stride) is chosen by chunk id, striping chunks over
            ``intra_rings`` parallel link-disjoint rings.
            """
            stride = strides[chunk % len(strides)]
            node = cluster.node_of(root)
            base = node * cluster.gpus_per_node
            current = root
            for _ in range(cluster.gpus_per_node - 1):
                nxt = base + (
                    cluster.local_index(current) + stride
                ) % cluster.gpus_per_node
                if not scheduler.holds(nxt, chunk):
                    scheduler.schedule_hop(current, nxt, chunk)
                current = nxt

        for chunk in range(nranks):
            owner = chunk
            home = cluster.node_of(owner)
            # Intra-node: ring distribution from the owner.
            local_ring(owner, chunk)
            # Inter-node: through a sketch sender per destination node.
            for node in range(cluster.nodes):
                if node == home:
                    continue
                senders = self._senders(cluster, home)
                cursor_key = (home, node)
                index = sender_cursor.get(cursor_key, 0)
                sender = senders[index % len(senders)]
                sender_cursor[cursor_key] = index + 1
                bridge_in = (
                    node * cluster.gpus_per_node
                    + cluster.local_index(sender)
                )
                scheduler.schedule_hop(sender, bridge_in, chunk)
                local_ring(bridge_in, chunk)

        program = AlgoProgram.create(
            nranks,
            Collective.ALLGATHER,
            name="taccl-allgather",
            gpus_per_node=cluster.gpus_per_node,
            nics_per_node=cluster.nics_per_node,
        )
        program.transfers.extend(scheduler.transfers)
        program.stage_starts = [0]
        return program

    def synthesize(self, cluster: Cluster, collective: Collective) -> AlgoProgram:
        """Synthesize the requested collective for the cluster."""
        allgather = self.synthesize_allgather(cluster)
        if collective is Collective.ALLGATHER:
            return allgather
        if collective is Collective.REDUCESCATTER:
            return make_reducescatter(allgather, "taccl-reducescatter")
        if collective is Collective.ALLREDUCE:
            return assemble_allreduce(allgather, "taccl-allreduce")
        raise ValueError(f"unsupported collective {collective}")


__all__ = ["TACCLSynthesizer"]

"""TECCL stand-in: multi-commodity-flow-style synthesis.

TECCL (SIGCOMM '24) rethinks collective synthesis as a multi-commodity
flow problem over the topology.  The stand-in keeps the flow flavour:
every (chunk, destination) demand is routed over the rank graph along the
cheapest path under *congestion-aware* edge costs — each routed hop
raises the cost of the links it uses, so later demands spread across the
fabric the way a flow solver's fractional solution would.

Compared with the TACCL stand-in the load is flatter, but the greedy
sequential routing still leaves the residual imbalance the paper observes
("TECCL shows similar, if not worse, inefficiencies", section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx as nx

from ..ir.task import Collective
from ..lang.builder import AlgoProgram
from ..topology import Cluster
from .base import GreedyStepScheduler, assemble_allreduce, make_reducescatter
from .taccl import _coprime_strides


@dataclass
class TECCLSynthesizer:
    """Flow-based synthesizer stand-in.

    Args:
        congestion_weight: how strongly previous routings repel new ones
            (0 routes everything over shortest latency paths; larger
            values spread load).
        intra_rings: parallel intra-node fan-out rings (chunk-striped).
    """

    congestion_weight: float = 1.0
    intra_rings: int = 4

    name = "TECCL"

    def _base_graph(self, cluster: Cluster) -> "nx.DiGraph":
        graph = cluster.to_graph()
        for _, _, attrs in graph.edges(data=True):
            # Cost of moving one chunk: startup plus serialization, in us
            # per MB — the alpha-beta objective TECCL's LP minimizes.
            attrs["base_cost"] = attrs["latency"] + 1048576.0 / attrs["bandwidth"]
            attrs["load"] = 0
        return graph

    def _edge_cost(self, attrs: Dict) -> float:
        return attrs["base_cost"] * (1.0 + self.congestion_weight * attrs["load"])

    def synthesize_allgather(self, cluster: Cluster) -> AlgoProgram:
        """Route every chunk to every node, then fan out locally."""
        import networkx as nx  # deferred: keeps repro.synth import light

        graph = self._base_graph(cluster)
        scheduler = GreedyStepScheduler(cluster)
        nranks = cluster.world_size
        strides = _coprime_strides(cluster.gpus_per_node, self.intra_rings)
        for chunk in range(nranks):
            scheduler.seed(chunk, chunk)

        for chunk in range(nranks):
            owner = chunk
            # Reached set per node: the first rank of each node holding
            # the chunk, used as the local fan-out root.
            node_root: Dict[int, int] = {cluster.node_of(owner): owner}
            for node in range(cluster.nodes):
                if node in node_root:
                    continue
                # Route to this node's cheapest entry point via a
                # congestion-aware shortest path from any reached rank.
                target_ranks = list(
                    range(
                        node * cluster.gpus_per_node,
                        (node + 1) * cluster.gpus_per_node,
                    )
                )
                best: Tuple[float, List[int]] = (float("inf"), [])
                for source in node_root.values():
                    for target in target_ranks:
                        path = nx.shortest_path(
                            graph,
                            source,
                            target,
                            weight=lambda u, v, d: self._edge_cost(d),
                        )
                        cost = sum(
                            self._edge_cost(graph[u][v])
                            for u, v in zip(path, path[1:])
                        )
                        if cost < best[0]:
                            best = (cost, path)
                _, path = best
                for u, v in zip(path, path[1:]):
                    if not scheduler.holds(v, chunk):
                        scheduler.schedule_hop(owner if u == owner else u, v, chunk)
                    graph[u][v]["load"] += 1
                node_root[node] = path[-1]
            # Local fan-out from each node's root around a chunk-striped
            # intra ring — parallel rings engage multiple NVLink paths,
            # as flow solutions do when port capacities are modelled.
            stride = strides[chunk % len(strides)]
            for node, root in node_root.items():
                base = node * cluster.gpus_per_node
                current = root
                for _ in range(cluster.gpus_per_node - 1):
                    nxt = base + (
                        cluster.local_index(current) + stride
                    ) % cluster.gpus_per_node
                    if not scheduler.holds(nxt, chunk):
                        scheduler.schedule_hop(current, nxt, chunk)
                        graph[current][nxt]["load"] += 1
                    current = nxt

        program = AlgoProgram.create(
            nranks,
            Collective.ALLGATHER,
            name="teccl-allgather",
            gpus_per_node=cluster.gpus_per_node,
            nics_per_node=cluster.nics_per_node,
        )
        program.transfers.extend(scheduler.transfers)
        program.stage_starts = [0]
        return program

    def synthesize(self, cluster: Cluster, collective: Collective) -> AlgoProgram:
        """Synthesize the requested collective for the cluster.

        The open-source TECCL release does not support AllReduce
        natively; as in the paper (section 5.2), it is extended with the
        general assembly technique (ReduceScatter + AllGather).
        """
        allgather = self.synthesize_allgather(cluster)
        if collective is Collective.ALLGATHER:
            return allgather
        if collective is Collective.REDUCESCATTER:
            return make_reducescatter(allgather, "teccl-reducescatter")
        if collective is Collective.ALLREDUCE:
            return assemble_allreduce(allgather, "teccl-allreduce")
        raise ValueError(f"unsupported collective {collective}")


__all__ = ["TECCLSynthesizer"]

"""Shared machinery for the synthesizer stand-ins.

The real TACCL and TECCL are MILP/flow solvers; the paper uses them only
as *sources of input algorithms* for the backends.  These stand-ins keep
the solvers' observable properties — valid transfer programs, per-step
contention-free link usage, and the uneven link load the paper calls out
in section 5.4 — while replacing the solver with greedy list scheduling.

Key pieces:

* :class:`GreedyStepScheduler` — assigns each routed hop the earliest
  step at which its data is available and its link is free, exactly the
  discrete-time model synthesizers emit schedules in;
* :func:`reverse_to_reducescatter` — the transpose trick: reversing an
  AllGather (and flipping copies into reductions) yields a
  ReduceScatter;
* :func:`assemble_allreduce` — the "general assembly technique" of
  section 5.2 the authors used to extend TECCL: AllReduce =
  ReduceScatter followed by AllGather.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from ..ir.task import Collective, CommType, Transfer
from ..lang.builder import AlgoProgram
from ..topology import Cluster


class SynthesisError(RuntimeError):
    """Raised when a stand-in synthesizer produces an inconsistent route."""


class GreedyStepScheduler:
    """Earliest-step list scheduling of routed hops.

    Tracks, per (rank, chunk), the first step at which the rank holds the
    chunk, and per link, which steps are already occupied — one transfer
    per link per step, the contention-free discipline synthesized
    schedules follow.
    """

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._available: Dict[Tuple[int, int], int] = {}
        self._link_busy: Dict[str, Set[int]] = defaultdict(set)
        self.transfers: List[Transfer] = []

    def seed(self, rank: int, chunk: int) -> None:
        """Declare that ``rank`` holds ``chunk`` from the start."""
        self._available[(rank, chunk)] = 0

    def holds(self, rank: int, chunk: int) -> bool:
        return (rank, chunk) in self._available

    def available_at(self, rank: int, chunk: int) -> int:
        try:
            return self._available[(rank, chunk)]
        except KeyError:
            raise SynthesisError(
                f"rank {rank} never receives chunk {chunk}; routing bug"
            ) from None

    def schedule_hop(
        self, src: int, dst: int, chunk: int, op: CommType = CommType.RECV
    ) -> Transfer:
        """Route one hop at the earliest feasible step and record it."""
        ready = self.available_at(src, chunk)
        link = self._cluster.link_name(src, dst)
        step = ready
        while step in self._link_busy[link]:
            step += 1
        self._link_busy[link].add(step)
        transfer = Transfer(src=src, dst=dst, step=step, chunk=chunk, op=op)
        self.transfers.append(transfer)
        arrival = step + 1
        key = (dst, chunk)
        if key not in self._available or self._available[key] > arrival:
            self._available[key] = arrival
        return transfer

    def link_load(self) -> Dict[str, int]:
        """Transfers per link — the (im)balance profile of the schedule."""
        return {link: len(steps) for link, steps in self._link_busy.items()}


def reverse_to_reducescatter(
    allgather: List[Transfer], step_offset: int = 0
) -> List[Transfer]:
    """Transpose an AllGather schedule into a ReduceScatter.

    Every copy ``src -> dst`` becomes a reduction ``dst -> src`` at the
    mirrored step.  Reversal can put several reductions into one buffer
    slot at the same mirrored step, which would race; steps are dilated
    by the worst fan-in and conflicting writes serialized within each
    dilated block.
    """
    if not allgather:
        return []
    max_step = max(t.step for t in allgather)
    groups: Dict[Tuple[int, int, int], List[Transfer]] = defaultdict(list)
    for t in allgather:
        mirrored = max_step - t.step
        groups[(t.src, t.chunk, mirrored)].append(t)
    dilation = max(len(g) for g in groups.values())
    reversed_transfers: List[Transfer] = []
    for (new_dst, chunk, mirrored), members in sorted(
        groups.items(), key=lambda kv: (kv[0][2], kv[0][0], kv[0][1])
    ):
        for index, t in enumerate(members):
            reversed_transfers.append(
                Transfer(
                    src=t.dst,
                    dst=new_dst,
                    step=step_offset + mirrored * dilation + index,
                    chunk=chunk,
                    op=CommType.RRC,
                )
            )
    return reversed_transfers


def assemble_allreduce(
    allgather_program: AlgoProgram, name: str
) -> AlgoProgram:
    """AllReduce = transpose-ReduceScatter + the original AllGather."""
    rs = reverse_to_reducescatter(allgather_program.transfers)
    rs_end = max((t.step for t in rs), default=-1)
    program = AlgoProgram.create(
        allgather_program.nranks,
        Collective.ALLREDUCE,
        name=name,
        gpus_per_node=allgather_program.header.gpus_per_node,
        nics_per_node=allgather_program.header.nics_per_node,
    )
    program.transfers.extend(rs)
    for t in allgather_program.transfers:
        program.transfers.append(
            Transfer(
                src=t.src,
                dst=t.dst,
                step=rs_end + 1 + t.step,
                chunk=t.chunk,
                op=t.op,
            )
        )
    # Synthesized algorithms execute at algorithm level (section 2.1):
    # one stage, no manual channel division.
    program.stage_starts = [0]
    return program


def make_reducescatter(
    allgather_program: AlgoProgram, name: str
) -> AlgoProgram:
    """Standalone transpose-ReduceScatter of a synthesized AllGather."""
    program = AlgoProgram.create(
        allgather_program.nranks,
        Collective.REDUCESCATTER,
        name=name,
        gpus_per_node=allgather_program.header.gpus_per_node,
        nics_per_node=allgather_program.header.nics_per_node,
    )
    program.transfers.extend(
        reverse_to_reducescatter(allgather_program.transfers)
    )
    program.stage_starts = [0]
    return program


__all__ = [
    "SynthesisError",
    "GreedyStepScheduler",
    "reverse_to_reducescatter",
    "assemble_allreduce",
    "make_reducescatter",
]

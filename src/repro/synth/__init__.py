"""Synthesizer stand-ins: TACCL (sketch-guided) and TECCL (flow-based)."""

from .base import (
    GreedyStepScheduler,
    SynthesisError,
    assemble_allreduce,
    make_reducescatter,
    reverse_to_reducescatter,
)
from .msccl_xml import (
    MscclXmlError,
    from_msccl_xml,
    read_msccl_xml,
    to_msccl_xml,
    write_msccl_xml,
)
from .taccl import TACCLSynthesizer
from .teccl import TECCLSynthesizer

__all__ = [
    "TACCLSynthesizer",
    "TECCLSynthesizer",
    "GreedyStepScheduler",
    "SynthesisError",
    "assemble_allreduce",
    "make_reducescatter",
    "reverse_to_reducescatter",
    "MscclXmlError",
    "to_msccl_xml",
    "from_msccl_xml",
    "write_msccl_xml",
    "read_msccl_xml",
]

"""MSCCL-XML interop: export/import algorithm programs.

The real MSCCL ecosystem exchanges algorithms as XML files (TACCL and
msccl-tools emit them; the MSCCL runtime loads them).  This module
bridges that world and ResCCLang:

* :func:`to_msccl_xml` serializes an :class:`AlgoProgram` into an
  MSCCL-style document — one ``<gpu>`` per rank, one ``<tb>`` per
  connection endpoint, ``<step>`` entries with ``s`` (send) / ``r``
  (receive) / ``rrc`` (receive-reduce-copy) types and chunk indices;
* :func:`from_msccl_xml` parses such a document back into an
  ``AlgoProgram``, reconstructing the transmission tasks from matching
  send/receive step pairs.

The dialect keeps MSCCL's element and attribute vocabulary
(``name/proto/nchannels/ngpus``, ``send/recv`` peers, ``step`` with
``type/peer/chunk/depid``) while encoding the logical step index that
ResCCLang needs in each step's ``s`` attribute.  Round-tripping is exact
(tested), and files exported here are human-auditable in the same way
TACCL solutions are.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import defaultdict
from typing import Dict, List, Tuple

from ..ir.task import Collective, CommType, Transfer
from ..lang.builder import AlgoProgram

#: MSCCL step-type vocabulary for the receive side of a task.
_RECV_TYPE = {CommType.RECV: "r", CommType.RRC: "rrc"}
_RECV_OP = {"r": CommType.RECV, "rrc": CommType.RRC}

_COLLECTIVE_NAMES = {
    Collective.ALLGATHER: "allgather",
    Collective.ALLREDUCE: "allreduce",
    Collective.REDUCESCATTER: "reduce_scatter",
}
_COLLECTIVE_BY_NAME = {v: k for k, v in _COLLECTIVE_NAMES.items()}


class MscclXmlError(ValueError):
    """Raised on malformed or unsupported MSCCL-XML input."""


def to_msccl_xml(program: AlgoProgram) -> str:
    """Serialize a program into an MSCCL-style XML document."""
    root = ET.Element(
        "algo",
        {
            "name": program.name,
            "proto": "Simple",
            "nchannels": str(program.header.nchannels),
            "nchunksperloop": str(program.nchunks),
            "ngpus": str(program.nranks),
            "coll": _COLLECTIVE_NAMES[program.collective],
            "inplace": "1",
        },
    )

    # Connection-endpoint TBs, exactly the rigid allocation MSCCL uses.
    sends: Dict[Tuple[int, int], List[Transfer]] = defaultdict(list)
    recvs: Dict[Tuple[int, int], List[Transfer]] = defaultdict(list)
    for t in program.transfers:
        sends[(t.src, t.dst)].append(t)
        recvs[(t.dst, t.src)].append(t)

    for rank in range(program.nranks):
        gpu = ET.SubElement(
            root,
            "gpu",
            {
                "id": str(rank),
                "i_chunks": str(program.nchunks),
                "o_chunks": str(program.nchunks),
                "s_chunks": "0",
            },
        )
        tb_id = 0
        for (src, dst), transfers in sorted(sends.items()):
            if src != rank:
                continue
            tb = ET.SubElement(
                gpu,
                "tb",
                {"id": str(tb_id), "send": str(dst), "recv": "-1", "chan": "0"},
            )
            tb_id += 1
            for t in sorted(transfers, key=lambda x: (x.step, x.chunk)):
                ET.SubElement(
                    tb,
                    "step",
                    {
                        "s": str(t.step),
                        "type": "s",
                        "srcbuf": "i",
                        "srcoff": str(t.chunk),
                        "dstbuf": "i",
                        "dstoff": str(t.chunk),
                        "peer": str(t.dst),
                        "cnt": "1",
                        "depid": "-1",
                        "deps": "-1",
                        "hasdep": "0",
                    },
                )
        for (dst, src), transfers in sorted(recvs.items()):
            if dst != rank:
                continue
            tb = ET.SubElement(
                gpu,
                "tb",
                {"id": str(tb_id), "send": "-1", "recv": str(src), "chan": "0"},
            )
            tb_id += 1
            for t in sorted(transfers, key=lambda x: (x.step, x.chunk)):
                ET.SubElement(
                    tb,
                    "step",
                    {
                        "s": str(t.step),
                        "type": _RECV_TYPE[t.op],
                        "srcbuf": "i",
                        "srcoff": str(t.chunk),
                        "dstbuf": "i",
                        "dstoff": str(t.chunk),
                        "peer": str(t.src),
                        "cnt": "1",
                        "depid": "-1",
                        "deps": "-1",
                        "hasdep": "0",
                    },
                )
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"


def from_msccl_xml(text: str) -> AlgoProgram:
    """Parse an MSCCL-style XML document into a program.

    Tasks are reconstructed from the *receive-side* steps — each ``r`` or
    ``rrc`` step names its peer, chunk, logical step, and operation,
    which is exactly a ResCCLang transfer.  Send-side steps are used for
    consistency checking only.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise MscclXmlError(f"not parseable XML: {exc}") from None
    if root.tag != "algo":
        raise MscclXmlError(f"expected <algo> root, found <{root.tag}>")
    try:
        nranks = int(root.attrib["ngpus"])
    except (KeyError, ValueError):
        raise MscclXmlError("<algo> needs an integer ngpus attribute") from None
    coll_name = root.attrib.get("coll", "allgather")
    try:
        collective = _COLLECTIVE_BY_NAME[coll_name]
    except KeyError:
        raise MscclXmlError(f"unsupported collective {coll_name!r}") from None

    program = AlgoProgram.create(
        nranks,
        collective,
        name=root.attrib.get("name", "msccl-import"),
        nchannels=int(root.attrib.get("nchannels", 4)),
    )

    sends: set = set()
    transfers: List[Transfer] = []
    for gpu in root.iter("gpu"):
        rank = int(gpu.attrib["id"])
        for tb in gpu.iter("tb"):
            for step in tb.iter("step"):
                step_type = step.attrib.get("type")
                logical = int(step.attrib.get("s", 0))
                peer = int(step.attrib.get("peer", -1))
                chunk = int(step.attrib.get("srcoff", 0))
                if step_type == "s":
                    sends.add((rank, peer, logical, chunk))
                elif step_type in _RECV_OP:
                    transfers.append(
                        Transfer(
                            src=peer,
                            dst=rank,
                            step=logical,
                            chunk=chunk,
                            op=_RECV_OP[step_type],
                        )
                    )
                elif step_type in ("nop", None):
                    continue
                else:
                    raise MscclXmlError(
                        f"unsupported step type {step_type!r} (gpu {rank})"
                    )

    for t in transfers:
        if (t.src, t.dst, t.step, t.chunk) not in sends:
            raise MscclXmlError(
                f"receive without matching send: r{t.src}->r{t.dst} "
                f"step {t.step} chunk {t.chunk}"
            )
    transfers.sort(key=lambda t: (t.step, t.src, t.dst, t.chunk))
    program.transfers.extend(transfers)
    return program


def write_msccl_xml(program: AlgoProgram, path: str) -> None:
    """Serialize :func:`to_msccl_xml` output to a file."""
    with open(path, "w") as handle:
        handle.write(to_msccl_xml(program))


def read_msccl_xml(path: str) -> AlgoProgram:
    """Load a program from an MSCCL-style XML file."""
    with open(path) as handle:
        return from_msccl_xml(handle.read())


__all__ = [
    "MscclXmlError",
    "to_msccl_xml",
    "from_msccl_xml",
    "write_msccl_xml",
    "read_msccl_xml",
]

"""Baseline CCL backends the paper compares against: NCCL and MSCCL models."""

from .common import (
    algorithm_level_order,
    endpoint_of,
    group_by_endpoint,
    stripe_microbatches,
    task_level_order,
    tasks_by_stage,
)
from .msccl import MSCCLBackend
from .nccl import NCCLBackend

__all__ = [
    "NCCLBackend",
    "MSCCLBackend",
    "algorithm_level_order",
    "task_level_order",
    "group_by_endpoint",
    "endpoint_of",
    "stripe_microbatches",
    "tasks_by_stage",
]

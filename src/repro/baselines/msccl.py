"""MSCCL-like backend: custom algorithms, stage-level interpreted execution.

Models Microsoft's MSCCL as the paper characterizes it (sections 2.1-2.2):

* executes **custom** algorithms (expert-designed or synthesized), unlike
  NCCL;
* **stage-level execution** — the algorithm is manually partitioned into
  stages (``AlgoProgram.stage_starts``); each stage gets its *own*
  dedicated channels (TBs and buffers) and internally runs
  algorithm-level; stages pipeline across micro-batches only through the
  data dependencies between their tasks.  The extra per-stage channels
  are the resource bottleneck the paper measures: a stage's TBs occupy
  SMs for the whole kernel but work only while their stage is active;
* **connection-based TB allocation** inside each stage — a fused TB when
  the rank has exactly one send peer and one receive peer in the stage
  (ring pattern), otherwise one TB per send connection plus one per
  receive connection (full-mesh pattern);
* a **runtime interpreter** — every primitive invocation pays a decode
  cost (Figure 3's overhead), and TBs are not released until the whole
  kernel finishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..ir.dag import build_dag
from ..ir.task import TransmissionTask
from ..lang.builder import AlgoProgram
from ..obs.spans import span as obs_span
from ..runtime.plan import (
    ExecMode,
    ExecutionPlan,
    SimConfig,
    TBProgram,
    plan_microbatches,
)
from ..topology import Cluster
from .common import algorithm_level_order, stripe_microbatches, tasks_by_stage


@dataclass
class MSCCLBackend:
    """The MSCCL baseline: stage-level, interpreted, channel-heavy.

    Args:
        instances: channel instances striping micro-batches (Table 2's
            "Default/4" instance configuration).
        nwarps: warps per TB.
        max_microbatches: cap on micro-batch count per plan.
        config: runtime constants override.
    """

    instances: int = 1
    nwarps: int = 8
    max_microbatches: int = 32
    config: Optional[SimConfig] = None

    name = "MSCCL"

    def plan(
        self,
        cluster: Cluster,
        program: AlgoProgram,
        buffer_bytes: float,
    ) -> ExecutionPlan:
        """Build the stage-level execution plan for a custom algorithm."""
        with obs_span("plan", backend=self.name) as sp:
            plan = self._plan(cluster, program, buffer_bytes)
            sp.set(
                n_microbatches=plan.n_microbatches,
                tbs=len(plan.tb_programs),
            )
        return plan

    def _plan(
        self,
        cluster: Cluster,
        program: AlgoProgram,
        buffer_bytes: float,
    ) -> ExecutionPlan:
        if program.nranks != cluster.world_size:
            raise ValueError(
                f"algorithm is for {program.nranks} ranks, cluster has "
                f"{cluster.world_size}"
            )
        dag = build_dag(program.transfers, cluster)
        n_mb, chunk_bytes = plan_microbatches(
            buffer_bytes, program.nchunks, max_microbatches=self.max_microbatches
        )
        instance_mbs = stripe_microbatches(n_mb, self.instances)
        stages = tasks_by_stage(dag, program.stage_starts)

        tb_programs: List[TBProgram] = []
        per_rank_count = [0] * cluster.world_size

        def add_tb(rank: int, invocations, label: str) -> None:
            if not invocations:
                return
            tb_programs.append(
                TBProgram(
                    rank=rank,
                    tb_index=per_rank_count[rank],
                    invocations=invocations,
                    nwarps=self.nwarps,
                    label=label,
                )
            )
            per_rank_count[rank] += 1

        for instance, mbs in enumerate(instance_mbs):
            if not mbs:
                continue
            for stage_index, stage_tasks in enumerate(stages):
                if not stage_tasks:
                    continue
                for rank in range(cluster.world_size):
                    self._emit_rank_stage_tbs(
                        rank, stage_index, stage_tasks, mbs, instance, add_tb
                    )
        return ExecutionPlan(
            name=f"MSCCL/{program.name}",
            cluster=cluster,
            program=program,
            dag=dag,
            n_microbatches=n_mb,
            chunk_bytes=chunk_bytes,
            tb_programs=tb_programs,
            mode=ExecMode.INTERPRETER,
            # Stage-level execution is algorithm-level inside each stage:
            # one buffer slot per connection, no sender run-ahead.
            config=self.config or SimConfig(fifo_depth=1),
        )

    def _emit_rank_stage_tbs(
        self,
        rank: int,
        stage_index: int,
        stage_tasks: List[TransmissionTask],
        mbs: List[int],
        instance: int,
        add_tb,
    ) -> None:
        """Connection-based TBs for one rank within one stage."""
        sends = [t for t in stage_tasks if t.src == rank]
        recvs = [t for t in stage_tasks if t.dst == rank]
        if not sends and not recvs:
            return
        send_peers = sorted({t.dst for t in sends})
        recv_peers = sorted({t.src for t in recvs})
        label = f"msccl:i{instance}:s{stage_index}"
        if len(send_peers) == 1 and len(recv_peers) == 1:
            # Ring pattern: one fused TB drives both connection endpoints.
            add_tb(
                rank,
                algorithm_level_order(sends + recvs, rank, mbs),
                f"{label}:ring",
            )
            return
        for peer in send_peers:
            peer_tasks = [t for t in sends if t.dst == peer]
            add_tb(
                rank,
                algorithm_level_order(peer_tasks, rank, mbs),
                f"{label}:send->r{peer}",
            )
        for peer in recv_peers:
            peer_tasks = [t for t in recvs if t.src == peer]
            add_tb(
                rank,
                algorithm_level_order(peer_tasks, rank, mbs),
                f"{label}:recv<-r{peer}",
            )


__all__ = ["MSCCLBackend"]

"""Shared plumbing for baseline backend plan construction.

Both baselines — and the execution-granularity taxonomy of section 2.1 —
are expressed through how they *order invocations inside TB programs*:

* **algorithm-level** ordering iterates micro-batches in the outer loop
  (``for mb: for task: ...``): the whole algorithm is lazily re-executed
  per micro-batch, so every data-dependency stall repeats ``n`` times;
* **task-level** ordering iterates tasks outermost (``for task: for mb``):
  one task streams all of its micro-batches back-to-back, which is
  ResCCL's execution granularity.

Within one (micro-batch, step) group, SEND invocations are emitted before
RECV invocations: with credit-based buffered connections a sender never
blocks on its receiver's program position, which makes send-first
ordering deadlock-free for the algorithms in this repository.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

from ..ir.dag import DependencyDAG
from ..ir.task import TransmissionTask
from ..runtime.plan import Invocation, Side

#: (rank, side, peer) — the connection-endpoint a task occupies.
Endpoint = Tuple[int, Side, int]


def endpoint_of(task: TransmissionTask, side: Side) -> Endpoint:
    """The connection endpoint executing one side of a task."""
    if side is Side.SEND:
        return (task.src, Side.SEND, task.dst)
    return (task.dst, Side.RECV, task.src)


def group_by_endpoint(
    tasks: Iterable[TransmissionTask],
) -> Dict[Endpoint, List[TransmissionTask]]:
    """Connection-based grouping: one group per (rank, side, peer).

    This is the rigid allocation of existing backends (section 4.4):
    every group becomes a dedicated TB unless a backend merges further.
    """
    groups: Dict[Endpoint, List[TransmissionTask]] = defaultdict(list)
    for task in tasks:
        groups[endpoint_of(task, Side.SEND)].append(task)
        groups[endpoint_of(task, Side.RECV)].append(task)
    for members in groups.values():
        members.sort(key=lambda t: (t.step, t.task_id))
    return groups


def _ordered_sides(
    tasks: Sequence[TransmissionTask], rank: int
) -> List[Tuple[TransmissionTask, Side]]:
    """Order a rank's task-sides by (step, send-before-recv, task id)."""
    entries: List[Tuple[TransmissionTask, Side]] = []
    for task in tasks:
        if task.src == rank:
            entries.append((task, Side.SEND))
        if task.dst == rank:
            entries.append((task, Side.RECV))
    entries.sort(
        key=lambda pair: (pair[0].step, pair[1] is Side.RECV, pair[0].task_id)
    )
    return entries


def algorithm_level_order(
    tasks: Sequence[TransmissionTask],
    rank: int,
    microbatches: Iterable[int],
) -> List[Invocation]:
    """Algorithm-level (lazy) invocation order for one rank's task set."""
    sides = _ordered_sides(tasks, rank)
    return [
        Invocation(task_id=task.task_id, side=side, mb=mb)
        for mb in microbatches
        for task, side in sides
    ]


def task_level_order(
    task_sides: Sequence[Tuple[TransmissionTask, Side]],
    n_microbatches: int,
) -> List[Invocation]:
    """Task-level invocation order: each task runs all its micro-batches."""
    return [
        Invocation(task_id=task.task_id, side=side, mb=mb)
        for task, side in task_sides
        for mb in range(n_microbatches)
    ]


def stripe_microbatches(n_microbatches: int, channels: int) -> List[List[int]]:
    """Partition micro-batches round-robin over parallel channels.

    Channel ``k`` processes micro-batches ``k, k+channels, ...`` — the
    channel/instance parallelism NCCL and MSCCL use to put more TBs on a
    link (section 2.2's "additional transmission channels").
    """
    if channels < 1:
        raise ValueError(f"need at least one channel, got {channels}")
    channels = min(channels, n_microbatches) or 1
    return [list(range(k, n_microbatches, channels)) for k in range(channels)]


def tasks_by_stage(
    dag: DependencyDAG, stage_starts: Sequence[int]
) -> List[List[TransmissionTask]]:
    """Split the task set into the program's manual stages."""
    starts = sorted(stage_starts)
    stages: List[List[TransmissionTask]] = [[] for _ in starts]
    for task in dag.tasks:
        index = 0
        for i, start in enumerate(starts):
            if task.step >= start:
                index = i
        stages[index].append(task)
    return stages


__all__ = [
    "Endpoint",
    "endpoint_of",
    "group_by_endpoint",
    "algorithm_level_order",
    "task_level_order",
    "stripe_microbatches",
    "tasks_by_stage",
]

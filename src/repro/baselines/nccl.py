"""NCCL-like backend: vendor-standard algorithms, static execution.

Models the baseline of section 5: NCCL runs its own fixed algorithms
(ring; optionally double binary tree for AllReduce) with

* **algorithm-level execution** — every channel lazily re-executes the
  whole algorithm per micro-batch (section 2.1), so dependency bubbles
  repeat every micro-batch;
* **connection-based TB allocation** — one fused TB per rank per channel
  drives the rank's ring sends and receives;
* **channel data-slicing** — each channel carries ``1/nchannels`` of the
  data over its *own* ring.  Per-channel rings rotate the intra-node GPU
  order so their inter-node crossings land on different NICs — this is
  how real NCCL engages every NIC of a multi-rail server.

Internally the channels live in one combined plan: channel ``k``'s ring
uses chunk ids offset by ``k * nranks`` so the dependency analysis keeps
the channels data-independent.

NCCL kernels are compiled, not interpreted, so the plan runs in kernel
mode (one-time load cost, no per-primitive decode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..algorithms.ring import (
    ring_allgather,
    ring_allreduce,
    ring_reducescatter,
)
from ..algorithms.tree import double_binary_tree_allreduce
from ..ir.dag import build_dag
from ..ir.task import Collective, Transfer
from ..lang.builder import AlgoProgram
from ..obs.spans import span as obs_span
from ..runtime.plan import (
    ExecMode,
    ExecutionPlan,
    SimConfig,
    TBProgram,
    plan_microbatches,
)
from ..topology import Cluster
from .common import algorithm_level_order


def channel_permutation(cluster: Cluster, channel: int) -> List[int]:
    """Ring rank order for one channel: rotate each node's local order.

    Rotating by ``channel * gpus_per_nic`` GPUs moves the node-boundary
    position onto a different GPU — and therefore a different NIC — per
    channel, spreading the rings' inter-node hops across all rails.
    """
    shift = (channel * cluster.gpus_per_nic) % cluster.gpus_per_node
    order: List[int] = []
    for node in range(cluster.nodes):
        for i in range(cluster.gpus_per_node):
            local = (i + shift) % cluster.gpus_per_node
            order.append(node * cluster.gpus_per_node + local)
    return order


def permute_transfers(
    transfers: Sequence[Transfer],
    permutation: Sequence[int],
    chunk_offset: int,
) -> List[Transfer]:
    """Relabel a canonical algorithm onto a rank permutation.

    Ranks *and* chunk ids map through the permutation (a chunk id is the
    identity of its owning rank), then chunk ids shift by
    ``chunk_offset`` into the channel's private slice of the extended
    chunk space.
    """
    nranks = len(permutation)
    relabeled = []
    for t in transfers:
        if t.chunk >= nranks:
            raise ValueError(
                f"cannot permute chunk {t.chunk} of a {nranks}-rank program"
            )
        relabeled.append(
            Transfer(
                src=permutation[t.src],
                dst=permutation[t.dst],
                step=t.step,
                chunk=permutation[t.chunk] + chunk_offset,
                op=t.op,
            )
        )
    return relabeled


@dataclass
class NCCLBackend:
    """The NCCL baseline: standard algorithms + static scheduling.

    Args:
        nchannels: parallel channel rings (Table 2 default: 4).
        nwarps: warps per TB (NCCL's default 512-thread blocks = 16
            warps).
        algorithm: ``"ring"`` or ``"tree"`` (tree applies to AllReduce).
        max_microbatches: cap on micro-batch count per plan.
        config: runtime constants override.
    """

    nchannels: int = 4
    nwarps: int = 16
    algorithm: str = "ring"
    max_microbatches: int = 32
    config: Optional[SimConfig] = None

    name = "NCCL"

    def select_algorithm(
        self, cluster: Cluster, collective: Collective
    ) -> AlgoProgram:
        """NCCL's built-in (canonical, channel-0) algorithm choice."""
        nranks = cluster.world_size
        if collective is Collective.ALLGATHER:
            return ring_allgather(nranks)
        if collective is Collective.REDUCESCATTER:
            return ring_reducescatter(nranks)
        if collective is Collective.ALLREDUCE:
            if self.algorithm == "tree":
                return double_binary_tree_allreduce(nranks)
            return ring_allreduce(nranks)
        raise ValueError(f"unsupported collective {collective}")

    def plan(
        self,
        cluster: Cluster,
        collective: Collective,
        buffer_bytes: float,
        program: Optional[AlgoProgram] = None,
    ) -> ExecutionPlan:
        """Build the execution plan for one collective call.

        ``program`` is accepted for API symmetry with the other backends
        but ignored: NCCL cannot execute custom algorithms (that is
        MSCCL's extension).
        """
        del program
        with obs_span("plan", backend=self.name) as sp:
            plan = self._plan(cluster, collective, buffer_bytes)
            sp.set(
                n_microbatches=plan.n_microbatches,
                tbs=len(plan.tb_programs),
            )
        return plan

    def _plan(
        self,
        cluster: Cluster,
        collective: Collective,
        buffer_bytes: float,
    ) -> ExecutionPlan:
        base = self.select_algorithm(cluster, collective)
        nranks = cluster.world_size
        if base.nranks != nranks:
            raise ValueError(
                f"algorithm is for {base.nranks} ranks, cluster has {nranks}"
            )

        # Union of all channel rings in an extended chunk space.
        combined = AlgoProgram(header=base.header)
        combined.header.algo_name = base.name
        channel_of_task: List[int] = []
        for channel in range(self.nchannels):
            perm = channel_permutation(cluster, channel)
            for t in permute_transfers(base.transfers, perm, channel * nranks):
                combined.transfers.append(t)
                channel_of_task.append(channel)

        dag = build_dag(combined.transfers, cluster)
        chunks_per_mb = nranks * self.nchannels
        n_mb, chunk_bytes = plan_microbatches(
            buffer_bytes, chunks_per_mb, max_microbatches=self.max_microbatches
        )

        # Each channel's ring kernel is a recvCopySend loop: its send and
        # receive directions stream *concurrently*.  The serial-TB runtime
        # models that as two cooperating halves of the one fused TB.
        tb_programs: List[TBProgram] = []
        for rank in range(nranks):
            count = 0
            for channel in range(self.nchannels):
                sends = [
                    t
                    for t in dag.tasks
                    if channel_of_task[t.task_id] == channel and t.src == rank
                ]
                recvs = [
                    t
                    for t in dag.tasks
                    if channel_of_task[t.task_id] == channel and t.dst == rank
                ]
                for tasks, half in ((sends, "send"), (recvs, "recv")):
                    if not tasks:
                        continue
                    tb_programs.append(
                        TBProgram(
                            rank=rank,
                            tb_index=count,
                            invocations=algorithm_level_order(
                                tasks, rank, range(n_mb)
                            ),
                            nwarps=self.nwarps,
                            label=f"nccl:ch{channel}:{half}",
                        )
                    )
                    count += 1
        return ExecutionPlan(
            name=f"NCCL/{base.name}",
            cluster=cluster,
            program=combined,
            dag=dag,
            n_microbatches=n_mb,
            chunk_bytes=chunk_bytes,
            tb_programs=tb_programs,
            mode=ExecMode.KERNEL,
            # Lazy algorithm-level execution re-uses one buffer slot per
            # connection each iteration: no sender run-ahead.
            config=self.config or SimConfig(fifo_depth=1),
            chunks_per_microbatch=chunks_per_mb,
        )


__all__ = ["NCCLBackend", "channel_permutation", "permute_transfers"]

"""Allow ``python -m repro <subcommand>`` invocation of the CLI."""

import sys

from .cli import main

sys.exit(main())

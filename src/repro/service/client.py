"""Minimal stdlib client for the resccl service daemon.

Built on :mod:`http.client` so scripts, tests, and the load benchmark
can drive the daemon without extra dependencies.  One
:class:`ServiceClient` wraps one keep-alive connection and is *not*
thread-safe — give each load-generator thread its own client.

Typical use::

    from repro.service import ServiceClient

    with ServiceClient("127.0.0.1", 8642) as client:
        reply = client.simulate("allreduce:8", nodes=1, gpus=8,
                                deadline_ms=10_000)
        print(reply["result"]["completion_time_us"])

Errors map onto exception types by HTTP status so callers can react to
the daemon's robustness signals individually: ``429`` (shed load)
raises :class:`ServiceOverloaded` carrying ``retry_after_s``, ``504``
(deadline spent) raises :class:`ServiceDeadline`, any other non-2xx
raises :class:`ServiceError` with the decoded error payload.  A
connection that cannot be re-established raises
:class:`ServiceUnavailable` (an :class:`OSError`), whose ``delivered``
flag says whether the request bytes reached the daemon — the bit that
decides whether failing over a POST to another replica is safe.

For multi-replica deployments, :class:`ServiceClientPool` fronts an
ordered replica list with health-gated failover, per-replica circuit
state, and optional hedged GETs.
"""

from __future__ import annotations

import http.client
import json
import queue
import random
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..obs.context import TRACE_ID_HEADER, current_context, new_trace_id


class ServiceError(RuntimeError):
    """Non-2xx reply from the daemon."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        detail = payload.get("error", "request failed")
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class ServiceOverloaded(ServiceError):
    """HTTP 429 — the daemon shed this request; retry after a delay."""

    def __init__(self, status: int, payload: Dict[str, Any],
                 retry_after_s: float) -> None:
        super().__init__(status, payload)
        self.retry_after_s = retry_after_s


class ServiceDeadline(ServiceError):
    """HTTP 504 — the request's deadline budget expired."""


class ServiceUnavailable(OSError):
    """The daemon could not be reached (or dropped the connection).

    ``delivered`` distinguishes the two failure halves that matter for
    retry semantics: ``False`` means the request bytes never fully
    reached the daemon (resending anywhere is safe), ``True`` means the
    request was delivered but its response was lost — the daemon may
    already have executed it, so only *idempotent* requests may be
    retried or failed over.
    """

    def __init__(self, message: str, delivered: bool = False) -> None:
        super().__init__(message)
        self.delivered = delivered


#: Decorrelated-jitter reconnect backoff bounds (seconds).
_BACKOFF_BASE_S = 0.01
_BACKOFF_CAP_S = 0.25


class ServiceClient:
    """One keep-alive HTTP connection to a resccl service daemon.

    Args:
        host/port: the daemon's listen address.
        timeout_s: socket timeout per HTTP exchange.
        overload_retries: how many times :meth:`request` re-sends after
            a ``429``, sleeping out the daemon's ``Retry-After`` hint
            first (capped by the request's remaining ``deadline_ms``
            budget).  The default ``0`` preserves raise-immediately
            semantics for callers that do their own pacing.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout_s: float = 120.0,
                 overload_retries: int = 0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.overload_retries = max(0, overload_retries)
        self._conn: Optional[http.client.HTTPConnection] = None
        self._backoff_s = _BACKOFF_BASE_S

    # -- connection management ----------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def _reconnect_pause(self) -> None:
        """Decorrelated-jitter backoff between reconnect attempts.

        ``sleep = min(cap, uniform(base, 3 * previous))`` — the AWS
        "decorrelated jitter" curve: retries from many clients that all
        lost the same daemon spread out instead of stampeding its
        restart in lockstep.  A successful exchange resets the curve.
        """
        self._backoff_s = min(
            _BACKOFF_CAP_S,
            random.uniform(_BACKOFF_BASE_S, self._backoff_s * 3.0),
        )
        time.sleep(self._backoff_s)

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 headers: Optional[Dict[str, str]] = None):
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        # One transparent reconnect: the daemon may have dropped an idle
        # keep-alive connection between calls.  POSTs are only retried
        # when the failure happened while *sending* — the daemon reads
        # the full body before dispatching, so a request that died
        # mid-send was never executed.  A POST that was delivered but
        # lost its response is NOT resent (it may already have run,
        # and a blind resend would execute it twice); GETs are
        # idempotent and retry unconditionally.
        sent = False
        for attempt in (0, 1):
            conn = self._connection()
            sent = False
            try:
                conn.request(method, path, body=payload, headers=send_headers)
                sent = True
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError) as exc:
                self.close()
                if attempt or (sent and method != "GET"):
                    raise ServiceUnavailable(
                        f"{self.host}:{self.port} unavailable: "
                        f"{type(exc).__name__}: {exc}",
                        delivered=sent,
                    ) from exc
                self._reconnect_pause()
        self._backoff_s = _BACKOFF_BASE_S
        return response, raw

    # -- operations ----------------------------------------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """POST one operation; returns the decoded JSON reply.

        Every POST carries an ``X-Trace-Id`` correlation header: an
        explicit ``trace_id=`` kwarg wins, else the thread's ambient
        :class:`~repro.obs.context.TraceContext` (so sub-requests made
        inside a traced request stay correlated), else a fresh id.  The
        reply echoes it as ``trace_id`` — hand that to
        ``/debug/traces/<id>`` or ``resccl trace-request``.

        With ``overload_retries > 0``, a ``429`` is retried after
        sleeping out the daemon's ``Retry-After`` hint — but never past
        the request's own ``deadline_ms`` budget: a wait that would
        outlive the budget raises :class:`ServiceOverloaded` instead of
        burning the budget asleep.
        """
        deadline_ms = fields.pop("deadline_ms", None)
        trace_id = fields.pop("trace_id", None)
        if trace_id is None:
            context = current_context()
            trace_id = context.trace_id if context else new_trace_id()
        headers = {TRACE_ID_HEADER: str(trace_id)}
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = str(deadline_ms)
        budget_until = (
            time.monotonic() + float(deadline_ms) / 1e3
            if deadline_ms is not None else None
        )
        retries_left = self.overload_retries
        while True:
            try:
                return self._request_once(op, fields, headers)
            except ServiceOverloaded as exc:
                wait_s = exc.retry_after_s
                if retries_left <= 0:
                    raise
                if budget_until is not None and (
                    time.monotonic() + wait_s >= budget_until
                ):
                    # Honoring the hint would spend the whole deadline
                    # budget asleep; surface the overload instead.
                    raise
                retries_left -= 1
                time.sleep(wait_s)

    def _request_once(self, op: str, fields: Dict[str, Any],
                      headers: Dict[str, str]) -> Dict[str, Any]:
        response, raw = self._request(
            "POST", f"/v1/{op}", body=fields, headers=headers
        )
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": raw[:200].decode("utf-8", "replace")}
        if response.status == 429:
            # The Retry-After *header* is the daemon's canonical pacing
            # signal (it survives proxies that rewrite bodies); the
            # body's float-precision retry_after_s refines it.
            retry_after = _parse_retry_after(
                response.getheader("Retry-After"))
            if retry_after is None:
                retry_after = payload.get("retry_after_s")
            if retry_after is None:
                retry_after = 1.0
            raise ServiceOverloaded(
                response.status, payload, float(retry_after))
        if response.status == 504:
            raise ServiceDeadline(response.status, payload)
        if response.status >= 300:
            raise ServiceError(response.status, payload)
        return payload

    def compile(self, algorithm: Optional[str] = None, **fields: Any):
        return self.request("compile", algorithm=algorithm, **fields)

    def simulate(self, algorithm: Optional[str] = None, **fields: Any):
        return self.request("simulate", algorithm=algorithm, **fields)

    def profile(self, algorithm: Optional[str] = None, **fields: Any):
        return self.request("profile", algorithm=algorithm, **fields)

    # -- health/metrics -----------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        response, raw = self._request("GET", "/healthz")
        payload = json.loads(raw.decode("utf-8"))
        payload["http_status"] = response.status
        return payload

    def readyz(self) -> Dict[str, Any]:
        response, raw = self._request("GET", "/readyz")
        payload = json.loads(raw.decode("utf-8"))
        payload["http_status"] = response.status
        return payload

    def metrics(self) -> str:
        response, raw = self._request("GET", "/metrics")
        if response.status != 200:
            raise ServiceError(response.status, {"error": "metrics failed"})
        return raw.decode("utf-8")

    # -- flight recorder / lifecycle ----------------------------------

    def debug_requests(self) -> Dict[str, Any]:
        """Index of flight-recorder-retained traces (``/debug/requests``)."""
        response, raw = self._request("GET", "/debug/requests")
        payload = json.loads(raw.decode("utf-8"))
        if response.status != 200:
            raise ServiceError(response.status, payload)
        return payload

    def request_trace(self, trace_id: str) -> Dict[str, Any]:
        """One retained stitched trace, or :class:`ServiceError` (404)."""
        response, raw = self._request("GET", f"/debug/traces/{trace_id}")
        payload = json.loads(raw.decode("utf-8"))
        if response.status != 200:
            raise ServiceError(response.status, payload)
        return payload

    def debug_lifecycle(self) -> Dict[str, Any]:
        """Lifecycle state + boot replay report (``/debug/lifecycle``)."""
        response, raw = self._request("GET", "/debug/lifecycle")
        payload = json.loads(raw.decode("utf-8"))
        if response.status != 200:
            raise ServiceError(response.status, payload)
        return payload


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    if not value:
        return None
    try:
        return max(0.0, float(value))
    except ValueError:
        return None


class _Replica:
    """One replica's address + circuit state inside the pool."""

    __slots__ = ("host", "port", "client", "failures", "open_until")

    def __init__(self, host: str, port: int, client: ServiceClient) -> None:
        self.host = host
        self.port = port
        self.client = client
        self.failures = 0  # consecutive connection-level failures
        self.open_until = 0.0  # monotonic instant the circuit re-closes

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class ServiceClientPool:
    """Failover client over an ordered list of daemon replicas.

    Replicas are tried in the configured order, skipping any whose
    per-replica circuit is open (``failure_threshold`` consecutive
    connection failures open it for ``cooldown_s``; it then half-opens
    and the next attempt is the probe).  When *every* circuit is open
    the ordered list is tried anyway — a pool with nowhere to send is
    wrong more often than every replica is actually dead.

    Failover semantics mirror the single client's retry rules:

    * connection failures and ``503`` (a draining or booting replica)
      fail over to the next replica;
    * a POST whose bytes were **delivered** but whose response was lost
      (``ServiceUnavailable.delivered``) is *never* re-sent — the
      replica may have executed it; the error surfaces to the caller;
    * ``429`` tries the next replica first, then (with
      ``overload_retries``) sleeps out the smallest ``Retry-After``
      hint, capped by the request's remaining deadline budget;
    * ``400``/``500``/``504`` are *request* verdicts, not replica
      health: they surface immediately without failover.

    Optional hedging (``hedge_after_s``): idempotent GETs that take
    longer than the hedge delay race a second replica, first response
    wins.  POSTs are **never** hedged — a hedge is a resend, and
    resending a possibly-executing POST violates the delivered-POST
    rule above.

    Like :class:`ServiceClient`, a pool instance is not thread-safe;
    give each thread its own pool.
    """

    def __init__(
        self,
        replicas: Sequence[Tuple[str, int]],
        timeout_s: float = 120.0,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        overload_retries: int = 1,
        hedge_after_s: Optional[float] = None,
    ) -> None:
        if not replicas:
            raise ValueError("ServiceClientPool needs at least one replica")
        self.timeout_s = timeout_s
        self.failure_threshold = max(1, failure_threshold)
        self.cooldown_s = cooldown_s
        self.overload_retries = max(0, overload_retries)
        self.hedge_after_s = hedge_after_s
        self._replicas = [
            _Replica(host, int(port),
                     ServiceClient(host, int(port), timeout_s=timeout_s))
            for host, port in replicas
        ]
        self.failovers = 0  # lifetime count, for tests/telemetry
        self.hedges = 0

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ServiceClientPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        for replica in self._replicas:
            replica.client.close()

    # -- circuit bookkeeping -------------------------------------------

    def _mark_ok(self, replica: _Replica) -> None:
        replica.failures = 0
        replica.open_until = 0.0

    def _mark_failed(self, replica: _Replica) -> None:
        replica.failures += 1
        if replica.failures >= self.failure_threshold:
            replica.open_until = time.monotonic() + self.cooldown_s

    def _candidates(self) -> List[_Replica]:
        """Ordered replicas with closed/half-open circuits; all of them
        when every circuit is open (better to probe than to give up)."""
        now = time.monotonic()
        healthy = [r for r in self._replicas if r.open_until <= now]
        return healthy or list(self._replicas)

    def replica_states(self) -> List[dict]:
        now = time.monotonic()
        return [
            {
                "address": r.address,
                "failures": r.failures,
                "circuit": "open" if r.open_until > now else "closed",
            }
            for r in self._replicas
        ]

    # -- POST path (ordered failover, never hedged) --------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """POST one operation with replica failover; see class docs."""
        deadline_ms = fields.get("deadline_ms")
        budget_until = (
            time.monotonic() + float(deadline_ms) / 1e3
            if deadline_ms is not None else None
        )
        retries_left = self.overload_retries
        while True:
            overloads: List[ServiceOverloaded] = []
            last_exc: Optional[Exception] = None
            for replica in self._candidates():
                try:
                    reply = replica.client.request(op, **dict(fields))
                except ServiceUnavailable as exc:
                    self._mark_failed(replica)
                    if exc.delivered:
                        # The replica may have executed this POST; a
                        # resend elsewhere could run it twice.  Callers
                        # that can tolerate at-least-once retry with a
                        # request_id for correlation.
                        raise
                    last_exc = exc
                    self.failovers += 1
                    continue
                except ServiceOverloaded as exc:
                    # Full queue: the replica is alive, just busy — not
                    # a circuit strike.  Try the others before pacing.
                    overloads.append(exc)
                    last_exc = exc
                    self.failovers += 1
                    continue
                except ServiceError as exc:
                    if exc.status == 503:
                        # Draining or booting: routine lifecycle, fail
                        # over (and strike the circuit so the drain
                        # window stops costing a round trip each call).
                        self._mark_failed(replica)
                        last_exc = exc
                        self.failovers += 1
                        continue
                    raise  # 400/500/504: a verdict on the request
                self._mark_ok(replica)
                return reply
            if overloads and retries_left > 0:
                wait_s = min(exc.retry_after_s for exc in overloads)
                if budget_until is None or (
                    time.monotonic() + wait_s < budget_until
                ):
                    retries_left -= 1
                    time.sleep(wait_s)
                    continue
            if last_exc is not None:
                raise last_exc
            raise ServiceUnavailable("no replica available")

    def compile(self, algorithm: Optional[str] = None, **fields: Any):
        return self.request("compile", algorithm=algorithm, **fields)

    def simulate(self, algorithm: Optional[str] = None, **fields: Any):
        return self.request("simulate", algorithm=algorithm, **fields)

    def profile(self, algorithm: Optional[str] = None, **fields: Any):
        return self.request("profile", algorithm=algorithm, **fields)

    # -- GET path (failover + optional hedging) ------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._get("healthz")

    def readyz(self) -> Dict[str, Any]:
        """Pool readiness: the first replica answering 200.

        A single replica's ``readyz()`` returns its 503 verdict rather
        than raising (not-ready is an answer, not an error), but a pool
        exists to route around exactly that — a draining or booting
        replica's refusal fails over to the next one.  Only when *no*
        replica is ready does the last refusal surface, so callers still
        see the honest 503 payload.
        """
        last_not_ready: Optional[Dict[str, Any]] = None
        last_exc: Optional[Exception] = None
        for replica in self._candidates():
            try:
                result = replica.client.readyz()
            except (ServiceUnavailable, ServiceError) as exc:
                if isinstance(exc, ServiceUnavailable):
                    self._mark_failed(replica)
                last_exc = exc
                self.failovers += 1
                continue
            if result.get("http_status") == 200:
                self._mark_ok(replica)
                return result
            last_not_ready = result
            self.failovers += 1
        if last_not_ready is not None:
            return last_not_ready
        raise last_exc if last_exc is not None else ServiceUnavailable(
            "no replica available"
        )

    def metrics(self) -> str:
        return self._get("metrics")

    def debug_requests(self) -> Dict[str, Any]:
        return self._get("debug_requests")

    def debug_lifecycle(self) -> Dict[str, Any]:
        return self._get("debug_lifecycle")

    def _get(self, method_name: str):
        """Idempotent GET with failover, hedged when configured."""
        candidates = self._candidates()
        if self.hedge_after_s is not None and len(candidates) > 1:
            return self._hedged_get(method_name, candidates)
        last_exc: Optional[Exception] = None
        for replica in candidates:
            try:
                result = getattr(replica.client, method_name)()
            except (ServiceUnavailable, ServiceError) as exc:
                if isinstance(exc, ServiceUnavailable):
                    self._mark_failed(replica)
                last_exc = exc
                self.failovers += 1
                continue
            self._mark_ok(replica)
            return result
        raise last_exc if last_exc is not None else ServiceUnavailable(
            "no replica available"
        )

    def _hedged_get(self, method_name: str, candidates: List[_Replica]):
        """Race the first replica against a delayed second: GETs are
        idempotent, so the duplicate is waste at worst, latency-cover at
        best.  First success wins; the loser's result is discarded."""
        results: "queue.Queue[tuple]" = queue.Queue()

        def attempt(replica: _Replica) -> None:
            # A private connection per attempt: the pooled clients are
            # not thread-safe and the loser must not poison them.
            client = ServiceClient(
                replica.host, replica.port, timeout_s=self.timeout_s
            )
            try:
                results.put((replica, getattr(client, method_name)(), None))
            except Exception as exc:  # noqa: BLE001 - collected below
                results.put((replica, None, exc))
            finally:
                client.close()

        threads = [threading.Thread(
            target=attempt, args=(candidates[0],), daemon=True)]
        threads[0].start()
        launched = 1
        first_error: Optional[Exception] = None
        deadline = time.monotonic() + self.timeout_s
        while time.monotonic() < deadline:
            try:
                remaining = (
                    self.hedge_after_s
                    if launched < min(2, len(candidates))
                    else deadline - time.monotonic()
                )
                replica, value, error = results.get(
                    timeout=max(0.001, remaining))
            except queue.Empty:
                if launched < min(2, len(candidates)):
                    self.hedges += 1
                    threads.append(threading.Thread(
                        target=attempt, args=(candidates[launched],),
                        daemon=True))
                    threads[launched].start()
                    launched += 1
                    continue
                break
            if error is None:
                self._mark_ok(replica)
                return value
            if isinstance(error, ServiceUnavailable):
                self._mark_failed(replica)
            if first_error is None:
                first_error = error
            if launched >= min(2, len(candidates)) and results.empty():
                if not any(t.is_alive() for t in threads):
                    break
        raise first_error if first_error is not None else ServiceUnavailable(
            f"hedged {method_name} got no reply within {self.timeout_s}s"
        )


__all__ = [
    "ServiceClient",
    "ServiceClientPool",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceDeadline",
    "ServiceUnavailable",
]

"""Minimal stdlib client for the resccl service daemon.

Built on :mod:`http.client` so scripts, tests, and the load benchmark
can drive the daemon without extra dependencies.  One
:class:`ServiceClient` wraps one keep-alive connection and is *not*
thread-safe — give each load-generator thread its own client.

Typical use::

    from repro.service import ServiceClient

    with ServiceClient("127.0.0.1", 8642) as client:
        reply = client.simulate("allreduce:8", nodes=1, gpus=8,
                                deadline_ms=10_000)
        print(reply["result"]["completion_time_us"])

Errors map onto exception types by HTTP status so callers can react to
the daemon's robustness signals individually: ``429`` (shed load)
raises :class:`ServiceOverloaded` carrying ``retry_after_s``, ``504``
(deadline spent) raises :class:`ServiceDeadline`, any other non-2xx
raises :class:`ServiceError` with the decoded error payload.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Optional

from ..obs.context import TRACE_ID_HEADER, current_context, new_trace_id


class ServiceError(RuntimeError):
    """Non-2xx reply from the daemon."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        detail = payload.get("error", "request failed")
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class ServiceOverloaded(ServiceError):
    """HTTP 429 — the daemon shed this request; retry after a delay."""

    def __init__(self, status: int, payload: Dict[str, Any],
                 retry_after_s: float) -> None:
        super().__init__(status, payload)
        self.retry_after_s = retry_after_s


class ServiceDeadline(ServiceError):
    """HTTP 504 — the request's deadline budget expired."""


class ServiceClient:
    """One keep-alive HTTP connection to a resccl service daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout_s: float = 120.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- connection management ----------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 headers: Optional[Dict[str, str]] = None):
        payload = json.dumps(body).encode("utf-8") if body is not None else None
        send_headers = {"Content-Type": "application/json"}
        if headers:
            send_headers.update(headers)
        # One transparent reconnect: the daemon may have dropped an idle
        # keep-alive connection between calls.  POSTs are only retried
        # when the failure happened while *sending* — the daemon reads
        # the full body before dispatching, so a request that died
        # mid-send was never executed.  A POST that was delivered but
        # lost its response is NOT resent (it may already have run,
        # and a blind resend would execute it twice); GETs are
        # idempotent and retry unconditionally.
        for attempt in (0, 1):
            conn = self._connection()
            sent = False
            try:
                conn.request(method, path, body=payload, headers=send_headers)
                sent = True
                response = conn.getresponse()
                raw = response.read()
                break
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt or (sent and method != "GET"):
                    raise
        return response, raw

    # -- operations ----------------------------------------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """POST one operation; returns the decoded JSON reply.

        Every POST carries an ``X-Trace-Id`` correlation header: an
        explicit ``trace_id=`` kwarg wins, else the thread's ambient
        :class:`~repro.obs.context.TraceContext` (so sub-requests made
        inside a traced request stay correlated), else a fresh id.  The
        reply echoes it as ``trace_id`` — hand that to
        ``/debug/traces/<id>`` or ``resccl trace-request``.
        """
        deadline_ms = fields.pop("deadline_ms", None)
        trace_id = fields.pop("trace_id", None)
        if trace_id is None:
            context = current_context()
            trace_id = context.trace_id if context else new_trace_id()
        headers = {TRACE_ID_HEADER: str(trace_id)}
        if deadline_ms is not None:
            headers["X-Deadline-Ms"] = str(deadline_ms)
        response, raw = self._request(
            "POST", f"/v1/{op}", body=fields, headers=headers
        )
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": raw[:200].decode("utf-8", "replace")}
        if response.status == 429:
            retry_after = payload.get("retry_after_s")
            if retry_after is None:
                retry_after = float(response.getheader("Retry-After") or 1.0)
            raise ServiceOverloaded(response.status, payload, retry_after)
        if response.status == 504:
            raise ServiceDeadline(response.status, payload)
        if response.status >= 300:
            raise ServiceError(response.status, payload)
        return payload

    def compile(self, algorithm: Optional[str] = None, **fields: Any):
        return self.request("compile", algorithm=algorithm, **fields)

    def simulate(self, algorithm: Optional[str] = None, **fields: Any):
        return self.request("simulate", algorithm=algorithm, **fields)

    def profile(self, algorithm: Optional[str] = None, **fields: Any):
        return self.request("profile", algorithm=algorithm, **fields)

    # -- health/metrics -----------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        response, raw = self._request("GET", "/healthz")
        payload = json.loads(raw.decode("utf-8"))
        payload["http_status"] = response.status
        return payload

    def readyz(self) -> Dict[str, Any]:
        response, raw = self._request("GET", "/readyz")
        payload = json.loads(raw.decode("utf-8"))
        payload["http_status"] = response.status
        return payload

    def metrics(self) -> str:
        response, raw = self._request("GET", "/metrics")
        if response.status != 200:
            raise ServiceError(response.status, {"error": "metrics failed"})
        return raw.decode("utf-8")

    # -- flight recorder ----------------------------------------------

    def debug_requests(self) -> Dict[str, Any]:
        """Index of flight-recorder-retained traces (``/debug/requests``)."""
        response, raw = self._request("GET", "/debug/requests")
        payload = json.loads(raw.decode("utf-8"))
        if response.status != 200:
            raise ServiceError(response.status, payload)
        return payload

    def request_trace(self, trace_id: str) -> Dict[str, Any]:
        """One retained stitched trace, or :class:`ServiceError` (404)."""
        response, raw = self._request("GET", f"/debug/traces/{trace_id}")
        payload = json.loads(raw.decode("utf-8"))
        if response.status != 200:
            raise ServiceError(response.status, payload)
        return payload


__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceDeadline",
]

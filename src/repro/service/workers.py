"""Supervised multiprocessing worker pool for the service daemon.

Compiles and simulations run in worker *processes* so a crash, a hang,
or a SIGKILL never takes the daemon down — the supervisor notices and
repairs.  The design mirrors the runtime's fault stack: heartbeat-based
stall detection (the watchdog idiom of :mod:`repro.faults.watchdog`,
transplanted from simulated time to wall clock) and retry with the
shared geometric backoff curve
(:func:`repro.faults.recovery.backoff_delay`).

Responsibilities, by thread:

* **Callers** (the daemon's event loop) call :meth:`WorkerPool.submit`,
  which applies the admission bound (a full queue raises
  :class:`PoolSaturated` -> HTTP 429) and returns a
  :class:`concurrent.futures.Future`.
* **The supervisor thread** owns everything else: dispatching queued
  jobs to idle workers, collecting replies, enforcing per-job
  **deadlines** (a worker still computing past its job's deadline is
  SIGKILLed — the request is cancelled, not computed), detecting
  **crashes** (process death) and **hangs** (stale heartbeat), and
  respawning workers.  A job that loses its worker is retried once
  after a backoff delay; a second loss fails it with
  :class:`WorkerCrashed`.
* **Worker processes** loop over a duplex pipe: receive a job payload,
  run :func:`repro.service.protocol.execute` under one process-lifetime
  metrics registry, and reply with the result plus a *cumulative*
  registry snapshot (the daemon folds those into its live ``/metrics``
  registry under a per-worker watermark, so lost replies leave no
  metrics hole and a respawn is detected as a counter reset).  A job
  message carrying a trace context additionally gets back the worker's
  span tree and clock anchors for request-trace stitching.  Each worker
  arms its own in-process plan-cache LRU; the optional ``cache_dir``
  disk tier is the shared L2 that lets one worker's cold compile warm
  every other worker.

A deliberate limitation, shared with every heartbeat scheme: the
heartbeat runs on a side thread, so a pure-Python busy loop in a job
keeps beating and is only caught by its *deadline*, while a frozen or
killed process is caught by the heartbeat/liveness check.  Between the
two checks every wedged state is covered as long as jobs carry
deadlines — which admission control guarantees.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from typing import Deque, Dict, List, Optional

from ..faults.recovery import backoff_delay
from ..obs.context import bound_context, context_from_wire
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, install_registry
from ..obs.spans import tracing
from .protocol import RequestError, execute

#: Worker-side heartbeat publish period (seconds).
HEARTBEAT_INTERVAL_S = 0.05

#: Supervisor poll tick (seconds); replies wake it immediately.
SUPERVISOR_TICK_S = 0.02


class PoolSaturated(RuntimeError):
    """Admission control rejected the job (queue full -> HTTP 429)."""

    def __init__(self, depth: int, retry_after_s: float) -> None:
        super().__init__(
            f"request queue full ({depth} waiting); retry in "
            f"~{retry_after_s:.1f}s"
        )
        self.depth = depth
        self.retry_after_s = retry_after_s


class DeadlineExceeded(RuntimeError):
    """The job's deadline budget expired (queued or mid-compute)."""


class WorkerCrashed(RuntimeError):
    """The job's worker died and the retry budget is exhausted."""


class JobFailed(RuntimeError):
    """The job raised inside the worker; carries the worker traceback."""

    def __init__(self, worker_traceback: str) -> None:
        super().__init__(f"job failed in worker:\n{worker_traceback}")
        self.worker_traceback = worker_traceback


@dataclass
class PoolStats:
    """Supervision counters (mutated by the supervisor thread only)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    retries: int = 0
    restarts: int = 0
    crash_kills: int = 0
    hang_kills: int = 0
    deadline_kills: int = 0
    deadline_expired: int = 0
    admission_rejects: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _Job:
    job_id: int
    payload: dict
    deadline: Optional[float]  # absolute time.time() seconds
    future: Future
    trace: Optional[dict] = None  # TraceContext.to_wire() of the leader
    attempts: int = 0
    not_before: float = 0.0
    submitted_at: float = field(default_factory=time.time)


class _Worker:
    __slots__ = ("index", "proc", "conn", "heartbeat", "job", "job_started")

    def __init__(self, index: int) -> None:
        self.index = index
        self.proc = None
        self.conn = None
        self.heartbeat = None
        self.job: Optional[_Job] = None
        self.job_started = 0.0


def _worker_main(
    conn, heartbeat, cache_dir, lru_capacity, index=0, tuning_table=None
) -> None:
    """Worker process entry: jobs in, results + metrics out."""
    from ..core import plancache

    if cache_dir:
        plancache.configure(cache_dir=cache_dir, capacity=lru_capacity)
    if tuning_table:
        from ..tuning.table import configure_tuning

        configure_tuning(tuning_table)

    def _beat() -> None:
        while True:
            heartbeat.value = time.time()
            time.sleep(HEARTBEAT_INTERVAL_S)

    threading.Thread(target=_beat, daemon=True, name="heartbeat").start()

    # One *cumulative* registry for the worker's lifetime: every reply
    # carries a full snapshot and the daemon merges it under a
    # per-worker source watermark (MetricsRegistry.merge_json), so a
    # reply lost to a kill is not a metrics hole — the increments ride
    # the next snapshot — and a respawn shows up as a counter reset.
    registry = MetricsRegistry()
    install_registry(registry)
    logger = get_logger("worker")

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        job_id = msg["job_id"]
        deadline = msg.get("deadline")
        context = context_from_wire(msg.get("trace"))
        if deadline is not None and time.time() >= deadline:
            # Cancelled, not computed: the budget is already spent.
            reply = {"job_id": job_id, "status": "expired", "metrics": None,
                     "worker": index}
        else:
            reply = {"job_id": job_id, "status": "ok", "metrics": None,
                     "worker": index}
            tracer = None
            with bound_context(context):
                logger.info("job-start", job_id=job_id, worker=index)
                reply["started_wall"] = time.time()
                try:
                    if context is not None and context.sampled:
                        with tracing() as tracer:
                            reply["result"] = execute(msg["payload"])
                    else:
                        reply["result"] = execute(msg["payload"])
                    reply["ended_wall"] = time.time()
                    reply["metrics"] = registry.to_json()
                    if tracer is not None:
                        reply["trace"] = {
                            "spans": tracer.to_dict(),
                            "epoch_wall": tracer.epoch_wall,
                        }
                    logger.info("job-finished", job_id=job_id, worker=index)
                except RequestError as exc:
                    logger.warning("job-rejected", job_id=job_id,
                                   worker=index, error=str(exc))
                    reply = {
                        "job_id": job_id, "status": "bad_request",
                        "error": str(exc), "metrics": None, "worker": index,
                    }
                except BaseException:  # noqa: BLE001 - must cross the pipe
                    logger.error("job-failed", job_id=job_id, worker=index)
                    reply = {
                        "job_id": job_id, "status": "error",
                        "error": traceback.format_exc(), "metrics": None,
                        "worker": index,
                    }
        try:
            conn.send(reply)
        except OSError:
            break  # supervisor is gone
        except Exception:
            # Reply failed to pickle (PicklingError, AttributeError,
            # ValueError, ... — cannot happen for JSON-safe results, but
            # never leave the supervisor waiting): degrade to text
            # instead of letting the worker die and churn a respawn.
            try:
                conn.send({
                    "job_id": job_id, "status": "error",
                    "error": "worker reply was unserializable",
                    "metrics": None,
                })
            except OSError:
                break


class WorkerPool:
    """Supervised pool of compile/simulate workers.

    Args:
        workers: worker-process count.
        max_queue: admission bound on *waiting* jobs (not in-flight).
        cache_dir: shared L2 plan-cache directory handed to every worker.
        hang_timeout_s: heartbeat staleness that declares a worker hung.
        retry_backoff_s: base of the shared geometric backoff curve used
            to space the single crash retry.
        max_retries: worker-death retries per job (1 = retry once).
        deadline_grace_s: slack past a job's deadline before its worker
            is killed (gives the in-worker expiry check first shot).
        lru_capacity: per-worker in-process plan-cache LRU bound.
        tuning_table: tuning-table file every worker installs at boot
            (:func:`repro.tuning.configure_tuning`), so tuned cells are
            served without each worker re-reading CLI flags.
    """

    def __init__(
        self,
        workers: int = 2,
        max_queue: int = 32,
        cache_dir: Optional[str] = None,
        hang_timeout_s: float = 10.0,
        retry_backoff_s: float = 0.05,
        max_retries: int = 1,
        deadline_grace_s: float = 0.2,
        lru_capacity: Optional[int] = None,
        tuning_table: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.size = workers
        self.max_queue = max_queue
        self.cache_dir = str(cache_dir) if cache_dir else None
        self.hang_timeout_s = hang_timeout_s
        self.retry_backoff_s = retry_backoff_s
        self.max_retries = max_retries
        self.deadline_grace_s = deadline_grace_s
        self.lru_capacity = lru_capacity
        self.tuning_table = str(tuning_table) if tuning_table else None
        self.stats = PoolStats()
        self._ctx = multiprocessing.get_context()
        self._queue: Deque[_Job] = deque()
        self._active: Dict[Future, _Job] = {}  # future -> live job
        self._lock = threading.Lock()
        self._job_ids = itertools.count(1)
        self._workers: List[_Worker] = []
        self._stop = threading.Event()
        self._supervisor: Optional[threading.Thread] = None
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._workers = [_Worker(i) for i in range(self.size)]
        for worker in self._workers:
            self._spawn(worker)
        self._running = True
        self._supervisor = threading.Thread(
            target=self._supervise, daemon=True, name="pool-supervisor"
        )
        self._supervisor.start()

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        self._stop.set()
        self._wake()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        for worker in self._workers:
            if worker.proc is None:
                continue
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
            worker.proc.join(timeout=0.5)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            self._fail_job(
                worker.job, RuntimeError("worker pool stopped"), count=False
            )
            worker.job = None
        with self._lock:
            pending, self._queue = list(self._queue), deque()
        for job in pending:
            self._fail_job(job, RuntimeError("worker pool stopped"), count=False)

    # ------------------------------------------------------------------
    # Submission (called from the daemon thread)
    # ------------------------------------------------------------------

    def submit(
        self,
        payload: dict,
        deadline: Optional[float] = None,
        retry_after_s: float = 1.0,
        trace: Optional[dict] = None,
    ) -> Future:
        """Admit one job; returns its future or raises :class:`PoolSaturated`.

        ``deadline`` is an absolute ``time.time()`` instant shared with
        the workers (one wall clock across processes).  ``trace`` is an
        optional :meth:`~repro.obs.context.TraceContext.to_wire` dict
        that rides the job message so the worker correlates its logs and
        (when sampled) ships its span tree back in the reply.
        """
        if not self._running:
            raise RuntimeError("worker pool is not running")
        future: Future = Future()
        job = _Job(
            job_id=next(self._job_ids),
            payload=payload,
            deadline=deadline,
            future=future,
            trace=trace,
        )
        with self._lock:
            if len(self._queue) >= self.max_queue:
                self.stats.admission_rejects += 1
                raise PoolSaturated(len(self._queue), retry_after_s)
            self.stats.submitted += 1
            self._queue.append(job)
            self._active[future] = job
        self._wake()
        return future

    def extend_deadline(self, future: Future, deadline: float) -> None:
        """Stretch a live job's deadline (extensions only, never cuts).

        Used by request coalescing: a waiter that attaches to an
        in-flight job with a *later* deadline than the leader's must
        not see the shared job killed at the leader's earlier budget.
        Queued jobs pick the new deadline up at dispatch; a job already
        on a worker keeps computing because the supervisor's
        deadline-kill check re-reads ``job.deadline`` every tick.
        """
        with self._lock:
            job = self._active.get(future)
            if job is not None and (
                job.deadline is not None and deadline > job.deadline
            ):
                job.deadline = deadline

    def drain(self, timeout_s: float) -> bool:
        """Wait for the queue and every in-flight job to finish.

        Submission is the caller's problem — the daemon stops admitting
        before draining — so this only has to outwait work that is
        already inside the pool.  Returns ``True`` when the pool went
        idle within the budget, ``False`` on timeout (the caller then
        stops anyway; queued jobs fail with "worker pool stopped").
        """
        deadline = time.monotonic() + max(0.0, timeout_s)
        while time.monotonic() < deadline:
            if self.queue_depth() == 0 and self.inflight() == 0:
                return True
            time.sleep(0.01)
        return self.queue_depth() == 0 and self.inflight() == 0

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def inflight(self) -> int:
        return sum(1 for w in self._workers if w.job is not None)

    def alive_workers(self) -> int:
        return sum(
            1 for w in self._workers
            if w.proc is not None and w.proc.is_alive()
        )

    def worker_pids(self) -> List[int]:
        return [w.proc.pid for w in self._workers if w.proc is not None]

    def busy_pids(self) -> List[int]:
        """PIDs currently executing a job (chaos tests SIGKILL these)."""
        return [
            w.proc.pid for w in self._workers
            if w.proc is not None and w.job is not None and w.proc.is_alive()
        ]

    # ------------------------------------------------------------------
    # Supervision (supervisor thread only)
    # ------------------------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        heartbeat = self._ctx.Value("d", time.time())
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, heartbeat, self.cache_dir, self.lru_capacity,
                  worker.index, self.tuning_table),
            daemon=True,
            name=f"resccl-worker-{worker.index}",
        )
        proc.start()
        child_conn.close()
        worker.proc = proc
        worker.conn = parent_conn
        worker.heartbeat = heartbeat
        worker.job = None
        worker.job_started = 0.0

    def _wake(self) -> None:
        try:
            self._wake_w.send_bytes(b"w")
        except (OSError, ValueError):
            pass

    def _supervise(self) -> None:
        while not self._stop.is_set():
            busy = [
                w for w in self._workers
                if w.job is not None and w.proc is not None
            ]
            conns = [w.conn for w in busy] + [self._wake_r]
            try:
                ready = _conn_wait(conns, timeout=SUPERVISOR_TICK_S)
            except OSError:
                ready = []
            while self._wake_r.poll(0):
                try:
                    self._wake_r.recv_bytes()
                except (EOFError, OSError):
                    break
            for worker in busy:
                if worker.conn in ready:
                    self._collect(worker)
            now = time.time()
            for worker in self._workers:
                self._check_worker(worker, now)
            self._dispatch(now)

    def _collect(self, worker: _Worker) -> None:
        try:
            msg = worker.conn.recv()
        except (EOFError, OSError):
            self._on_worker_death(worker, reason="pipe closed")
            return
        job = worker.job
        worker.job = None
        if job is None or msg.get("job_id") != job.job_id:
            return  # reply from a job superseded by a kill; drop it
        status = msg.get("status")
        if status == "ok":
            self.stats.completed += 1
            self._resolve(
                job,
                {
                    "result": msg["result"],
                    "metrics": msg.get("metrics"),
                    "worker": msg.get("worker"),
                    "started_wall": msg.get("started_wall"),
                    "ended_wall": msg.get("ended_wall"),
                    "trace": msg.get("trace"),
                },
            )
        elif status == "bad_request":
            self._fail_job(job, RequestError(msg.get("error", "bad request")))
        elif status == "expired":
            self.stats.deadline_expired += 1
            self._fail_job(
                job,
                DeadlineExceeded(
                    "deadline expired before the worker started the job"
                ),
            )
        else:
            self._fail_job(job, JobFailed(msg.get("error", "unknown error")))

    def _check_worker(self, worker: _Worker, now: float) -> None:
        if worker.proc is None:
            return
        if not worker.proc.is_alive():
            self.stats.crash_kills += 1
            self._on_worker_death(worker, reason="process died")
            return
        job = worker.job
        if job is None:
            return
        if (
            job.deadline is not None
            and now > job.deadline + self.deadline_grace_s
        ):
            # Cancel-by-kill: the worker is mid-compute past the budget.
            self.stats.deadline_kills += 1
            self.stats.deadline_expired += 1
            worker.job = None
            self._kill_and_respawn(worker)
            self._fail_job(
                job, DeadlineExceeded("deadline expired mid-computation")
            )
            return
        if (
            now - worker.heartbeat.value > self.hang_timeout_s
            and now - worker.job_started > self.hang_timeout_s
        ):
            self.stats.hang_kills += 1
            self._on_worker_death(worker, reason="heartbeat stale")

    def _on_worker_death(self, worker: _Worker, reason: str) -> None:
        job = worker.job
        worker.job = None
        self._kill_and_respawn(worker)
        if job is not None:
            self._retry_or_fail(job, reason)

    def _kill_and_respawn(self, worker: _Worker) -> None:
        self.stats.restarts += 1
        if worker.proc is not None and worker.proc.is_alive():
            worker.proc.kill()
            worker.proc.join(timeout=1.0)
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
        self._spawn(worker)

    def _retry_or_fail(self, job: _Job, reason: str) -> None:
        job.attempts += 1
        now = time.time()
        if job.attempts > self.max_retries or (
            job.deadline is not None and now >= job.deadline
        ):
            self._fail_job(
                job,
                WorkerCrashed(
                    f"worker died ({reason}); retry budget "
                    f"({self.max_retries}) exhausted after "
                    f"{job.attempts} attempt(s)"
                ),
            )
            return
        # Reuse the fault stack's backoff curve for the respawn retry.
        job.not_before = now + backoff_delay(
            self.retry_backoff_s, 2.0, job.attempts - 1
        )
        self.stats.retries += 1
        with self._lock:
            self._queue.appendleft(job)

    def _dispatch(self, now: float) -> None:
        for worker in self._workers:
            if (
                worker.job is not None
                or worker.proc is None
                or not worker.proc.is_alive()
            ):
                continue
            while True:
                job = self._pop_dispatchable(now)
                if job is None:
                    return
                if job.future.cancelled():
                    with self._lock:
                        self._active.pop(job.future, None)
                    continue
                if job.deadline is not None and now >= job.deadline:
                    self.stats.deadline_expired += 1
                    self._fail_job(
                        job, DeadlineExceeded("deadline expired in queue")
                    )
                    continue
                try:
                    worker.conn.send({
                        "job_id": job.job_id,
                        "payload": job.payload,
                        "deadline": job.deadline,
                        "trace": job.trace,
                    })
                except (OSError, ValueError):
                    # Worker vanished between checks: requeue the job
                    # without charging its retry budget and repair.
                    with self._lock:
                        self._queue.appendleft(job)
                    self._on_worker_death(worker, reason="dispatch failed")
                    break
                worker.job = job
                worker.job_started = now
                break

    def _pop_dispatchable(self, now: float) -> Optional[_Job]:
        with self._lock:
            for index, job in enumerate(self._queue):
                if job.not_before <= now:
                    del self._queue[index]
                    return job
        return None

    # ------------------------------------------------------------------

    def _resolve(self, job: _Job, value: dict) -> None:
        with self._lock:
            self._active.pop(job.future, None)
        try:
            if not job.future.done():
                job.future.set_result(value)
        except InvalidStateError:
            pass

    def _fail_job(
        self, job: Optional[_Job], exc: BaseException, count: bool = True
    ) -> None:
        if job is None:
            return
        with self._lock:
            self._active.pop(job.future, None)
        if count:
            self.stats.failed += 1
        try:
            if not job.future.done():
                job.future.set_exception(exc)
        except InvalidStateError:
            pass


__all__ = [
    "DeadlineExceeded",
    "HEARTBEAT_INTERVAL_S",
    "JobFailed",
    "PoolSaturated",
    "PoolStats",
    "WorkerCrashed",
    "WorkerPool",
]

"""Wire protocol of the compile/simulate service: requests + executor.

One request vocabulary is shared by the daemon (parsing/validation and
coalescing keys), the worker processes (execution), and the client
(construction), so the three layers cannot drift apart:

* :class:`ServiceRequest` — a validated compile/simulate/profile job.
  Requests name an algorithm the same way the CLI does (a registry
  name, a ``taccl:``/``teccl:`` synthesizer spec) or carry inline
  ResCCLang ``source`` text.  File paths are deliberately rejected: a
  network-facing daemon must not read arbitrary local files.
* :func:`parse_request` — payload dict -> :class:`ServiceRequest`,
  raising :class:`RequestError` (HTTP 400) on anything malformed.
* :func:`execute` — runs one request against the same
  :class:`~repro.core.backend.ResCCLBackend` / plan-cache APIs the CLI
  uses and returns a JSON-safe result dict.  This is the function the
  supervised workers run; it is importable and process-free so unit
  tests exercise it directly.
* :func:`request_fingerprint` — coalescing identity built on
  :meth:`~repro.core.plancache.PlanCache.compile_key`, so two requests
  coalesce exactly when they would share a plan-cache entry (plus the
  op-specific knobs that shape the response).

Degraded mode (:attr:`ServiceRequest.degraded`) swaps the requested
algorithm for the conservative built-in ring of the same collective —
the cheap, almost-always-cached plan the circuit breaker serves while
cold compiles are timing out.  Responses carry ``degraded: true`` so
clients can tell.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import time
from dataclasses import dataclass
from typing import Optional

from ..algorithms import available_algorithms, build_algorithm
from ..algorithms.ring import ring_allgather, ring_allreduce, ring_reducescatter
from ..core import ResCCLBackend
from ..core.compiler import compile_fingerprint
from ..core.plancache import get_cache
from ..ir.task import Collective, parse_collective
from ..lang import parse_program
from ..runtime import MB, simulate
from ..topology import Cluster, profile_by_name

#: Operations the service accepts (the ``/v1/<op>`` endpoints).
OPS = ("compile", "simulate", "profile")

#: Admission cap on ``nodes * gpus``.  Building a :class:`Cluster` (and
#: its per-edge capacity table) is O(world size) and happens on the
#: daemon's event loop for fingerprinting, so an unbounded world size
#: would let a single request stall every connection — including
#: ``/healthz`` — or OOM the daemon outright.
MAX_WORLD_SIZE = 4096

#: Collective -> cheap reference-ring builder for degraded mode.
RING_FALLBACKS = {
    Collective.ALLREDUCE: ring_allreduce,
    Collective.ALLGATHER: ring_allgather,
    Collective.REDUCESCATTER: ring_reducescatter,
}


class RequestError(ValueError):
    """A malformed or unserviceable request (maps to HTTP 400)."""


@dataclass
class ServiceRequest:
    """One validated compile/simulate/profile job."""

    op: str
    algorithm: Optional[str] = None  # registry name or taccl:/teccl: spec
    source: Optional[str] = None  # inline ResCCLang text
    nodes: int = 2
    gpus: int = 8
    profile: str = "A100"
    scheduler: str = "hpds"
    buffer_mb: float = 64.0
    mbs: int = 8
    deadline_ms: Optional[float] = None
    request_id: Optional[str] = None
    degraded: bool = False
    #: Simulation fidelity preset (``simulate``/``profile`` ops only):
    #: ``exact`` (default) is bit-reproducible, ``fast`` trades a
    #: bounded completion-time error for wall clock — the same contract
    #: as the CLI's ``--sim-fidelity`` (docs/performance.md).
    sim_fidelity: str = "exact"

    def spec(self) -> str:
        """The algorithm identity string (name, synth spec, or source)."""
        return self.source if self.source is not None else (self.algorithm or "")

    def to_payload(self) -> dict:
        """JSON-safe dict form (what travels to the workers)."""
        return dataclasses.asdict(self)


def _want(payload: dict, key: str, kind, default, *, positive: bool = False):
    value = payload.get(key, default)
    if value is None:
        return None
    try:
        value = kind(value)
    except (TypeError, ValueError, OverflowError):
        raise RequestError(f"field {key!r} must be {kind.__name__}") from None
    if positive:
        # NaN passes every <=/< comparison and Infinity survives the
        # min() deadline clamp, so both would defeat the limits built
        # on these fields; reject them outright.
        if isinstance(value, float) and not math.isfinite(value):
            raise RequestError(f"field {key!r} must be finite")
        if value <= 0:
            raise RequestError(f"field {key!r} must be positive")
    return value


def parse_request(op: str, payload: object) -> ServiceRequest:
    """Validate one JSON request body into a :class:`ServiceRequest`."""
    if op not in OPS:
        raise RequestError(f"unknown op {op!r}; valid: {', '.join(OPS)}")
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    algorithm = payload.get("algorithm")
    source = payload.get("source")
    if (algorithm is None) == (source is None):
        raise RequestError(
            "give exactly one of 'algorithm' (built-in name or "
            "taccl:/teccl:<collective> spec) or 'source' (ResCCLang text)"
        )
    if algorithm is not None:
        if not isinstance(algorithm, str) or not algorithm:
            raise RequestError("field 'algorithm' must be a non-empty string")
        if "/" in algorithm or "\\" in algorithm or algorithm.endswith(".xml"):
            raise RequestError(
                "file paths are not served; inline the program as 'source'"
            )
        if ":" in algorithm:
            synth, _, coll = algorithm.partition(":")
            if synth.lower() not in ("taccl", "teccl"):
                raise RequestError(f"unknown synthesizer {synth!r}")
            try:
                parse_collective(coll)
            except ValueError as exc:
                raise RequestError(str(exc)) from None
        elif algorithm not in available_algorithms():
            raise RequestError(
                f"unknown algorithm {algorithm!r}; built-ins: "
                f"{', '.join(available_algorithms())}"
            )
    if source is not None and (not isinstance(source, str) or not source.strip()):
        raise RequestError("field 'source' must be non-empty ResCCLang text")
    scheduler = payload.get("scheduler", "hpds")
    if scheduler not in ("hpds", "rr"):
        raise RequestError("field 'scheduler' must be 'hpds' or 'rr'")
    profile = payload.get("profile", "A100")
    try:
        profile_by_name(str(profile))
    except (KeyError, ValueError) as exc:
        raise RequestError(f"unknown GPU profile {profile!r}: {exc}") from None
    request_id = payload.get("request_id")
    if request_id is not None:
        request_id = str(request_id)
    sim_fidelity = payload.get("sim_fidelity", "exact")
    if sim_fidelity not in ("exact", "fast"):
        raise RequestError(
            "field 'sim_fidelity' must be 'exact' or 'fast'"
        )
    nodes = _want(payload, "nodes", int, 2, positive=True)
    gpus = _want(payload, "gpus", int, 8, positive=True)
    if nodes * gpus > MAX_WORLD_SIZE:
        raise RequestError(
            f"cluster too large: nodes*gpus = {nodes * gpus} exceeds the "
            f"service cap of {MAX_WORLD_SIZE} ranks"
        )
    return ServiceRequest(
        op=op,
        algorithm=algorithm,
        source=source,
        nodes=nodes,
        gpus=gpus,
        profile=str(profile),
        scheduler=scheduler,
        buffer_mb=_want(payload, "buffer_mb", float, 64.0, positive=True),
        mbs=_want(payload, "mbs", int, 8, positive=True),
        deadline_ms=_want(payload, "deadline_ms", float, None, positive=True),
        request_id=request_id,
        degraded=bool(payload.get("degraded", False)),
        sim_fidelity=sim_fidelity,
    )


def request_from_payload(payload: dict) -> ServiceRequest:
    """Rehydrate the worker-side request from :meth:`to_payload`."""
    fields = {f.name for f in dataclasses.fields(ServiceRequest)}
    return ServiceRequest(**{k: v for k, v in payload.items() if k in fields})


def prewarm_payload(request: ServiceRequest) -> dict:
    """The scrubbed payload the cache-prewarm manifest stores per key.

    Prewarm replays only need to *warm the plan cache*, so the payload
    is always the ``compile`` op over the compile-identity fields:
    per-request ephemera (deadline, request id, trace correlation) are
    dropped, and a ``simulate`` and a ``profile`` of the same plan warm
    the same cache entry as its ``compile``.
    """
    return {
        "op": "compile",
        "algorithm": request.algorithm,
        "source": request.source,
        "nodes": request.nodes,
        "gpus": request.gpus,
        "profile": request.profile,
        "scheduler": request.scheduler,
        "buffer_mb": request.buffer_mb,
        "mbs": request.mbs,
        "degraded": request.degraded,
    }


# ----------------------------------------------------------------------
# Coalescing identity
# ----------------------------------------------------------------------


def request_fingerprint(
    request: ServiceRequest,
    cluster: Cluster,
    tuning_table=None,
) -> str:
    """Content key under which identical requests coalesce.

    Built on :meth:`PlanCache.compile_key` so the coalescing domain is
    exactly the plan-cache sharing domain: inline ``source`` requests
    key on the source text itself (the true plan-cache key), while
    registry names and synthesizer specs key on the spec string — the
    worker's own content-addressed cache dedups those after resolution.
    The op and its response-shaping knobs (buffer, micro-batch cap,
    degraded marker) are folded on top, since two ops over one compiled
    plan produce different responses.

    When the daemon serves a tuning table, requests that resolve to a
    tuned cell coalesce under the *cell key* instead: the table
    overrides their plan source, scheduler, and micro-batch cap anyway,
    so two requests for the same ``(collective, size, topology)`` cell
    share one compile even when their requested knobs differ.
    """
    tuned_key = None
    if (
        tuning_table is not None
        and not request.degraded
        and request.source is None
    ):
        from ..tuning.table import spec_collective

        collective = spec_collective(request.algorithm or "")
        if collective is not None:
            tuned_key = tuning_table.lookup_key(
                collective, request.buffer_mb * MB, cluster
            )
    if tuned_key is not None:
        # Knobs the table overrides (scheduler, mbs) are deliberately
        # absent; the op and fidelity still shape the response.
        base = f"tuned:{tuned_key}"
        extra = f"{request.op}|{request.sim_fidelity}"
    else:
        base = get_cache().compile_key(
            request.spec(), cluster, request.scheduler, validate=True
        )
        extra = (
            f"{request.op}|{request.buffer_mb!r}|{request.mbs}|"
            f"{int(request.degraded)}|{request.sim_fidelity}"
        )
    return hashlib.sha256(f"{base}|{extra}".encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Execution (runs inside the supervised workers)
# ----------------------------------------------------------------------


def _resolve_program(request: ServiceRequest, cluster: Cluster):
    """Algorithm spec -> elaborated program (no file-system access)."""
    if request.source is not None:
        try:
            return parse_program(request.source)
        except Exception as exc:  # parser errors are client errors
            raise RequestError(f"bad ResCCLang source: {exc}") from None
    spec = request.algorithm or ""
    if ":" in spec:
        from ..synth import TACCLSynthesizer, TECCLSynthesizer

        synth_name, _, coll_name = spec.partition(":")
        synthesizers = {"taccl": TACCLSynthesizer, "teccl": TECCLSynthesizer}
        collective = parse_collective(coll_name)
        return synthesizers[synth_name.lower()]().synthesize(cluster, collective)
    try:
        return build_algorithm(spec, cluster)
    except (KeyError, ValueError) as exc:
        raise RequestError(str(exc)) from None


def _degraded_collective(request: ServiceRequest, cluster: Cluster) -> Collective:
    """The collective a degraded request must still implement."""
    spec = request.algorithm or ""
    if ":" in spec:  # synthesizer specs name their collective directly,
        return parse_collective(spec.partition(":")[2])  # skip the search
    return _resolve_program(request, cluster).collective


def degraded_program(request: ServiceRequest, cluster: Cluster):
    """The cheap reference ring the breaker serves instead of ``spec``."""
    collective = _degraded_collective(request, cluster)
    builder = RING_FALLBACKS.get(collective)
    if builder is None:
        raise RequestError(
            f"no reference ring for collective {collective.value!r}; "
            "degraded service cannot cover this request"
        )
    return builder(
        cluster.world_size, name=f"{request.spec()}-degraded-ring"
        if request.algorithm else "inline-degraded-ring"
    )


#: Result fields that vary run-to-run (wall clocks, cache luck) and are
#: therefore excluded from the stable response digest.
VOLATILE_RESULT_FIELDS = frozenset({"wall_ms", "cache_hit", "phase_times_us"})


def result_digest(result: dict) -> str:
    """Stable content digest of one response's result payload.

    Two executions of the same request produce the same digest (the
    simulator and compiler are deterministic); volatile wall-clock
    fields are excluded.  The load benchmark uses this to prove
    exactly-once, duplicate-free service under chaos.
    """
    stable = {
        k: v for k, v in result.items() if k not in VOLATILE_RESULT_FIELDS
    }
    payload = json.dumps(stable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def execute(payload: dict) -> dict:
    """Run one request payload; returns a JSON-safe ``result`` dict.

    Raises :class:`RequestError` for client mistakes; anything else is
    a server-side failure the worker loop formats into an error reply.
    """
    request = request_from_payload(payload)
    cluster = Cluster(
        nodes=request.nodes,
        gpus_per_node=request.gpus,
        profile=profile_by_name(request.profile),
    )
    if request.degraded:
        program = degraded_program(request, cluster)
    else:
        program = _resolve_program(request, cluster)
    if program.nranks != cluster.world_size:
        raise RequestError(
            f"program {program.name!r} wants {program.nranks} ranks but the "
            f"requested cluster has {cluster.world_size}"
        )
    # Degraded mode must stay the conservative, almost-always-cached
    # ring — a tuned override there would defeat the circuit breaker.
    backend = ResCCLBackend(
        scheduler=request.scheduler,
        max_microbatches=request.mbs,
        use_tuning=not request.degraded,
    )
    cache = get_cache()
    hits_before = cache.stats.hits

    wall_start = time.perf_counter()
    if request.op == "compile":
        tuned = False
        if not request.degraded:
            from ..tuning.table import get_table

            table = get_table()
            if table is not None:
                config = table.lookup(
                    program.collective.value, request.buffer_mb * MB, cluster
                )
                if config is not None:
                    # Warm the plan the tuned cell actually serves.
                    program = table.resolve_program(config, cluster)
                    tuned = True
                    if config.scheduler != request.scheduler:
                        backend = ResCCLBackend(
                            scheduler=config.scheduler,
                            max_microbatches=request.mbs,
                            use_tuning=False,
                        )
        compiled = backend.compile(program, cluster)
        result = {
            "algorithm": program.name,
            "tuned": tuned,
            "fingerprint": result_digest(compile_fingerprint(compiled)),
            "tasks": compiled.pipeline.task_count,
            "sub_pipelines": compiled.pipeline.depth,
            "tb_count": compiled.tb_count(),
            "phase_times_us": dict(compiled.phase_times_us),
        }
    else:
        tuned = False
        if not request.degraded:
            from ..tuning.table import get_table

            table = get_table()
            if table is not None:
                tuned = (
                    table.lookup_key(
                        program.collective.value,
                        request.buffer_mb * MB,
                        cluster,
                    )
                    is not None
                )
        plan = backend.plan(cluster, program, request.buffer_mb * MB)
        if request.sim_fidelity != "exact":
            plan = dataclasses.replace(
                plan, config=plan.config.with_fidelity(request.sim_fidelity)
            )
        report = simulate(plan)
        result = {
            "algorithm": program.name,
            "tuned": tuned,
            "plan": plan.name,
            "sim_fidelity": request.sim_fidelity,
            "completion_time_us": report.completion_time_us,
            "algo_bandwidth_gbps": report.algo_bandwidth_gbps,
            "n_microbatches": plan.n_microbatches,
            "tb_count": report.tb_count(),
            "max_tbs_per_rank": report.max_tbs_per_rank(),
        }
        if request.op == "profile":
            result["avg_idle_fraction"] = report.avg_idle_fraction()
            result["counters"] = dataclasses.asdict(report.counters)
    result["cache_hit"] = cache.stats.hits > hits_before
    result["wall_ms"] = (time.perf_counter() - wall_start) * 1e3
    return result


__all__ = [
    "MAX_WORLD_SIZE",
    "OPS",
    "RING_FALLBACKS",
    "RequestError",
    "ServiceRequest",
    "degraded_program",
    "execute",
    "parse_request",
    "prewarm_payload",
    "request_fingerprint",
    "request_from_payload",
    "result_digest",
]

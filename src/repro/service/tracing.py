"""Per-request trace stitching for the service daemon.

One :class:`RequestTrace` is born when a request enters
``ServiceDaemon._handle_op`` and finishes when the response is about to
be written.  It produces a single stitched span tree whose top-level
segments **exactly partition** the daemon-observed latency — every
microsecond of ``[0, total_us]`` belongs to exactly one segment, in
order:

* ``admission``       — parse, validation, breaker check, fingerprint,
  queue admission (ends at pool submit / coalesce attach / shed);
* ``queue``           — submitted, waiting for a worker (leader only);
* ``worker-compute``  — executing in the worker process; its children
  are the worker's own :class:`~repro.obs.spans.SpanTracer` tree
  (compile → simulate), offset-aligned from the worker's clock;
* ``coalesce-wait``   — attached to another request's in-flight job
  (waiters only; carries the leader's ``trace_id``);
* ``serialize``       — reply collected, response being built/recorded;
* ``killed``          — terminal segment of a request whose job died
  (deadline SIGKILL, crash) or was shed/failed before completing.

**Clock alignment.** Worker span timestamps are microseconds on the
*worker's* monotonic clock.  The worker reports the wall-clock instant
of its tracer epoch (``SpanTracer.epoch_wall``); the daemon anchors its
own timeline at ``t0_wall``, so worker spans shift by
``(epoch_wall - t0_wall) * 1e6`` into request-relative time and are then
clamped inside their parent's bounds — wall clocks across processes on
one host agree to well under a millisecond, but clamping guarantees the
invariant (children inside parents) instead of merely expecting it.

The output is a plain JSON-safe dict (what ``/debug/traces/<id>``
returns and the flight recorder retains); span nodes use the same shape
as :meth:`repro.obs.spans.Span.to_dict` so the Perfetto exporter and the
CLI renderer treat daemon segments and worker spans uniformly.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

#: Segment names, in the order they can appear in a stitched trace.
SEGMENTS = (
    "admission", "queue", "worker-compute", "coalesce-wait", "serialize",
    "killed",
)


def _node(
    name: str,
    start_us: float,
    end_us: float,
    attrs: Optional[Dict[str, str]] = None,
    children: Optional[List[dict]] = None,
) -> dict:
    return {
        "name": name,
        "start_us": start_us,
        "duration_us": max(0.0, end_us - start_us),
        "attrs": dict(attrs or {}),
        "counters": {},
        "children": children or [],
    }


def _clamp_span(span: dict, offset_us: float, lo: float, hi: float) -> dict:
    """Shift one worker span into request time, clamped to [lo, hi]."""
    start = min(max(span["start_us"] + offset_us, lo), hi)
    end = min(max(span["start_us"] + span["duration_us"] + offset_us, start), hi)
    return {
        "name": span["name"],
        "start_us": start,
        "duration_us": end - start,
        "attrs": dict(span.get("attrs", {})),
        "counters": dict(span.get("counters", {})),
        "children": [
            _clamp_span(child, offset_us, start, end)
            for child in span.get("children", ())
        ],
    }


class RequestTrace:
    """Builder collecting one request's boundary instants + worker blob."""

    __slots__ = (
        "trace_id", "parent_span_id", "request_id", "op", "t0_wall",
        "_t0", "attrs", "submitted_us", "attached_us", "reply_us",
        "leader_trace_id", "worker_reply", "error",
    )

    def __init__(
        self,
        trace_id: str,
        op: str,
        parent_span_id: Optional[str] = None,
    ) -> None:
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.request_id: Optional[str] = None
        self.op = op
        self._t0 = time.monotonic()
        self.t0_wall = time.time()
        self.attrs: Dict[str, str] = {}
        self.submitted_us: Optional[float] = None  # leader: pool submit
        self.attached_us: Optional[float] = None  # waiter: coalesce attach
        self.reply_us: Optional[float] = None  # future resolved (any path)
        self.leader_trace_id: Optional[str] = None
        self.worker_reply: Optional[dict] = None  # timing + span blob
        self.error: Optional[str] = None

    def now_us(self) -> float:
        return (time.monotonic() - self._t0) * 1e6

    def annotate(self, **attrs: object) -> None:
        """Attach request-level attributes (breaker state, degraded...)."""
        self.attrs.update({k: str(v) for k, v in attrs.items()})

    def mark_submitted(self) -> None:
        self.submitted_us = self.now_us()

    def mark_attached(self, leader_trace_id: Optional[str]) -> None:
        self.attached_us = self.now_us()
        self.leader_trace_id = leader_trace_id

    def mark_reply(self, worker_reply: Optional[dict] = None) -> None:
        """The awaited future resolved; ``worker_reply`` is the timing +
        span blob the worker shipped back (leaders only)."""
        self.reply_us = self.now_us()
        if worker_reply is not None:
            self.worker_reply = worker_reply

    def mark_error(self, error: str) -> None:
        self.error = error
        if self.reply_us is None:
            self.reply_us = self.now_us()

    # ------------------------------------------------------------------

    def _worker_segment(self, start_us: float, end_us: float) -> dict:
        """The worker-compute segment with aligned child spans."""
        reply = self.worker_reply or {}
        children: List[dict] = []
        epoch_wall = reply.get("epoch_wall")
        spans = reply.get("spans")
        if spans and isinstance(epoch_wall, (int, float)):
            offset_us = (epoch_wall - self.t0_wall) * 1e6
            children = [
                _clamp_span(span, offset_us, start_us, end_us)
                for span in spans
            ]
        attrs: Dict[str, str] = {}
        if reply.get("worker") is not None:
            attrs["worker"] = str(reply["worker"])
        return _node("worker-compute", start_us, end_us, attrs, children)

    def stitch(self, status: int) -> dict:
        """Close the trace and build the stitched span tree.

        The returned dict is JSON-safe and self-contained; its top-level
        segments partition ``[0, total_us]`` exactly.
        """
        total_us = self.now_us()
        reply = self.worker_reply or {}
        segments: List[dict] = []

        def _rel(wall: object) -> Optional[float]:
            if not isinstance(wall, (int, float)):
                return None
            return (wall - self.t0_wall) * 1e6

        if self.attached_us is not None:
            # Coalesced waiter: it never owned a worker; its trace
            # references the leader's (which holds the worker spans —
            # that is the exactly-once accounting).
            cut = min(self.attached_us, total_us)
            segments.append(_node("admission", 0.0, cut, self.attrs))
            wait_end = min(self.reply_us or total_us, total_us)
            wait_attrs: Dict[str, str] = {"coalesced": "true"}
            if self.leader_trace_id:
                wait_attrs["leader_trace_id"] = self.leader_trace_id
            if self.error:
                wait_attrs["error"] = self.error
            segments.append(
                _node("coalesce-wait", cut, wait_end, wait_attrs)
            )
            segments.append(_node("serialize", wait_end, total_us))
        elif self.submitted_us is None:
            # Never reached the pool: shed (429), parse error (400)...
            cut = min(self.reply_us or total_us, total_us)
            segments.append(_node("admission", 0.0, cut, self.attrs))
            if self.error:
                segments.append(
                    _node("killed", cut, cut, {"error": self.error})
                )
            segments.append(_node("serialize", cut, total_us))
        else:
            submit = min(self.submitted_us, total_us)
            reply_at = min(self.reply_us or total_us, total_us)
            segments.append(_node("admission", 0.0, submit, self.attrs))
            started = _rel(reply.get("started_wall"))
            ended = _rel(reply.get("ended_wall"))
            if self.error is not None and started is None:
                # Job died without ever reporting compute bounds: the
                # whole post-submit window becomes the killed segment.
                segments.append(_node("queue", submit, submit))
                segments.append(
                    _node("killed", submit, reply_at,
                          {"error": self.error})
                )
            else:
                start = submit if started is None else min(
                    max(started, submit), reply_at
                )
                end = reply_at if ended is None else min(
                    max(ended, start), reply_at
                )
                segments.append(_node("queue", submit, start))
                segments.append(self._worker_segment(start, end))
                if self.error is not None:
                    segments.append(
                        _node("killed", end, reply_at,
                              {"error": self.error})
                    )
                # On success, reply transit (pipe + supervisor + future
                # wakeup) merges into the trailing serialize segment.
            segments.append(
                _node("serialize", segments[-1]["start_us"]
                      + segments[-1]["duration_us"], total_us)
            )

        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "request_id": self.request_id,
            "op": self.op,
            "status": status,
            "started_wall": self.t0_wall,
            "total_us": total_us,
            "coalesced": self.attached_us is not None,
            "leader_trace_id": self.leader_trace_id,
            "error": self.error,
            "spans": segments,
        }


def render_trace(trace: dict) -> str:
    """ASCII tree of one stitched trace (the CLI's default output)."""
    lines = [
        f"trace {trace['trace_id']}  op={trace['op']} "
        f"status={trace['status']} total={trace['total_us'] / 1000.0:.3f} ms"
        + (f"  request_id={trace['request_id']}"
           if trace.get("request_id") else "")
    ]

    def visit(span: dict, depth: int) -> None:
        pad = "  " * depth
        detail = ""
        if span.get("attrs"):
            detail = " " + " ".join(
                f"{k}={v}" for k, v in sorted(span["attrs"].items())
            )
        lines.append(
            f"{pad}{span['name']:<{max(1, 24 - 2 * depth)}} "
            f"{span['duration_us'] / 1000.0:9.3f} ms{detail}"
        )
        for child in span.get("children", ()):
            visit(child, depth + 1)

    for segment in trace.get("spans", ()):
        visit(segment, 1)
    return "\n".join(lines)


__all__ = ["SEGMENTS", "RequestTrace", "render_trace"]

"""Resilient compile/simulate service daemon.

A long-lived HTTP/JSON front-end over the same
:class:`~repro.core.backend.ResCCLBackend` / plan-cache APIs the CLI
uses, with admission control, per-request deadline budgets, request
coalescing, supervised worker processes, and circuit-breaker
degradation to the built-in reference ring.  Start it with
``resccl serve`` or embed :class:`ServiceDaemon` directly; talk to it
with :class:`ServiceClient`.  See ``docs/service.md`` for endpoint and
runbook documentation.
"""

from .breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from .client import (
    ServiceClient,
    ServiceDeadline,
    ServiceError,
    ServiceOverloaded,
)
from .daemon import ServiceConfig, ServiceDaemon
from .recorder import FlightRecorder
from .tracing import RequestTrace, render_trace
from .protocol import (
    MAX_WORLD_SIZE,
    OPS,
    RequestError,
    ServiceRequest,
    parse_request,
    request_fingerprint,
    result_digest,
)
from .workers import (
    DeadlineExceeded,
    JobFailed,
    PoolSaturated,
    WorkerCrashed,
    WorkerPool,
)

__all__ = [
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceClient",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceDeadline",
    "ServiceRequest",
    "RequestError",
    "parse_request",
    "request_fingerprint",
    "result_digest",
    "MAX_WORLD_SIZE",
    "OPS",
    "WorkerPool",
    "PoolSaturated",
    "DeadlineExceeded",
    "WorkerCrashed",
    "JobFailed",
    "CircuitBreaker",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "FlightRecorder",
    "RequestTrace",
    "render_trace",
]

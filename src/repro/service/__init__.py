"""Resilient compile/simulate service daemon.

A long-lived HTTP/JSON front-end over the same
:class:`~repro.core.backend.ResCCLBackend` / plan-cache APIs the CLI
uses, with admission control, per-request deadline budgets, request
coalescing, supervised worker processes, and circuit-breaker
degradation to the built-in reference ring.  Start it with
``resccl serve`` or embed :class:`ServiceDaemon` directly; talk to it
with :class:`ServiceClient`.  See ``docs/service.md`` for endpoint and
runbook documentation.
"""

from .breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from .client import (
    ServiceClient,
    ServiceClientPool,
    ServiceDeadline,
    ServiceError,
    ServiceOverloaded,
    ServiceUnavailable,
)
from .daemon import ServiceConfig, ServiceDaemon
from .journal import (
    JournalBusy,
    JournalCorrupt,
    JournalEntry,
    RequestJournal,
)
from .lifecycle import (
    STATE_BOOTING,
    STATE_DRAINING,
    STATE_READY,
    STATE_STOPPED,
    LifecycleManager,
    PrewarmManifest,
)
from .recorder import FlightRecorder
from .tracing import RequestTrace, render_trace
from .protocol import (
    MAX_WORLD_SIZE,
    OPS,
    RequestError,
    ServiceRequest,
    parse_request,
    request_fingerprint,
    result_digest,
)
from .workers import (
    DeadlineExceeded,
    JobFailed,
    PoolSaturated,
    WorkerCrashed,
    WorkerPool,
)

__all__ = [
    "ServiceConfig",
    "ServiceDaemon",
    "ServiceClient",
    "ServiceClientPool",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceDeadline",
    "ServiceUnavailable",
    "RequestJournal",
    "JournalEntry",
    "JournalBusy",
    "JournalCorrupt",
    "LifecycleManager",
    "PrewarmManifest",
    "STATE_BOOTING",
    "STATE_READY",
    "STATE_DRAINING",
    "STATE_STOPPED",
    "ServiceRequest",
    "RequestError",
    "parse_request",
    "request_fingerprint",
    "result_digest",
    "MAX_WORLD_SIZE",
    "OPS",
    "WorkerPool",
    "PoolSaturated",
    "DeadlineExceeded",
    "WorkerCrashed",
    "JobFailed",
    "CircuitBreaker",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "FlightRecorder",
    "RequestTrace",
    "render_trace",
]

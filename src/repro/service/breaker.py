"""Circuit breaker guarding the daemon's cold-compile path.

Sustained deadline expiries on primary work mean the pipeline cannot
currently compile within the budgets clients give it (a cold cache, an
oversized topology, a sick worker host).  Erroring on every request
until the situation clears just burns worker time re-discovering the
same timeout, so the breaker trades fidelity for liveness:

* **closed** — healthy; primary requests flow.
* **open** — tripped by ``failure_threshold`` *consecutive* primary
  failures; primary compiles are suspended and requests are served the
  cheap built-in reference ring instead (``degraded: true`` responses,
  see :func:`repro.service.protocol.degraded_program`).
* **half-open** — after ``cooldown_s`` one probe request is let through
  on the primary path; success closes the breaker, failure re-opens it
  and restarts the cooldown.

Only *timeout-shaped* failures count (deadline expiries and worker
deaths): a request that fails because it is malformed says nothing
about the health of the compile path.

All transitions are mutex-guarded: the daemon drives the breaker from
its event-loop thread, but health endpoints and the metrics refresh may
read ``state`` from other threads, and the half-open **single-probe
guarantee** ("exactly one caller gets the primary path while probing")
is a check-then-act sequence that would race without the lock —
two concurrent ``allow_primary()`` calls could both observe
``_probe_inflight == False`` and both claim the probe.  The lock is
never held across I/O, only across the state words, so it costs one
uncontended acquire per request.  ``clock`` is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

#: Gauge encoding for the ``service_breaker_state`` metric.
STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN = 0, 1, 2

_STATE_NAMES = {
    STATE_CLOSED: "closed",
    STATE_HALF_OPEN: "half-open",
    STATE_OPEN: "open",
}


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe.

    Args:
        failure_threshold: consecutive primary failures that trip it.
        cooldown_s: open-state dwell before a half-open probe is allowed.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.trips = 0  # lifetime count, exported as a counter

    # ------------------------------------------------------------------

    def _state_locked(self) -> int:
        """Apply the open -> half-open timer; caller holds the lock."""
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = STATE_HALF_OPEN
            self._probe_inflight = False
        return self._state

    @property
    def state(self) -> int:
        """Current state code, applying the open -> half-open timer."""
        with self._lock:
            return self._state_locked()

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    def allow_primary(self) -> bool:
        """May the next request run on the primary (non-degraded) path?

        In half-open state exactly one caller gets ``True`` (the probe);
        everyone else is degraded until the probe reports back.  The
        claim is atomic under the lock, so concurrent callers cannot
        both win the probe slot.
        """
        with self._lock:
            state = self._state_locked()
            if state == STATE_CLOSED:
                return True
            if state == STATE_HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        """A primary request completed within its deadline."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._state = STATE_CLOSED

    def record_failure(self) -> None:
        """A primary request timed out or lost its worker."""
        with self._lock:
            self._probe_inflight = False
            if self._state == STATE_HALF_OPEN:
                self._trip_locked()
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self.trips += 1


__all__ = [
    "CircuitBreaker",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
]

"""Durable write-ahead request journal for the service daemon.

The daemon is crash-only: a ``kill -9``, a deploy, or a host reboot must
never silently lose admitted work.  Every admitted request is appended
to an fsync'd JSONL journal *before* it is dispatched to the worker
pool, and marked completed when its response is produced.  On boot the
daemon replays every ``begin`` without a matching ``end``:

* the replay is **idempotent** — requests are pure compile/simulate
  functions over content-addressed inputs, so re-running one is a warm
  compile or a cheap plan-cache probe, never a duplicated side effect;
* entries whose absolute deadline already passed are **dropped**, not
  replayed — the client's budget is spent either way
  (``service_journal_dropped_expired_total``);
* each replayed entry gets an ``end`` record carrying the
  :func:`~repro.service.protocol.result_digest` of its result, so a
  second restart does not replay it again (exactly-once replay, and the
  digest lets post-crash audits verify the replay against a fresh
  execution).

Record format, one JSON object per line::

    {"v": 1, "kind": "begin", "id": "<trace_id>", "key": "<fingerprint>",
     "op": "simulate", "payload": {...}, "deadline_wall": 1754640012.5,
     "ts": 1754640000.1}
    {"v": 1, "kind": "end", "id": "<trace_id>", "status": 200,
     "digest": "...", "ts": 1754640001.2}

A truncated final line (the record a ``kill -9`` interrupted mid-write)
is tolerated: recovery stops at the tear and counts it, and the
interrupted request was by definition not yet dispatched.

The journal directory is owned by exactly one daemon at a time: a
POSIX record lock (``fcntl.lockf``) on ``<dir>/lock`` is taken
exclusively at open and a second daemon fails fast with
:class:`JournalBusy` instead of the two interleaving appends.  A record
lock — not ``flock`` — because the lock must die *with the daemon
process*: the daemon forks worker processes which inherit every open
file descriptor, and a ``flock`` travels with the inherited open file
description, so after a ``kill -9`` the orphaned workers would keep the
journal locked and block the restarted daemon (the exact crash the
journal exists to survive).  Record locks are owned per-process, so
children never hold them and a SIGKILL releases the directory
instantly.  Record locks do not exclude a second open in the *same*
process, so an in-process owner registry covers embedded daemons
sharing one test process.

On recovery the journal is *compacted* — rewritten atomically with only
the still-incomplete entries — so it never grows without bound across
restarts.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, List, Optional, Union

try:  # pragma: no cover - always present on the supported platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Bump when the record shape changes; unknown versions are skipped on
#: recovery (never crash a boot over an old journal).
JOURNAL_VERSION = 1

#: The journal file and the daemon-ownership lock inside the directory.
JOURNAL_FILE = "journal.jsonl"
LOCK_FILE = "lock"


class JournalBusy(RuntimeError):
    """Another live daemon holds the journal directory's lock."""


#: Journal dirs owned by *this* process (POSIX record locks do not
#: conflict within one process, so embedded daemons sharing a test
#: process need their own mutual exclusion).
_LIVE_OWNERS: "set[str]" = set()
_OWNERS_MUTEX = threading.Lock()


class JournalCorrupt(RuntimeError):
    """The journal could not be read at all (not merely torn)."""


@dataclass
class JournalEntry:
    """One admitted-but-not-yet-completed request."""

    entry_id: str
    key: str
    op: str
    payload: dict
    deadline_wall: Optional[float] = None
    trace_id: Optional[str] = None
    ts: float = field(default_factory=time.time)

    def to_record(self) -> dict:
        return {
            "v": JOURNAL_VERSION,
            "kind": "begin",
            "id": self.entry_id,
            "key": self.key,
            "op": self.op,
            "payload": self.payload,
            "deadline_wall": self.deadline_wall,
            "trace_id": self.trace_id,
            "ts": self.ts,
        }

    @classmethod
    def from_record(cls, record: dict) -> "JournalEntry":
        return cls(
            entry_id=str(record["id"]),
            key=str(record.get("key", "")),
            op=str(record.get("op", "")),
            payload=dict(record.get("payload") or {}),
            deadline_wall=record.get("deadline_wall"),
            trace_id=record.get("trace_id"),
            ts=float(record.get("ts", 0.0)),
        )

    def expired(self, now: Optional[float] = None) -> bool:
        if self.deadline_wall is None:
            return False
        return (time.time() if now is None else now) >= self.deadline_wall


@dataclass
class JournalStats:
    """Counters the daemon folds into ``/metrics`` (mutex-guarded)."""

    appends: int = 0
    completes: int = 0
    fsyncs: int = 0
    errors: int = 0
    torn_records: int = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class RequestJournal:
    """Append-only, fsync'd, single-owner request journal.

    Args:
        journal_dir: directory holding the journal, the ownership lock,
            and the lifecycle sidecars (prewarm manifest, recorder tail).
        fsync: durably sync every record (the default; turning it off
            trades crash durability for append latency and exists for
            benchmarks that want to isolate the fsync cost).
    """

    def __init__(
        self, journal_dir: Union[str, Path], fsync: bool = True
    ) -> None:
        self.dir = Path(journal_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.path = self.dir / JOURNAL_FILE
        self.fsync = fsync
        self.stats = JournalStats()
        self._mutex = threading.Lock()
        self._fh: Optional[IO[str]] = None
        self._lock_fh: Optional[IO[str]] = None
        self._owner_key: Optional[str] = None
        self._acquire_dir_lock()

    # -- ownership ------------------------------------------------------

    def _acquire_dir_lock(self) -> None:
        """Exclusive per-process lock: one live daemon per journal dir.

        Two layers (see the module docstring for the full rationale):
        an in-process registry excludes a second embedded daemon in the
        same process, and a POSIX record lock excludes other processes
        while dying with this one — forked workers inherit the fd but
        never own the lock, so a ``kill -9`` frees the directory even
        while orphaned workers linger.
        """
        lock_path = self.dir / LOCK_FILE
        self._owner_key = str(self.dir.resolve())
        with _OWNERS_MUTEX:
            if self._owner_key in _LIVE_OWNERS:
                self._owner_key = None
                raise JournalBusy(
                    f"journal dir {self.dir} is already owned by a daemon "
                    "in this process"
                )
            _LIVE_OWNERS.add(self._owner_key)
        fh = open(lock_path, "a+", encoding="utf-8")
        if fcntl is not None:
            try:
                fcntl.lockf(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                fh.close()
                self._release_owner()
                raise JournalBusy(
                    f"journal dir {self.dir} is locked by another daemon "
                    f"(see {lock_path})"
                ) from None
        fh.seek(0)
        fh.truncate()
        fh.write(f"{os.getpid()}\n")
        fh.flush()
        self._lock_fh = fh

    def _release_owner(self) -> None:
        if self._owner_key is not None:
            with _OWNERS_MUTEX:
                _LIVE_OWNERS.discard(self._owner_key)
            self._owner_key = None

    def close(self) -> None:
        with self._mutex:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None
        if self._lock_fh is not None:
            # Closing releases the record lock.
            try:
                self._lock_fh.close()
            except OSError:
                pass
            self._lock_fh = None
        self._release_owner()

    def __enter__(self) -> "RequestJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recovery -------------------------------------------------------

    def recover(self) -> List[JournalEntry]:
        """Scan the journal, compact it, and return incomplete entries.

        Reads every record, pairs ``begin``/``end`` by id, rewrites the
        journal atomically with only the unmatched ``begin`` records
        (bounded growth across restarts), and returns them oldest-first.
        A torn trailing record — the fingerprint of a mid-write
        ``kill -9`` — ends the scan and is counted, never raised.
        """
        with self._mutex:
            begins: "dict[str, JournalEntry]" = {}
            order: List[str] = []
            if self.path.exists():
                try:
                    raw = self.path.read_text(encoding="utf-8")
                except OSError as exc:
                    raise JournalCorrupt(
                        f"cannot read journal {self.path}: {exc}"
                    ) from exc
                for line in raw.splitlines():
                    if not line.strip():
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        # Torn tail: everything before it already parsed.
                        self.stats.torn_records += 1
                        break
                    if (
                        not isinstance(record, dict)
                        or record.get("v") != JOURNAL_VERSION
                    ):
                        continue
                    entry_id = str(record.get("id"))
                    kind = record.get("kind")
                    if kind == "begin":
                        try:
                            entry = JournalEntry.from_record(record)
                        except (KeyError, TypeError, ValueError):
                            self.stats.torn_records += 1
                            continue
                        if entry_id not in begins:
                            order.append(entry_id)
                        begins[entry_id] = entry
                    elif kind == "end":
                        begins.pop(entry_id, None)
            incomplete = [begins[entry_id] for entry_id in order
                          if entry_id in begins]
            self._compact_locked(incomplete)
            return incomplete

    def _compact_locked(self, entries: List[JournalEntry]) -> None:
        tmp = self.path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry.to_record(),
                                    separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._reopen_locked()

    def _reopen_locked(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
        self._fh = self.path.open("a", encoding="utf-8")

    # -- appends --------------------------------------------------------

    def append(self, entry: JournalEntry) -> None:
        """Durably record one admitted request *before* dispatch."""
        self._write(entry.to_record())
        self.stats.appends += 1

    def complete(
        self,
        entry_id: str,
        status: Union[int, str],
        digest: Optional[str] = None,
    ) -> None:
        """Record that the request produced a response (or was dropped)."""
        record = {
            "v": JOURNAL_VERSION,
            "kind": "end",
            "id": entry_id,
            "status": status,
            "ts": time.time(),
        }
        if digest is not None:
            record["digest"] = digest
        self._write(record)
        self.stats.completes += 1

    def _write(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        with self._mutex:
            try:
                if self._fh is None:
                    self._reopen_locked()
                self._fh.write(line)
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
                    self.stats.fsyncs += 1
            except (OSError, ValueError):
                # A full or yanked disk must degrade durability, never
                # availability: the request is still served, the gap is
                # counted and logged by the daemon.
                self.stats.errors += 1

    # -- inspection (tests, debug endpoint) -----------------------------

    def records(self) -> List[dict]:
        """Every parseable record currently on disk (oldest first)."""
        with self._mutex:
            if not self.path.exists():
                return []
            out = []
            for line in self.path.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                try:
                    out.append(json.loads(line))
                except json.JSONDecodeError:
                    break
            return out


__all__ = [
    "JOURNAL_VERSION",
    "JournalBusy",
    "JournalCorrupt",
    "JournalEntry",
    "JournalStats",
    "RequestJournal",
]

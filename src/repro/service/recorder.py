"""Bounded flight recorder of stitched request traces.

Retains, in memory, the full stitched trace (plus the correlated
structured-log tail) for:

* **every** failed / killed / shed request (non-200), FIFO-bounded at
  ``error_capacity`` — the newest errors win; and
* the **N slowest** successful requests (a min-heap on total latency,
  bounded at ``slow_capacity``) — a new slow request evicts the
  *fastest* retained one, so after any traffic mix the recorder holds
  the current worst tail.

This is the post-hoc debugging store behind ``/debug/requests`` (the
index) and ``/debug/traces/<id>`` (one full trace), and the target the
latency histogram's exemplars point into.  An exemplar can outlive its
trace (a retained-then-evicted request); resolving it then 404s, which
is the honest answer for a bounded recorder.

Thread-safe: the daemon records from its event-loop thread while tests
and debug handlers may read from others.

The error FIFO (but not the slow heap — pre-restart "slowest" is
meaningless after a cache-warm restart) survives graceful restarts:
:meth:`FlightRecorder.export_errors` is persisted to the journal
directory on drain and :meth:`FlightRecorder.restore_errors` reloads it
on boot, so post-crash debugging keeps the pre-restart error tail.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import OrderedDict
from typing import Dict, List, Optional

#: Log-tail lines snapshotted per retained trace.
LOG_TAIL_LIMIT = 100


class FlightRecorder:
    """Bounded store of stitched traces worth keeping."""

    def __init__(
        self, slow_capacity: int = 32, error_capacity: int = 128
    ) -> None:
        self.slow_capacity = max(0, slow_capacity)
        self.error_capacity = max(0, error_capacity)
        self._traces: Dict[str, dict] = {}
        # (total_us, seq, trace_id) min-heap over retained successes.
        self._slow: List[tuple] = []
        self._errors: "OrderedDict[str, None]" = OrderedDict()
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self.recorded = 0
        self.evicted = 0
        self.restored = 0

    def record(self, trace: dict, logs: Optional[List[dict]] = None) -> bool:
        """Offer one stitched trace; returns True when it was retained."""
        trace_id = trace.get("trace_id")
        if not trace_id:
            return False
        entry = dict(trace)
        if logs is not None:
            entry["logs"] = logs[-LOG_TAIL_LIMIT:]
        with self._lock:
            if trace_id in self._traces:
                return False  # ids are unique per request; never clobber
            if trace.get("status") != 200:
                if self.error_capacity == 0:
                    return False
                while len(self._errors) >= self.error_capacity:
                    oldest, _ = self._errors.popitem(last=False)
                    self._traces.pop(oldest, None)
                    self.evicted += 1
                self._errors[trace_id] = None
                self._traces[trace_id] = entry
                self.recorded += 1
                return True
            if self.slow_capacity == 0:
                return False
            item = (trace.get("total_us", 0.0), next(self._seq), trace_id)
            if len(self._slow) < self.slow_capacity:
                heapq.heappush(self._slow, item)
            else:
                if item <= self._slow[0]:
                    return False  # faster than everything retained
                _, _, fastest = heapq.heappushpop(self._slow, item)
                self._traces.pop(fastest, None)
                self.evicted += 1
            self._traces[trace_id] = entry
            self.recorded += 1
            return True

    def export_errors(self) -> List[dict]:
        """The retained error traces, oldest first (for persistence)."""
        with self._lock:
            return [dict(self._traces[tid]) for tid in self._errors
                    if tid in self._traces]

    def restore_errors(self, entries: List[dict]) -> int:
        """Reload a persisted error tail (oldest first); returns count.

        Restored traces re-enter the FIFO ahead of anything the new
        process records, so they are the first evicted once fresh errors
        fill the capacity — exactly the semantics of a tail that kept
        running across the restart.  Damaged entries are skipped, never
        raised: recovering debug state must not block a boot.
        """
        restored = 0
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            trace_id = entry.get("trace_id")
            if not trace_id or entry.get("status") == 200:
                continue
            with self._lock:
                if trace_id in self._traces or self.error_capacity == 0:
                    continue
                while len(self._errors) >= self.error_capacity:
                    oldest, _ = self._errors.popitem(last=False)
                    self._traces.pop(oldest, None)
                    self.evicted += 1
                self._errors[trace_id] = None
                self._traces[trace_id] = dict(entry)
                self.restored += 1
                restored += 1
        return restored

    def get(self, trace_id: str) -> Optional[dict]:
        with self._lock:
            return self._traces.get(trace_id)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def summaries(self) -> List[dict]:
        """Index of retained traces, newest-recorded errors first, then
        successes slowest-first (what ``/debug/requests`` serves)."""
        with self._lock:
            errors = [self._traces[tid] for tid in reversed(self._errors)]
            slow = [
                self._traces[tid]
                for _, _, tid in sorted(self._slow, reverse=True)
                if tid in self._traces
            ]
        out = []
        for trace in errors + slow:
            out.append({
                "trace_id": trace["trace_id"],
                "request_id": trace.get("request_id"),
                "op": trace.get("op"),
                "status": trace.get("status"),
                "total_us": trace.get("total_us"),
                "coalesced": trace.get("coalesced", False),
                "error": trace.get("error"),
                "retained_as": (
                    "error" if trace.get("status") != 200 else "slow"
                ),
            })
        return out


__all__ = ["FlightRecorder", "LOG_TAIL_LIMIT"]

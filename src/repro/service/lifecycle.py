"""Service lifecycle: boot/ready/drain state and the cache-prewarm manifest.

The daemon moves through a small, strictly ordered state machine::

    BOOTING ──(journal replay + cache prewarm)──▶ READY
    READY ──(SIGTERM / drain())──▶ DRAINING ──▶ STOPPED

``/readyz`` is green **only** in ``READY``: a booting daemon is still
replaying its journal and prewarming the plan cache, and a draining
daemon has stopped admitting work so its load balancer peers must fail
over.  The current state is exported as the ``service_lifecycle_state``
gauge (values below).

The :class:`PrewarmManifest` tracks hot coalescing keys with hit counts
during normal operation; on drain the top-N entries are persisted to
``<journal_dir>/prewarm.json`` and replayed as compile jobs on the next
boot *before* readiness flips green, so a hot restart starts warm
instead of making the first wave of clients pay cold compiles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

#: ``service_lifecycle_state`` gauge values, in boot order.
STATE_BOOTING = 0
STATE_READY = 1
STATE_DRAINING = 2
STATE_STOPPED = 3

STATE_NAMES = {
    STATE_BOOTING: "booting",
    STATE_READY: "ready",
    STATE_DRAINING: "draining",
    STATE_STOPPED: "stopped",
}

#: Sidecar files inside the journal directory.
PREWARM_FILE = "prewarm.json"
RECORDER_FILE = "recorder.json"

PREWARM_VERSION = 1


class PrewarmManifest:
    """Hot coalescing keys with hit counts, persisted across restarts.

    ``touch`` is called once per admitted request with the request's
    coalescing key and a scrubbed payload (no deadline, no request id —
    see :func:`repro.service.protocol.prewarm_payload`); the payload of
    the *latest* touch wins, which is fine because payloads that share a
    key compile identically by construction.
    """

    def __init__(self, limit: int = 32) -> None:
        self.limit = max(0, int(limit))
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._payloads: Dict[str, dict] = {}

    def touch(self, key: str, payload: dict) -> None:
        if self.limit <= 0:
            return
        with self._lock:
            self._hits[key] = self._hits.get(key, 0) + 1
            self._payloads[key] = payload

    def __len__(self) -> int:
        with self._lock:
            return len(self._hits)

    def hottest(self, limit: Optional[int] = None) -> List[dict]:
        """Top-N entries by hit count (ties broken by key for stability)."""
        cap = self.limit if limit is None else int(limit)
        with self._lock:
            ranked = sorted(
                self._hits.items(), key=lambda kv: (-kv[1], kv[0])
            )[:cap]
            return [
                {"key": key, "hits": hits, "payload": self._payloads[key]}
                for key, hits in ranked
            ]

    def save(self, journal_dir: Union[str, Path]) -> Path:
        """Atomically persist the top-N manifest (fsync + rename)."""
        path = Path(journal_dir) / PREWARM_FILE
        doc = {
            "v": PREWARM_VERSION,
            "saved_ts": time.time(),
            "entries": self.hottest(),
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(doc, fh, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    @staticmethod
    def load(journal_dir: Union[str, Path]) -> List[dict]:
        """Load a persisted manifest; any damage yields an empty list.

        Prewarm is an optimisation — a corrupt or missing manifest must
        never block a boot, so every failure mode is a silent empty
        result.
        """
        path = Path(journal_dir) / PREWARM_FILE
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return []
        if not isinstance(doc, dict) or doc.get("v") != PREWARM_VERSION:
            return []
        entries = doc.get("entries")
        if not isinstance(entries, list):
            return []
        out = []
        for entry in entries:
            if (
                isinstance(entry, dict)
                and isinstance(entry.get("key"), str)
                and isinstance(entry.get("payload"), dict)
            ):
                out.append(entry)
        return out


class LifecycleManager:
    """Owns the daemon's lifecycle state and boot/drain bookkeeping."""

    def __init__(self, prewarm_limit: int = 32) -> None:
        self._lock = threading.Lock()
        self._state = STATE_BOOTING
        self.ready_event = threading.Event()
        self.manifest = PrewarmManifest(limit=prewarm_limit)
        self.boot_started = time.monotonic()
        self.time_to_ready_ms: Optional[float] = None
        # Boot replay / prewarm report, surfaced on /debug/lifecycle.
        self.replayed = 0
        self.dropped_expired = 0
        self.replay_failed = 0
        self.prewarmed = 0
        self.prewarm_failed = 0
        self.drain_started: Optional[float] = None
        self.drain_clean: Optional[bool] = None

    @property
    def state(self) -> int:
        with self._lock:
            return self._state

    @property
    def state_name(self) -> str:
        return STATE_NAMES[self.state]

    def is_ready(self) -> bool:
        return self.state == STATE_READY

    def mark_ready(self) -> None:
        with self._lock:
            if self._state == STATE_BOOTING:
                self._state = STATE_READY
                self.time_to_ready_ms = (
                    time.monotonic() - self.boot_started
                ) * 1000.0
        self.ready_event.set()

    def begin_drain(self) -> bool:
        """Flip to DRAINING; returns False if already draining/stopped."""
        with self._lock:
            if self._state in (STATE_DRAINING, STATE_STOPPED):
                return False
            self._state = STATE_DRAINING
            self.drain_started = time.monotonic()
        # A daemon that never finished booting should not block stop()
        # on the ready event.
        self.ready_event.set()
        return True

    def mark_stopped(self) -> None:
        with self._lock:
            self._state = STATE_STOPPED
        self.ready_event.set()

    def snapshot(self) -> dict:
        """JSON-friendly view for ``/debug/lifecycle``."""
        with self._lock:
            state = self._state
            snap = {
                "state": STATE_NAMES[state],
                "time_to_ready_ms": self.time_to_ready_ms,
                "journal_replayed": self.replayed,
                "journal_dropped_expired": self.dropped_expired,
                "journal_replay_failed": self.replay_failed,
                "prewarmed": self.prewarmed,
                "prewarm_failed": self.prewarm_failed,
                "manifest_tracked": len(self.manifest._hits),
                "drain_clean": self.drain_clean,
            }
        return snap


__all__ = [
    "LifecycleManager",
    "PREWARM_FILE",
    "RECORDER_FILE",
    "PrewarmManifest",
    "STATE_BOOTING",
    "STATE_DRAINING",
    "STATE_NAMES",
    "STATE_READY",
    "STATE_STOPPED",
]

"""The resilient compile/simulate service daemon.

A long-lived asyncio HTTP/JSON front-end (stdlib only — the HTTP/1.1
layer is hand-rolled over ``asyncio.start_server``) over the supervised
:class:`~repro.service.workers.WorkerPool`.  Endpoints::

    POST /v1/compile    compile an algorithm           (JSON body)
    POST /v1/simulate   plan + simulate one call       (JSON body)
    POST /v1/profile    simulate + runtime counters    (JSON body)
    GET  /healthz       liveness  (200 while the daemon can make progress)
    GET  /readyz        readiness (200 while new work can be admitted)
    GET  /metrics       live Prometheus text exposition (repro.obs)
    GET  /debug/requests     index of flight-recorder-retained traces
    GET  /debug/traces/<id>  one stitched request trace + log tail

Every request is traced end to end (``trace_id`` from the client's
``X-Trace-Id`` header or minted here; ``ServiceConfig.trace_sample``
controls how many requests get a full stitched span tree): admission,
queue wait, coalescing, worker compute (the worker's own span tree,
clock-aligned across the process boundary), and serialization exactly
partition the observed latency.  The bounded flight recorder keeps the
N slowest and all failed/shed traces; latency-histogram exemplars in
``/metrics`` point at retained ``trace_id``s.  See
``docs/observability.md`` ("Tracing a service request").

Robustness model, in request order:

1. **Admission control** — the worker queue is bounded; beyond it the
   request is shed with ``429`` and a ``Retry-After`` estimated from
   the recent per-job latency, so overload degrades to fast rejections
   instead of collapse.
2. **Deadline budgets** — every request carries a budget
   (``deadline_ms`` field, ``X-Deadline-Ms`` header, or the
   configured default).  The absolute deadline propagates into the
   worker: an expired job is *cancelled* (in the queue, at the worker
   boundary, or mid-compute by SIGKILL) rather than computed, and the
   client gets ``504``.
3. **Coalescing** — concurrent requests with the same
   :func:`~repro.service.protocol.request_fingerprint` (built on the
   plan-cache key) attach as waiters to one in-flight job; the disk
   plan-cache tier is the shared L2 across worker processes.
4. **Supervision** — worker crashes/hangs are repaired by the pool; an
   in-flight request is retried once under backoff before failing.
5. **Graceful degradation** — sustained primary timeouts trip the
   :class:`~repro.service.breaker.CircuitBreaker`; while it is open,
   requests are served the built-in reference ring with
   ``degraded: true`` instead of erroring.

Crash-only lifecycle (``--journal-dir`` arms all three, see
``docs/service.md`` "Operations runbook"):

* **Write-ahead journal** — every admitted request is durably appended
  (:mod:`repro.service.journal`) *before* dispatch and marked complete
  with its ``result_digest`` on reply; a restarted daemon replays the
  incomplete entries (idempotent via the plan cache) before its
  ``/readyz`` flips green, dropping only entries whose deadline already
  passed (``service_journal_{replayed,dropped_expired}_total``).
* **Graceful drain** — the first SIGTERM flips ``/readyz`` (and new
  ``/v1/*`` requests) to 503, drains open requests and the worker queue
  within ``--drain-grace-ms``, then persists the cache-prewarm manifest
  and the flight recorder's error tail; a second signal aborts the
  drain and stops immediately.
* **Hot restart with prewarm** — on boot the persisted manifest's hot
  coalescing keys are replayed as compile jobs (warming each worker
  through the shared disk cache tier) before readiness, so the first
  client wave after a restart hits a warm cache.

``GET /debug/lifecycle`` reports the state machine, the boot replay
tally, and drain status.

The daemon embeds cleanly (``ServiceDaemon.start()/stop()`` run the
event loop on a background thread — what the tests and the load
benchmark use) and runs standalone via ``resccl serve``
(:meth:`ServiceDaemon.run_forever`), which exits 0 on a clean signal
and uses the repo-wide exit code 2 for fatal startup errors such as a
failed bind.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..obs.context import TraceContext, context_from_headers, new_trace_id
from ..obs.log import get_logger, log_ring
from ..obs.metrics import MetricsRegistry
from ..topology import Cluster, profile_by_name
from ..tuning.table import TuningTable, TuningTableError
from .breaker import CircuitBreaker
from .journal import (
    JournalBusy,
    JournalCorrupt,
    JournalEntry,
    RequestJournal,
)
from .lifecycle import (
    RECORDER_FILE,
    LifecycleManager,
    PrewarmManifest,
)
from .protocol import (
    OPS,
    RequestError,
    ServiceRequest,
    parse_request,
    prewarm_payload,
    request_fingerprint,
    result_digest,
)
from .recorder import LOG_TAIL_LIMIT, FlightRecorder
from .tracing import RequestTrace
from .workers import (
    DeadlineExceeded,
    JobFailed,
    PoolSaturated,
    WorkerCrashed,
    WorkerPool,
)

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}

#: Counters mirrored from :class:`PoolStats` into the live registry
#: (pool field -> metric name); deltas are applied on each refresh so
#: the exported series stay monotonic.
_POOL_COUNTERS = {
    "restarts": "service_worker_restarts_total",
    "retries": "service_job_retries_total",
    "deadline_expired": "service_deadline_expired_total",
    "admission_rejects": "service_admission_rejects_total",
    "hang_kills": "service_worker_hang_kills_total",
    "deadline_kills": "service_worker_deadline_kills_total",
}


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance (CLI flags mirror these)."""

    host: str = "127.0.0.1"
    port: int = 8642  # 0 = ephemeral (tests)
    workers: int = 2
    queue_depth: int = 32
    default_deadline_ms: float = 30_000.0
    max_deadline_ms: float = 120_000.0
    hang_timeout_s: float = 10.0
    retry_backoff_s: float = 0.05
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 5.0
    cache_dir: Optional[str] = None
    request_max_bytes: int = 1 << 20
    keepalive_timeout_s: float = 75.0
    #: Fraction of requests whose stitched trace is built and offered to
    #: the flight recorder (1.0 = every request, 0.0 = tracing off;
    #: between the two, a deterministic every-Nth sampler).  Correlation
    #: ids and structured logs are on regardless.
    trace_sample: float = 1.0
    #: Flight-recorder retention: N slowest successes, M newest errors.
    recorder_slow: int = 32
    recorder_errors: int = 128
    #: Directory arming the crash-only lifecycle: write-ahead request
    #: journal, cache-prewarm manifest, and persisted recorder errors.
    #: ``None`` (the default) keeps the daemon fully in-memory.
    journal_dir: Optional[str] = None
    #: Budget for draining open requests + the worker queue on SIGTERM.
    drain_grace_ms: float = 10_000.0
    #: Hot coalescing keys persisted to the prewarm manifest on drain
    #: and replayed before readiness on the next boot (0 disables).
    prewarm_limit: int = 32
    #: Tuning-table file (``resccl tune`` output) served to every
    #: worker.  Requests hitting a tuned cell are answered with the
    #: table's winning plan, coalesce under the cell key, and are
    #: prewarmed at boot.  A missing table or one whose entries'
    #: topology fingerprints no longer match this build's hardware
    #: constants fails startup (exit 2) — serving stale winners
    #: silently is worse than not starting.
    tuning_table: Optional[str] = None


class _Inflight:
    """One in-flight job plus bookkeeping for its coalesced waiters."""

    __slots__ = (
        "key", "future", "pool_future", "primary", "op", "started",
        "deadline", "waiters", "trace_id",
    )

    def __init__(self, key, future, pool_future, primary, op, started,
                 deadline, trace_id=None):
        self.key = key
        self.future = future
        self.pool_future = pool_future
        self.primary = primary
        self.op = op
        self.started = started
        self.deadline = deadline  # the job's effective wall deadline
        self.waiters = 1
        self.trace_id = trace_id  # leader's trace id (waiters reference it)


class ServiceDaemon:
    """The compile/simulate service (embed with start/stop, or serve)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = MetricsRegistry()
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self.pool = WorkerPool(
            workers=self.config.workers,
            max_queue=self.config.queue_depth,
            cache_dir=self.config.cache_dir,
            hang_timeout_s=self.config.hang_timeout_s,
            retry_backoff_s=self.config.retry_backoff_s,
            tuning_table=self.config.tuning_table,
        )
        self.tuning: Optional[TuningTable] = None
        self.recorder = FlightRecorder(
            slow_capacity=self.config.recorder_slow,
            error_capacity=self.config.recorder_errors,
        )
        self.lifecycle = LifecycleManager(
            prewarm_limit=self.config.prewarm_limit
        )
        self.journal: Optional[RequestJournal] = None
        self.port: Optional[int] = None
        self._log = get_logger("daemon")
        self._trace_seq = 0
        self._open_requests = 0  # /v1/* dispatch+respond, loop thread only
        self._drain_abort = threading.Event()
        self._boot_task: Optional[asyncio.Task] = None
        self._inflight: Dict[str, _Inflight] = {}
        self._clusters: Dict[Tuple[int, int, str], Cluster] = {}
        self._pool_counter_base = {name: 0 for name in _POOL_COUNTERS}
        self._lifecycle_counter_base: Dict[str, int] = {}
        self._breaker_trips_seen = 0
        self._ewma_latency_s = 0.5
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_async: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._start_error: Optional[BaseException] = None
        self._accepting = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, wait_ready: bool = True) -> "ServiceDaemon":
        """Boot the pool + server on a background thread.

        With ``wait_ready`` (the default) this blocks through journal
        replay and cache prewarm until ``/readyz`` is green; pass
        ``False`` to return as soon as the socket is listening — the
        daemon then answers health probes (and 503s new work) while it
        finishes booting, which is what an external load balancer sees.
        """
        if self._thread is not None:
            raise RuntimeError("daemon already started")
        self._thread = threading.Thread(
            target=self._thread_main, daemon=True, name="resccl-serve"
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._start_error is None and not self._ready.is_set():
            self._start_error = RuntimeError(
                "daemon failed to become ready in 30s"
            )
        if self._start_error is None and wait_ready:
            # Journal replay + prewarm are bounded by their entries'
            # own deadlines, but leave generous headroom for cold
            # compiles on a loaded host.
            if not self.lifecycle.ready_event.wait(timeout=300.0):
                self._start_error = RuntimeError(
                    "daemon failed to finish boot replay in 300s"
                )
        if self._start_error is not None:
            error = self._start_error
            self.stop()
            raise error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_async is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_async.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.lifecycle.mark_stopped()
        if self.journal is not None:
            self.journal.close()

    def drain(self, grace_ms: Optional[float] = None) -> bool:
        """Stop admitting, wait out in-flight work, persist warm state.

        Flips the lifecycle to DRAINING (``/readyz`` -> 503, new
        ``/v1/*`` requests -> 503 with ``Retry-After``), then waits up
        to ``grace_ms`` (default ``config.drain_grace_ms``) for every
        open request and queued/in-flight job to finish.  Whatever the
        outcome, the prewarm manifest and the flight recorder's error
        tail are persisted to the journal dir (when one is configured).
        Returns ``True`` for a clean drain — zero requests abandoned.
        Thread-safe; callable from a signal-handling thread.
        """
        budget_ms = (
            self.config.drain_grace_ms if grace_ms is None else grace_ms
        )
        if not self.lifecycle.begin_drain():
            return self.lifecycle.drain_clean or False
        self._log.info("drain-started", grace_ms=budget_ms)
        deadline = time.monotonic() + max(0.0, budget_ms) / 1e3
        clean = False
        while time.monotonic() < deadline:
            if self._drain_abort.is_set():
                self._log.warning("drain-aborted")
                break
            if (
                self._open_requests == 0
                and self.pool.queue_depth() == 0
                and self.pool.inflight() == 0
            ):
                clean = True
                break
            time.sleep(0.02)
        self.lifecycle.drain_clean = clean
        self._persist_warm_state()
        self._log.info(
            "drain-finished", clean=clean,
            abandoned_open=self._open_requests,
            abandoned_queued=self.pool.queue_depth(),
        )
        return clean

    def _persist_warm_state(self) -> None:
        """Write the prewarm manifest + recorder error tail for the
        next boot.  Best-effort: persistence failures degrade the next
        restart to cold, they never fail the drain."""
        if self.journal is None:
            return
        try:
            self.lifecycle.manifest.save(self.journal.dir)
        except OSError as exc:
            self._log.error("prewarm-save-failed", error=str(exc))
        try:
            path = Path(self.journal.dir) / RECORDER_FILE
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(
                json.dumps(self.recorder.export_errors()), encoding="utf-8"
            )
            os.replace(tmp, path)
        except (OSError, TypeError, ValueError) as exc:
            self._log.error("recorder-save-failed", error=str(exc))

    def run_forever(self) -> int:
        """Blocking serve for the CLI; returns a process exit code.

        Standalone serving emits structured JSON log lines on stderr
        (:mod:`repro.obs.log`) — one parseable stream for operators —
        while embedded daemons (tests, benchmarks) stay silent apart
        from the in-memory ring.
        """
        import signal
        import sys

        from ..obs import log as obs_log

        obs_log.configure(stream=sys.stderr)
        try:
            # Don't gate the listener on boot replay: health probes and
            # 503s must flow while the journal replays and the cache
            # prewarms, exactly as a load balancer expects.
            self.start(wait_ready=False)
        except (OSError, JournalBusy, JournalCorrupt, TuningTableError) as exc:
            self._log.error("startup-failed", error=str(exc))
            print(f"fatal: cannot start service: {exc}", file=sys.stderr)
            return 2
        stop = threading.Event()
        signals_seen = [0]

        def _on_signal(*_args) -> None:
            signals_seen[0] += 1
            if signals_seen[0] == 1:
                stop.set()
            else:
                # Second signal: the operator wants out *now* — abort
                # the drain wait and shut down immediately.
                self._drain_abort.set()

        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, _on_signal)
        self._log.info(
            "listening",
            url=f"http://{self.config.host}:{self.port}",
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            trace_sample=self.config.trace_sample,
            journal_dir=self.config.journal_dir,
        )
        stop.wait()
        self._log.info("shutting-down")
        self.drain()
        self.stop()
        return 0

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._start_error = exc
            self._ready.set()
        finally:
            self.pool.stop()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_async = asyncio.Event()
        recovered: List[JournalEntry] = []
        if self.config.journal_dir:
            try:
                # Take the journal dir's exclusive lock and compact it
                # *before* serving: a second daemon on the same dir is a
                # deployment error and must fail fast (exit 2), not
                # interleave appends with the incumbent.
                self.journal = RequestJournal(self.config.journal_dir)
                recovered = self.journal.recover()
            except (JournalBusy, JournalCorrupt) as exc:
                self._start_error = exc
                self._ready.set()
                self.lifecycle.ready_event.set()
                return
            self._restore_recorder()
        if self.config.tuning_table:
            try:
                self.tuning = self._load_tuning_table()
            except TuningTableError as exc:
                self._start_error = exc
                self._ready.set()
                self.lifecycle.ready_event.set()
                return
        self.pool.start()
        try:
            server = await asyncio.start_server(
                self._serve_client, self.config.host, self.config.port
            )
        except OSError as exc:
            self._start_error = exc
            self._ready.set()
            self.lifecycle.ready_event.set()
            return
        self.port = server.sockets[0].getsockname()[1]
        self._accepting = True
        self._ready.set()
        # Replay + prewarm run behind the live socket: health probes
        # answer (and new work 503s) while the boot finishes, then
        # readiness flips green.
        self._boot_task = asyncio.ensure_future(self._boot_replay(recovered))
        try:
            async with server:
                await self._stop_async.wait()
        finally:
            self._accepting = False
            if self._boot_task is not None and not self._boot_task.done():
                self._boot_task.cancel()

    def _load_tuning_table(self) -> TuningTable:
        """Load + validate ``--tuning-table`` before serving a byte.

        A table whose entries were tuned under different hardware
        constants (their embedded cluster shape no longer reproduces
        their recorded topology fingerprint) would silently hand out
        stale winners on every request — that is a deployment error, so
        startup fails (exit 2) with a structured log naming the cells.
        """
        path = Path(self.config.tuning_table)
        if not path.is_file():
            self._log.error("tuning-table-missing", path=str(path))
            raise TuningTableError(f"tuning table not found: {path}")
        table = TuningTable.load(path)
        if table.stats.corrupt:
            # The damaged file was quarantined to <path>.corrupt; serve
            # with the (empty) table rather than flap the deployment.
            self._log.warning("tuning-table-quarantined", path=str(path))
        mismatched = table.mismatched_entries()
        if mismatched:
            self._log.error(
                "tuning-table-mismatch",
                path=str(path),
                mismatched=len(mismatched),
                total=len(table),
                cells=[
                    f"{e.get('collective')}/{e.get('buffer_bytes')}B"
                    for e in mismatched[:8]
                ],
            )
            raise TuningTableError(
                f"tuning table {path} has {len(mismatched)} entr(ies) whose "
                "topology fingerprint does not match this build's hardware "
                "constants; re-run 'resccl tune' against the served cluster"
            )
        self._log.info(
            "tuning-table-loaded", path=str(path), cells=len(table),
            dropped=table.stats.dropped_entries,
        )
        return table

    def _restore_recorder(self) -> None:
        """Reload the pre-restart flight-recorder error tail (if any)."""
        path = Path(self.config.journal_dir) / RECORDER_FILE
        try:
            entries = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return
        if isinstance(entries, list):
            restored = self.recorder.restore_errors(entries)
            if restored:
                self._log.info("recorder-restored", traces=restored)

    async def _boot_replay(self, recovered: List[JournalEntry]) -> None:
        """Replay incomplete journal entries + the prewarm manifest,
        then flip the lifecycle to READY."""
        try:
            if recovered:
                await self._replay_journal(recovered)
            if self.journal is not None and self.config.prewarm_limit > 0:
                await self._replay_prewarm(
                    PrewarmManifest.load(self.journal.dir)
                )
            if self.tuning is not None and self.config.prewarm_limit > 0:
                # Every tuned cell compiles its *winning* plan before
                # readiness, so tuned serving starts warm even on a
                # first boot with no manifest.
                await self._replay_prewarm(self.tuning.prewarm_entries())
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - boot must not wedge
            self._log.error(
                "boot-replay-failed",
                error=f"{type(exc).__name__}: {exc}",
            )
        finally:
            self.lifecycle.mark_ready()
            self._log.info(
                "ready",
                time_to_ready_ms=round(
                    self.lifecycle.time_to_ready_ms or 0.0, 1
                ),
                journal_replayed=self.lifecycle.replayed,
                journal_dropped_expired=self.lifecycle.dropped_expired,
                prewarmed=self.lifecycle.prewarmed,
            )

    async def _replay_journal(self, entries: List[JournalEntry]) -> None:
        """Run every incomplete entry exactly once, oldest first.

        Expired entries are dropped (their clients' budgets are spent
        either way); the rest are re-executed — a warm compile or a
        cache probe thanks to the content-addressed plan cache — and
        each gets its ``end`` record with the result digest, so a crash
        *during* replay replays only what is still unfinished.
        """
        self._log.info("journal-replay-start", entries=len(entries))
        chunk = max(1, self.pool.size)
        for start in range(0, len(entries), chunk):
            batch = []
            for entry in entries[start:start + chunk]:
                if entry.expired():
                    self.lifecycle.dropped_expired += 1
                    self.journal.complete(entry.entry_id, "dropped_expired")
                    continue
                try:
                    fut = self.pool.submit(
                        entry.payload, deadline=entry.deadline_wall
                    )
                except PoolSaturated:
                    self.lifecycle.replay_failed += 1
                    self.journal.complete(entry.entry_id, "replay_failed")
                    continue
                batch.append(
                    (entry, asyncio.ensure_future(asyncio.wrap_future(fut)))
                )
            for entry, fut in batch:
                try:
                    msg = await fut
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # noqa: BLE001 - record + move on
                    self.lifecycle.replay_failed += 1
                    self.journal.complete(
                        entry.entry_id,
                        "replay_expired"
                        if isinstance(exc, DeadlineExceeded)
                        else "replay_failed",
                    )
                    continue
                self.lifecycle.replayed += 1
                self.journal.complete(
                    entry.entry_id, 200, digest=result_digest(msg["result"])
                )

    async def _replay_prewarm(self, manifest_entries: List[dict]) -> None:
        """Warm the plan cache with the previous run's hottest keys."""
        if not manifest_entries:
            return
        self._log.info("prewarm-start", entries=len(manifest_entries))
        deadline = time.time() + self.config.default_deadline_ms / 1e3
        futures = []
        for entry in manifest_entries[: self.config.prewarm_limit]:
            try:
                fut = self.pool.submit(entry["payload"], deadline=deadline)
            except PoolSaturated:
                self.lifecycle.prewarm_failed += 1
                continue
            futures.append((entry, asyncio.wrap_future(fut)))
        for entry, fut in futures:
            try:
                await fut
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - prewarm is best-effort
                self.lifecycle.prewarm_failed += 1
                continue
            self.lifecycle.prewarmed += 1
            # Keep the hot set sticky across successive restarts: a key
            # nobody requests again still ages out once fresh traffic
            # out-touches it.
            self.lifecycle.manifest.touch(entry["key"], entry["payload"])

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------

    async def _serve_client(self, reader, writer) -> None:
        try:
            while True:
                try:
                    head = await asyncio.wait_for(
                        self._read_head(reader),
                        timeout=self.config.keepalive_timeout_s,
                    )
                except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                        ValueError, ConnectionError):
                    break
                if head is None:
                    break
                method, path, headers = head
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    length = -1
                if length < 0 or length > self.config.request_max_bytes:
                    await self._respond(
                        writer, 413,
                        {"error": "request body too large"}, close=True,
                    )
                    break
                body = b""
                if length:
                    try:
                        body = await asyncio.wait_for(
                            reader.readexactly(length), timeout=30.0
                        )
                    except (asyncio.TimeoutError,
                            asyncio.IncompleteReadError):
                        break
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                # Drain counts a /v1/* request as open until its
                # response bytes are written — a drained daemon never
                # abandons a computed-but-unsent reply.
                is_op = path.startswith("/v1/")
                if is_op:
                    self._open_requests += 1
                try:
                    status, payload, extra = await self._dispatch(
                        method, path, headers, body
                    )
                    try:
                        await self._respond(
                            writer, status, payload,
                            close=not keep_alive, extra_headers=extra,
                        )
                    except ConnectionError:
                        break
                finally:
                    if is_op:
                        self._open_requests -= 1
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass  # daemon shutdown cancelled this connection mid-read
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_head(reader):
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise ValueError("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for _ in range(100):
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, sep, value = raw.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        else:
            raise ValueError("too many headers")
        return method, target.split("?", 1)[0], headers

    async def _respond(
        self, writer, status, payload, close=False, extra_headers=None
    ) -> None:
        if isinstance(payload, (dict, list)):
            body = json.dumps(payload).encode("utf-8")
            ctype = "application/json"
        else:
            body = str(payload).encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write("\r\n".join(lines).encode("latin-1") + b"\r\n\r\n" + body)
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(self, method, path, headers, body):
        if path == "/healthz" and method == "GET":
            return (*self._healthz(), None)
        if path == "/readyz" and method == "GET":
            return (*self._readyz(), None)
        if path == "/metrics" and method == "GET":
            self._refresh_metrics()
            return 200, self.registry.to_prometheus(), None
        if path == "/debug/requests" and method == "GET":
            return 200, {
                "requests": self.recorder.summaries(),
                "retained": len(self.recorder),
                "recorded": self.recorder.recorded,
                "evicted": self.recorder.evicted,
                "trace_sample": self.config.trace_sample,
            }, None
        if path == "/debug/lifecycle" and method == "GET":
            return 200, self._lifecycle_report(), None
        if path.startswith("/debug/traces/") and method == "GET":
            trace_id = path[len("/debug/traces/"):]
            trace = self.recorder.get(trace_id)
            if trace is None:
                return 404, {
                    "error": f"no retained trace {trace_id!r} "
                    "(evicted, unsampled, or never seen)"
                }, None
            return 200, trace, None
        if path.startswith("/v1/"):
            op = path[len("/v1/"):]
            if op not in OPS:
                return 404, {"error": f"unknown endpoint {path!r}"}, None
            if method != "POST":
                return 405, {"error": f"{path} wants POST"}, None
            return await self._handle_op(op, headers, body)
        return 404, {"error": f"unknown endpoint {path!r}"}, None

    def _healthz(self):
        alive = self.pool.alive_workers()
        supervisor_ok = (
            self.pool._supervisor is not None
            and self.pool._supervisor.is_alive()
        )
        healthy = self._accepting and supervisor_ok
        return (200 if healthy else 503), {
            "status": "ok" if healthy else "unhealthy",
            "workers_alive": alive,
            "queue_depth": self.pool.queue_depth(),
            "inflight": self.pool.inflight(),
            "breaker": self.breaker.state_name,
            "lifecycle": self.lifecycle.state_name,
        }

    def _readyz(self):
        # A booting daemon (journal replay / prewarm in flight) and a
        # draining daemon both refuse: readiness means "send me work".
        ready = (
            self._accepting
            and self.lifecycle.is_ready()
            and self.pool.alive_workers() >= 1
            and self.pool.queue_depth() < self.config.queue_depth
        )
        return (200 if ready else 503), {
            "ready": ready,
            "lifecycle": self.lifecycle.state_name,
            "workers_alive": self.pool.alive_workers(),
            "queue_depth": self.pool.queue_depth(),
        }

    def _lifecycle_report(self) -> dict:
        report = self.lifecycle.snapshot()
        report["open_requests"] = self._open_requests
        report["journal"] = (
            self.journal.stats.snapshot() if self.journal is not None else None
        )
        report["journal_dir"] = self.config.journal_dir
        report["recorder_restored"] = self.recorder.restored
        return report

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------

    def _sample_trace(self) -> bool:
        """Deterministic every-Nth trace sampling (no RNG: reproducible
        in tests, uniform under steady load)."""
        rate = self.config.trace_sample
        if rate <= 0:
            return False
        if rate >= 1:
            return True
        period = max(1, round(1.0 / rate))
        self._trace_seq += 1
        return self._trace_seq % period == 1

    async def _handle_op(self, op, headers, body):
        t0 = time.monotonic()
        context = context_from_headers(headers)
        trace_id = context.trace_id if context else new_trace_id()
        parent_span = context.parent_span_id if context else None
        sampled = self._sample_trace()
        trace = (
            RequestTrace(trace_id, op, parent_span_id=parent_span)
            if sampled else None
        )
        # What rides the job message into the worker: correlation always,
        # span shipping only when this request is sampled.
        wire = TraceContext(
            trace_id, parent_span_id=parent_span, sampled=sampled
        ).to_wire()
        request_id = None  # the client's id once parsed; trace_id stands in
        journal_ref = {"id": None}  # set once the request is journaled

        def finish(status, payload, extra=None):
            if self.journal is not None and journal_ref["id"] is not None:
                # Completion marks ride the executor: an fsync per reply
                # must not stall the event loop.  A mark lost to a crash
                # just means one idempotent replay on the next boot.
                digest = (
                    payload.get("result_digest")
                    if isinstance(payload, dict) else None
                )
                self._loop.run_in_executor(
                    None, self.journal.complete,
                    journal_ref["id"], status, digest,
                )
                journal_ref["id"] = None
            latency_ms = (time.monotonic() - t0) * 1e3
            rid = request_id or trace_id
            if isinstance(payload, dict):
                # Every response body — including 400/429/503/504 error
                # paths — carries correlation ids.
                payload["request_id"] = payload.get("request_id") or rid
                payload.setdefault("trace_id", trace_id)
            self.registry.inc(
                "service_requests_total", endpoint=op, status=str(status)
            )
            self._log.log(
                "info" if status < 500 else "error",
                "request-finished",
                trace_id=trace_id,
                request_id=rid,
                endpoint=op,
                status=status,
                latency_ms=round(latency_ms, 3),
            )
            exemplar = None
            if trace is not None:
                trace.request_id = rid
                stitched = trace.stitch(status)
                retained = self.recorder.record(
                    stitched,
                    logs=log_ring().tail(
                        trace_id=trace_id, limit=LOG_TAIL_LIMIT
                    ),
                )
                if retained:
                    # The p99 buckets in /metrics link to traces the
                    # recorder can still serve.
                    exemplar = {"trace_id": trace_id}
            self.registry.observe(
                "service_request_latency_ms",
                latency_ms,
                exemplar=exemplar,
                endpoint=op,
            )
            self.registry.set("service_queue_depth", self.pool.queue_depth())
            return status, payload, extra

        if not self.lifecycle.is_ready():
            # Booting (journal replay / prewarm) or draining: refuse
            # fast with a hint, exactly like /readyz — the client pool
            # fails over to the next replica.
            state = self.lifecycle.state_name
            if trace is not None:
                trace.mark_error(f"not accepting requests: {state}")
            self.registry.inc(
                "service_lifecycle_rejects_total", endpoint=op, state=state
            )
            return finish(
                503,
                {"error": f"not accepting requests: daemon is {state}",
                 "lifecycle": state},
                {"Retry-After": "1"},
            )

        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            if trace is not None:
                trace.mark_error(f"bad JSON body: {exc}")
            return finish(400, {"error": f"bad JSON body: {exc}"})
        try:
            request = parse_request(op, payload)
        except RequestError as exc:
            if trace is not None:
                trace.mark_error(str(exc))
            return finish(400, {"error": str(exc)})
        request_id = request.request_id

        deadline_ms = request.deadline_ms
        if deadline_ms is None and headers.get("x-deadline-ms"):
            try:
                deadline_ms = float(headers["x-deadline-ms"])
            except ValueError:
                if trace is not None:
                    trace.mark_error("bad X-Deadline-Ms header")
                return finish(400, {"error": "bad X-Deadline-Ms header"})
            # float() accepts "nan"/"inf"; NaN passes every deadline
            # comparison and would run the job with no deadline at all.
            if not math.isfinite(deadline_ms):
                if trace is not None:
                    trace.mark_error("bad X-Deadline-Ms header")
                return finish(400, {"error": "bad X-Deadline-Ms header"})
        if deadline_ms is None or deadline_ms <= 0:
            deadline_ms = self.config.default_deadline_ms
        deadline_ms = min(deadline_ms, self.config.max_deadline_ms)
        deadline_wall = time.time() + deadline_ms / 1e3
        deadline_mono = t0 + deadline_ms / 1e3

        degraded_by_breaker = False
        if not request.degraded and not self.breaker.allow_primary():
            request.degraded = True
            degraded_by_breaker = True
            self.registry.inc("service_degraded_total", endpoint=op)

        key = request_fingerprint(
            request, self._cluster_for(request), tuning_table=self.tuning
        )
        self.lifecycle.manifest.touch(key, prewarm_payload(request))
        if self.journal is not None:
            # Write-ahead: the request is durable *before* any dispatch
            # or coalesce-attach, so a crash from here on replays it.
            # The fsync runs on the executor — concurrent event-loop
            # work continues; this request alone waits for durability.
            journal_ref["id"] = new_trace_id()
            record = JournalEntry(
                entry_id=journal_ref["id"],
                key=key,
                op=op,
                payload=request.to_payload(),
                deadline_wall=deadline_wall,
                trace_id=trace_id,
            )
            await self._loop.run_in_executor(
                None, self.journal.append, record
            )
        if trace is not None:
            trace.annotate(
                endpoint=op,
                breaker=self.breaker.state_name,
                degraded=request.degraded,
                deadline_ms=round(deadline_ms),
            )
        entry = self._inflight.get(key)
        coalesced = entry is not None
        if coalesced:
            entry.waiters += 1
            if deadline_wall > entry.deadline:
                # Don't let this waiter inherit the leader's shorter
                # budget: stretch the shared job's deadline so the pool
                # does not kill it while this waiter still has time.
                entry.deadline = deadline_wall
                self.pool.extend_deadline(entry.pool_future, deadline_wall)
            self.registry.inc("service_coalesce_hits_total", endpoint=op)
            if trace is not None:
                # The worker spans live in the leader's trace — exactly
                # one trace accounts for the shared compute; waiters
                # reference it instead of duplicating it.
                trace.mark_attached(entry.trace_id)
        else:
            try:
                fut = self.pool.submit(
                    request.to_payload(),
                    deadline=deadline_wall,
                    retry_after_s=self._retry_after_s(),
                    trace=wire,
                )
            except PoolSaturated as exc:
                if trace is not None:
                    trace.mark_error("shed: request queue full")
                self._log.warning(
                    "request-shed",
                    trace_id=trace_id,
                    endpoint=op,
                    queue_depth=exc.depth,
                )
                return finish(
                    429,
                    {
                        "error": "overloaded: request queue is full",
                        "queue_depth": exc.depth,
                        "retry_after_s": exc.retry_after_s,
                    },
                    {"Retry-After": str(max(1, round(exc.retry_after_s)))},
                )
            if trace is not None:
                trace.mark_submitted()
            afut = asyncio.ensure_future(asyncio.wrap_future(fut))
            entry = _Inflight(
                key, afut, fut, primary=not request.degraded, op=op,
                started=t0, deadline=deadline_wall, trace_id=trace_id,
            )
            self._inflight[key] = entry
            afut.add_done_callback(
                lambda f, e=entry: self._on_job_done(e, f)
            )

        remaining = deadline_mono - time.monotonic()
        try:
            msg = await asyncio.wait_for(
                asyncio.shield(entry.future), timeout=max(0.001, remaining)
            )
        except asyncio.TimeoutError:
            # This waiter's budget ran out; the shared job (and any
            # longer-budget waiters) may still complete — the pool's own
            # deadline enforcement reaps it if nobody is left.
            if trace is not None:
                trace.mark_error(f"deadline ({deadline_ms:.0f} ms) expired")
            return finish(
                504,
                {
                    "error": f"deadline ({deadline_ms:.0f} ms) expired",
                    "request_id": request.request_id,
                },
            )
        except DeadlineExceeded as exc:
            if trace is not None:
                trace.mark_error(str(exc))
            return finish(
                504, {"error": str(exc), "request_id": request.request_id}
            )
        except RequestError as exc:
            if trace is not None:
                trace.mark_error(str(exc))
            return finish(400, {"error": str(exc)})
        except WorkerCrashed as exc:
            if trace is not None:
                trace.mark_error(str(exc))
            return finish(
                500, {"error": str(exc), "request_id": request.request_id}
            )
        except JobFailed as exc:
            if trace is not None:
                trace.mark_error("request failed in worker")
            return finish(
                500,
                {
                    "error": "request failed in worker",
                    "detail": exc.worker_traceback[-2000:],
                    "request_id": request.request_id,
                },
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - never drop a response
            if trace is not None:
                trace.mark_error(f"{type(exc).__name__}: {exc}")
            return finish(
                500, {"error": f"{type(exc).__name__}: {exc}"}
            )

        if trace is not None:
            worker_blob = None
            if not coalesced:
                worker_blob = {
                    "started_wall": msg.get("started_wall"),
                    "ended_wall": msg.get("ended_wall"),
                    "worker": msg.get("worker"),
                }
                worker_blob.update(msg.get("trace") or {})
            trace.mark_reply(worker_blob)
        result = msg["result"]
        return finish(200, {
            "ok": True,
            "op": op,
            "request_id": request.request_id,
            "degraded": request.degraded,
            "degraded_by_breaker": degraded_by_breaker,
            "coalesced": coalesced,
            "result": result,
            "result_digest": result_digest(result),
        })

    def _on_job_done(self, entry: _Inflight, future) -> None:
        """Leader-job completion: runs once per job in the loop thread."""
        self._inflight.pop(entry.key, None)
        elapsed = time.monotonic() - entry.started
        self._ewma_latency_s = 0.8 * self._ewma_latency_s + 0.2 * elapsed
        if future.cancelled():
            return
        exc = future.exception()
        if exc is None:
            if entry.primary:
                self.breaker.record_success()
            msg = future.result()
            metrics = msg.get("metrics")
            if metrics:
                # Cumulative per-worker snapshot: the source watermark
                # in merge_json dedups re-reported totals and flags a
                # respawned worker's counter reset.
                worker = msg.get("worker")
                source = f"worker-{worker}" if worker is not None else "worker"
                try:
                    self.registry.merge_json(metrics, source=source)
                except ValueError:
                    pass  # never let a metrics glitch fail the daemon
        elif isinstance(exc, (DeadlineExceeded, WorkerCrashed)):
            # Timeout-shaped failures are what the breaker watches.
            if entry.primary:
                self.breaker.record_failure()

    # ------------------------------------------------------------------
    # Support
    # ------------------------------------------------------------------

    def _cluster_for(self, request: ServiceRequest) -> Cluster:
        key = (request.nodes, request.gpus, request.profile.upper())
        cluster = self._clusters.get(key)
        if cluster is None:
            cluster = Cluster(
                nodes=request.nodes,
                gpus_per_node=request.gpus,
                profile=profile_by_name(request.profile),
            )
            if len(self._clusters) >= 64:
                self._clusters.pop(next(iter(self._clusters)))
            self._clusters[key] = cluster
        return cluster

    def _retry_after_s(self) -> float:
        backlog = self.pool.queue_depth() + self.pool.inflight() + 1
        estimate = backlog * self._ewma_latency_s / max(1, self.pool.size)
        return min(30.0, max(1.0, estimate))

    def _refresh_metrics(self) -> None:
        """Fold pool/breaker state into the registry (loop thread only)."""
        stats = self.pool.stats.snapshot()
        for field_name, metric in _POOL_COUNTERS.items():
            delta = stats[field_name] - self._pool_counter_base[field_name]
            if delta > 0:
                self.registry.inc(metric, delta)
            self._pool_counter_base[field_name] = stats[field_name]
        if self.breaker.trips > self._breaker_trips_seen:
            self.registry.inc(
                "service_breaker_trips_total",
                self.breaker.trips - self._breaker_trips_seen,
            )
            self._breaker_trips_seen = self.breaker.trips
        self.registry.set("service_breaker_state", self.breaker.state)
        self.registry.set("service_queue_depth", self.pool.queue_depth())
        self.registry.set("service_inflight", self.pool.inflight())
        self.registry.set("service_workers_alive", self.pool.alive_workers())
        # Lifecycle + journal counters are delta-folded like the pool's
        # (the sources are mutated off the loop thread; the registry is
        # written only here, on it).
        counters = {
            "service_journal_replayed_total": self.lifecycle.replayed,
            "service_journal_dropped_expired_total":
                self.lifecycle.dropped_expired,
            "service_journal_replay_failed_total":
                self.lifecycle.replay_failed,
            "service_lifecycle_prewarmed_total": self.lifecycle.prewarmed,
            "service_recorder_restored_total": self.recorder.restored,
        }
        if self.journal is not None:
            stats = self.journal.stats.snapshot()
            counters["service_journal_appends_total"] = stats["appends"]
            counters["service_journal_errors_total"] = stats["errors"]
        for metric, total in counters.items():
            delta = total - self._lifecycle_counter_base.get(metric, 0)
            if delta > 0:
                self.registry.inc(metric, delta)
            self._lifecycle_counter_base[metric] = total
        self.registry.set("service_lifecycle_state", self.lifecycle.state)
        if self.lifecycle.time_to_ready_ms is not None:
            self.registry.set(
                "service_lifecycle_time_to_ready_ms",
                self.lifecycle.time_to_ready_ms,
            )
        self.registry.set("service_open_requests", self._open_requests)


__all__ = ["ServiceConfig", "ServiceDaemon"]

"""Static validation of elaborated ResCCLang programs.

Run before compilation, these checks catch the errors that would deadlock
or corrupt a collective on real hardware: out-of-range ranks/chunks,
duplicate transmission tasks, same-step write conflicts on one buffer
slot, and cyclic data dependencies.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.dag import CyclicDependencyError, build_dag
from ..topology import Cluster
from .builder import AlgoProgram


class ProgramValidationError(ValueError):
    """Raised when a program fails validation; carries every issue found."""

    def __init__(self, issues: List[str]) -> None:
        preview = "\n  - ".join(issues[:12])
        suffix = "" if len(issues) <= 12 else f"\n  ... and {len(issues) - 12} more"
        super().__init__(f"{len(issues)} validation issue(s):\n  - {preview}{suffix}")
        self.issues = issues


@dataclass
class ValidationReport:
    """Outcome of validating one program."""

    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def raise_if_failed(self) -> None:
        if self.issues:
            raise ProgramValidationError(self.issues)


def _default_cluster(program: AlgoProgram) -> Cluster:
    """A topology consistent with the program header, for analysis only."""
    gpus_per_node = program.header.gpus_per_node
    if program.nranks % gpus_per_node != 0:
        return Cluster(nodes=1, gpus_per_node=program.nranks)
    nodes = program.nranks // gpus_per_node
    nics = min(program.header.nics_per_node, gpus_per_node)
    return Cluster(nodes=nodes, gpus_per_node=gpus_per_node, nics_per_node=nics)


def validate_program(
    program: AlgoProgram, cluster: Optional[Cluster] = None
) -> ValidationReport:
    """Validate a program, optionally against a concrete cluster.

    Returns a report; call ``report.raise_if_failed()`` to make failures
    fatal.  When ``cluster`` is omitted, a topology is inferred from the
    program header for the dependency-cycle check.
    """
    report = ValidationReport()
    issues = report.issues
    nranks = program.nranks
    nchunks = program.nchunks

    if not program.transfers:
        issues.append("program contains no transfers")
        return report

    if cluster is not None and cluster.world_size != nranks:
        issues.append(
            f"program declares nRanks={nranks} but the cluster has "
            f"{cluster.world_size} GPUs"
        )

    seen: Counter = Counter()
    writes_per_slot_step: Dict[Tuple[int, int, int], List[int]] = defaultdict(list)
    for index, t in enumerate(program.transfers):
        if t.src >= nranks:
            issues.append(f"transfer #{index}: src rank {t.src} >= nRanks {nranks}")
        if t.dst >= nranks:
            issues.append(f"transfer #{index}: dst rank {t.dst} >= nRanks {nranks}")
        if t.chunk >= nchunks:
            issues.append(
                f"transfer #{index}: chunk {t.chunk} >= chunk count {nchunks}"
            )
        seen[(t.src, t.dst, t.step, t.chunk)] += 1
        writes_per_slot_step[(t.dst, t.chunk, t.step)].append(index)

    for key, count in seen.items():
        if count > 1:
            src, dst, step, chunk = key
            issues.append(
                f"duplicate transfer r{src}->r{dst} step={step} chunk={chunk} "
                f"appears {count} times"
            )

    for (dst, chunk, step), writers in writes_per_slot_step.items():
        if len(writers) > 1:
            issues.append(
                f"write conflict: transfers {writers} all write chunk {chunk} "
                f"on rank {dst} at step {step}"
            )

    if issues:
        # Rank/chunk range errors make DAG construction meaningless.
        return report

    analysis_cluster = cluster if cluster is not None else _default_cluster(program)
    try:
        build_dag(program.transfers, analysis_cluster).topological_order()
    except CyclicDependencyError as exc:
        issues.append(str(exc))
    return report


__all__ = ["validate_program", "ValidationReport", "ProgramValidationError"]

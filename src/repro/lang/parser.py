"""Recursive-descent parser for textual ResCCLang (Figure 14 BNF).

The surface syntax is Python-like and indentation-structured, exactly as
the paper's Figure 16 example program:

    def ResCCLAlgo(nRanks=32, nChannels=4, nWarps=16, AlgoName="HM",
                   OpType="Allreduce", GPUPerNode=8, NICPerNode=8):
        nNodes = 4
        for n in range(0, nNodes):
            transfer(srcRank, dstRank, step, chunkId, rrc)

The grammar terminals: identifiers, integer literals, quoted strings (for
``AlgoName`` and ``OpType``), the arithmetic operators ``+ - * / %``,
parentheses, and the keywords ``def``, ``for``, ``in``, ``range``,
``transfer``.  ``commType`` may be written bare (``recv`` / ``rrc``, as in
Figure 16) or quoted (as in the BNF).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..ir.task import parse_collective, parse_comm_type
from .ast import (
    Assign,
    BinOp,
    Expr,
    ForLoop,
    Header,
    Module,
    Name,
    Num,
    ResCCLangSyntaxError,
    Stmt,
    TransferStmt,
)
from .builder import AlgoProgram, evaluate_module

_TOKEN_RE = re.compile(
    r"""
    (?P<string>"[^"\n]*")
  | (?P<number>\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>[+\-*/%(),:=])
  | (?P<space>[ \t]+)
  | (?P<bad>.)
    """,
    re.VERBOSE,
)

_ADD_OPS = ("+", "-")
_MUL_OPS = ("*", "/", "%")


@dataclass(frozen=True)
class _Token:
    kind: str  # "string" | "number" | "name" | "op"
    text: str
    line: int


@dataclass(frozen=True)
class _Line:
    indent: int
    tokens: Tuple[_Token, ...]
    number: int


def _tokenize_line(text: str, line_number: int) -> Tuple[_Token, ...]:
    tokens: List[_Token] = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind == "space":
            continue
        if kind == "bad":
            raise ResCCLangSyntaxError(
                f"unexpected character {match.group()!r}", line_number
            )
        tokens.append(_Token(kind=kind, text=match.group(), line=line_number))
    return tuple(tokens)


def _logical_lines(source: str) -> List[_Line]:
    """Split source into indented token lines, dropping blanks/comments.

    A trailing backslash or an unclosed parenthesis joins physical lines,
    which lets long headers wrap as in the paper's listing.
    """
    lines: List[_Line] = []
    pending = ""
    pending_start = 0
    depth = 0
    for number, raw in enumerate(source.splitlines(), start=1):
        code = raw.split("#", 1)[0].rstrip()
        if not pending and not code.strip():
            continue
        if not pending:
            pending_start = number
        continued = code.endswith("\\")
        if continued:
            code = code[:-1]
        pending += code if not pending else " " + code.lstrip()
        depth += code.count("(") - code.count(")")
        if continued or depth > 0:
            continue
        stripped = pending.lstrip(" \t")
        indent_text = pending[: len(pending) - len(stripped)]
        indent = len(indent_text.replace("\t", "    "))
        tokens = _tokenize_line(stripped, pending_start)
        if tokens:
            lines.append(_Line(indent=indent, tokens=tokens, number=pending_start))
        pending = ""
        depth = 0
    if pending.strip():
        tokens = _tokenize_line(pending.lstrip(), pending_start)
        if tokens:
            raise ResCCLangSyntaxError("unbalanced parentheses at end of file", pending_start)
    return lines


class _TokenCursor:
    """Sequential reader over one logical line's tokens."""

    def __init__(self, line: _Line) -> None:
        self._tokens = line.tokens
        self._index = 0
        self.line_number = line.number

    def peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ResCCLangSyntaxError("unexpected end of line", self.line_number)
        self._index += 1
        return token

    def expect(self, text: str) -> _Token:
        token = self.next()
        if token.text != text:
            raise ResCCLangSyntaxError(
                f"expected {text!r}, found {token.text!r}", self.line_number
            )
        return token

    def expect_name(self, expected: Optional[str] = None) -> _Token:
        token = self.next()
        if token.kind != "name":
            raise ResCCLangSyntaxError(
                f"expected identifier, found {token.text!r}", self.line_number
            )
        if expected is not None and token.text != expected:
            raise ResCCLangSyntaxError(
                f"expected {expected!r}, found {token.text!r}", self.line_number
            )
        return token

    def at_end(self) -> bool:
        return self.peek() is None

    def require_end(self) -> None:
        token = self.peek()
        if token is not None:
            raise ResCCLangSyntaxError(
                f"trailing tokens starting at {token.text!r}", self.line_number
            )


def _parse_expr(cursor: _TokenCursor) -> Expr:
    return _parse_add(cursor)


def _parse_add(cursor: _TokenCursor) -> Expr:
    node = _parse_mul(cursor)
    while True:
        token = cursor.peek()
        if token is None or token.text not in _ADD_OPS:
            return node
        cursor.next()
        node = BinOp(op=token.text, left=node, right=_parse_mul(cursor))


def _parse_mul(cursor: _TokenCursor) -> Expr:
    node = _parse_atom(cursor)
    while True:
        token = cursor.peek()
        if token is None or token.text not in _MUL_OPS:
            return node
        cursor.next()
        node = BinOp(op=token.text, left=node, right=_parse_atom(cursor))


def _parse_atom(cursor: _TokenCursor) -> Expr:
    token = cursor.next()
    if token.kind == "number":
        return Num(int(token.text))
    if token.kind == "name":
        return Name(token.text)
    if token.text == "(":
        inner = _parse_expr(cursor)
        cursor.expect(")")
        return inner
    if token.text == "-":
        # Unary minus, e.g. ``(offset-step)`` style rewrites: ``0 - x``.
        return BinOp(op="-", left=Num(0), right=_parse_atom(cursor))
    raise ResCCLangSyntaxError(
        f"expected expression, found {token.text!r}", cursor.line_number
    )


_HEADER_PARAMS = {
    "nRanks": "nranks",
    "nChannels": "nchannels",
    "nWarps": "nwarps",
    "AlgoName": "algo_name",
    "OpType": "collective",
    "GPUPerNode": "gpus_per_node",
    "NICPerNode": "nics_per_node",
}


def _parse_header(cursor: _TokenCursor) -> Header:
    cursor.expect_name("def")
    cursor.expect_name("ResCCLAlgo")
    cursor.expect("(")
    values = {}
    while True:
        token = cursor.peek()
        if token is not None and token.text == ")":
            cursor.next()
            break
        key_token = cursor.expect_name()
        if key_token.text not in _HEADER_PARAMS:
            known = ", ".join(sorted(_HEADER_PARAMS))
            raise ResCCLangSyntaxError(
                f"unknown parameter {key_token.text!r}; known: {known}",
                cursor.line_number,
            )
        cursor.expect("=")
        value_token = cursor.next()
        field = _HEADER_PARAMS[key_token.text]
        if field == "algo_name":
            if value_token.kind != "string":
                raise ResCCLangSyntaxError(
                    "AlgoName expects a quoted string", cursor.line_number
                )
            values[field] = value_token.text.strip('"')
        elif field == "collective":
            if value_token.kind != "string":
                raise ResCCLangSyntaxError(
                    "OpType expects a quoted string", cursor.line_number
                )
            values[field] = parse_collective(value_token.text)
        else:
            if value_token.kind != "number":
                raise ResCCLangSyntaxError(
                    f"{key_token.text} expects an integer", cursor.line_number
                )
            values[field] = int(value_token.text)
        separator = cursor.peek()
        if separator is not None and separator.text == ",":
            cursor.next()
    cursor.expect(":")
    cursor.require_end()
    if "nranks" not in values:
        raise ResCCLangSyntaxError("header is missing nRanks", cursor.line_number)
    return Header(**values)


def _parse_transfer(cursor: _TokenCursor) -> TransferStmt:
    cursor.expect("(")
    args: List[Expr] = []
    for position in range(4):
        args.append(_parse_expr(cursor))
        cursor.expect(",")
    comm_token = cursor.next()
    if comm_token.kind not in ("name", "string"):
        raise ResCCLangSyntaxError(
            f"expected commType, found {comm_token.text!r}", cursor.line_number
        )
    comm_type = parse_comm_type(comm_token.text)
    cursor.expect(")")
    cursor.require_end()
    return TransferStmt(
        src=args[0], dst=args[1], step=args[2], chunk=args[3], comm_type=comm_type
    )


def _parse_for(cursor: _TokenCursor) -> Tuple[str, Tuple[Expr, ...]]:
    var = cursor.expect_name().text
    cursor.expect_name("in")
    cursor.expect_name("range")
    cursor.expect("(")
    range_args: List[Expr] = [_parse_expr(cursor)]
    while True:
        token = cursor.next()
        if token.text == ")":
            break
        if token.text != ",":
            raise ResCCLangSyntaxError(
                f"expected ',' or ')', found {token.text!r}", cursor.line_number
            )
        range_args.append(_parse_expr(cursor))
    if len(range_args) > 3:
        raise ResCCLangSyntaxError(
            "range() takes at most 3 arguments", cursor.line_number
        )
    cursor.expect(":")
    cursor.require_end()
    return var, tuple(range_args)


class _BlockParser:
    """Parses the indentation-structured statement body."""

    def __init__(self, lines: Sequence[_Line]) -> None:
        self._lines = list(lines)
        self._position = 0

    def peek(self) -> Optional[_Line]:
        if self._position < len(self._lines):
            return self._lines[self._position]
        return None

    def parse_block(self, indent: int) -> List[Stmt]:
        """Parse statements at exactly ``indent`` until dedent."""
        statements: List[Stmt] = []
        while True:
            line = self.peek()
            if line is None or line.indent < indent:
                return statements
            if line.indent > indent:
                raise ResCCLangSyntaxError(
                    f"unexpected indent (expected {indent} spaces, got "
                    f"{line.indent})",
                    line.number,
                )
            self._position += 1
            statements.append(self._parse_statement(line))

    def _parse_statement(self, line: _Line) -> Stmt:
        cursor = _TokenCursor(line)
        head = cursor.peek()
        if head is None:
            raise ResCCLangSyntaxError("empty statement", line.number)
        if head.kind == "name" and head.text == "for":
            cursor.next()
            var, range_args = _parse_for(cursor)
            body = self._parse_indented_body(line)
            return ForLoop(var=var, range_args=range_args, body=tuple(body))
        if head.kind == "name" and head.text == "transfer":
            cursor.next()
            return _parse_transfer(cursor)
        if head.kind == "name":
            target = cursor.next().text
            cursor.expect("=")
            value = _parse_expr(cursor)
            cursor.require_end()
            return Assign(target=target, value=value)
        raise ResCCLangSyntaxError(
            f"expected statement, found {head.text!r}", line.number
        )

    def _parse_indented_body(self, opener: _Line) -> List[Stmt]:
        nxt = self.peek()
        if nxt is None or nxt.indent <= opener.indent:
            raise ResCCLangSyntaxError(
                "expected an indented block after ':'", opener.number
            )
        return self.parse_block(nxt.indent)


def parse_module(source: str) -> Module:
    """Parse ResCCLang source text into an AST module."""
    lines = _logical_lines(source)
    if not lines:
        raise ResCCLangSyntaxError("empty program", 1)
    header_line = lines[0]
    if header_line.indent != 0:
        raise ResCCLangSyntaxError("the def must start at column 0", header_line.number)
    header = _parse_header(_TokenCursor(header_line))
    block = _BlockParser(lines[1:])
    nxt = block.peek()
    if nxt is None:
        raise ResCCLangSyntaxError(
            "the algorithm body is empty", header_line.number
        )
    body = block.parse_block(nxt.indent)
    remaining = block.peek()
    if remaining is not None:
        raise ResCCLangSyntaxError(
            "statement outside of the ResCCLAlgo body", remaining.number
        )
    return Module(header=header, body=body)


def parse_program(source: str) -> AlgoProgram:
    """Parse and evaluate ResCCLang text into an elaborated program."""
    return evaluate_module(parse_module(source))


__all__ = ["parse_module", "parse_program"]

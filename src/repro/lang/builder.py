"""Builder API for ResCCLang programs, and the AST evaluator.

Algorithm developers (and the synthesizers) construct programs through
:class:`AlgoProgram` — the embedded form of ResCCLang, matching how the
paper's Figure 16 program is "Python-style".  The textual parser produces
an AST :class:`~repro.lang.ast.Module`, which :func:`evaluate_module`
executes into the same :class:`AlgoProgram` representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

from ..ir.task import Collective, CommType, Transfer, chunk_count
from .ast import (
    Assign,
    BinOp,
    Expr,
    ForLoop,
    Header,
    Module,
    Name,
    Num,
    ResCCLangEvalError,
    Stmt,
    TransferStmt,
    eval_expr,
)

#: Safety valve for runaway loops when evaluating untrusted DSL text.
MAX_TRANSFERS = 5_000_000


@dataclass
class AlgoProgram:
    """A fully-elaborated collective algorithm: header + transfer list.

    This is the input to the ResCCL compiler and to the baseline
    backends.  Transfers are ordered as emitted; their ``step`` values
    carry the algorithm's logical ordering.

    ``stage_starts`` is the *manual stage division* that stage-level
    backends (MSCCL, section 2.1) require: a sorted list of step values,
    each opening a new stage.  ResCCL ignores it — its scheduling is
    automatic — and it defaults to a single stage.
    """

    header: Header
    transfers: List[Transfer] = field(default_factory=list)
    stage_starts: List[int] = field(default_factory=lambda: [0])

    def stage_of(self, step: int) -> int:
        """Stage index containing a step (for stage-level backends)."""
        stage = 0
        for index, start in enumerate(self.stage_starts):
            if step >= start:
                stage = index
        return stage

    @property
    def num_stages(self) -> int:
        return len(self.stage_starts)

    @classmethod
    def create(
        cls,
        nranks: int,
        collective: Collective,
        name: str = "anonymous",
        nchannels: int = 4,
        nwarps: int = 16,
        gpus_per_node: int = 8,
        nics_per_node: int = 4,
    ) -> "AlgoProgram":
        """Convenience constructor mirroring the ``ResCCLAlgo`` signature."""
        header = Header(
            nranks=nranks,
            algo_name=name,
            collective=collective,
            nchannels=nchannels,
            nwarps=nwarps,
            gpus_per_node=gpus_per_node,
            nics_per_node=nics_per_node,
        )
        return cls(header=header)

    # ------------------------------------------------------------------

    @property
    def nranks(self) -> int:
        return self.header.nranks

    @property
    def name(self) -> str:
        return self.header.algo_name

    @property
    def collective(self) -> Collective:
        return self.header.collective

    @property
    def nchunks(self) -> int:
        """Chunks per rank buffer (equals the rank count, section 4.2)."""
        return chunk_count(self.header.collective, self.header.nranks)

    @property
    def max_step(self) -> int:
        """Largest step index used, or -1 for an empty program."""
        return max((t.step for t in self.transfers), default=-1)

    def transfer(
        self,
        src: int,
        dst: int,
        step: int,
        chunk: int,
        op: Union[CommType, str] = CommType.RECV,
    ) -> Transfer:
        """Record one transmission task; returns the created transfer."""
        if isinstance(op, str):
            op = CommType(op)
        record = Transfer(src=src, dst=dst, step=step, chunk=chunk, op=op)
        self.transfers.append(record)
        return record

    def __len__(self) -> int:
        return len(self.transfers)

    # ------------------------------------------------------------------

    def to_source(self) -> str:
        """Serialize to textual ResCCLang (one transfer statement per task).

        The output is flat — loops are not reconstructed — but it is valid
        Figure 14 syntax and round-trips through the parser.
        """
        h = self.header
        lines = [
            (
                f"def ResCCLAlgo(nRanks={h.nranks}, nChannels={h.nchannels}, "
                f"nWarps={h.nwarps}, AlgoName=\"{h.algo_name}\", "
                f"OpType=\"{h.collective.value}\", GPUPerNode={h.gpus_per_node}, "
                f"NICPerNode={h.nics_per_node}):"
            )
        ]
        for t in self.transfers:
            lines.append(
                f"    transfer({t.src}, {t.dst}, {t.step}, {t.chunk}, {t.op.value})"
            )
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        return (
            f"AlgoProgram({self.name!r}, {self.collective.value}, "
            f"nranks={self.nranks}, transfers={len(self.transfers)})"
        )


def _header_env(header: Header) -> Dict[str, int]:
    """Identifiers the header puts in scope for the program body."""
    return {
        "nRanks": header.nranks,
        "nChannels": header.nchannels,
        "nWarps": header.nwarps,
        "GPUPerNode": header.gpus_per_node,
        "NICPerNode": header.nics_per_node,
    }


def _execute(
    body: Sequence[Stmt], env: Dict[str, int], program: AlgoProgram
) -> None:
    for stmt in body:
        if isinstance(stmt, Assign):
            env[stmt.target] = eval_expr(stmt.value, env)
        elif isinstance(stmt, ForLoop):
            args = [eval_expr(a, env) for a in stmt.range_args]
            for value in range(*args):
                env[stmt.var] = value
                _execute(stmt.body, env, program)
        elif isinstance(stmt, TransferStmt):
            if len(program.transfers) >= MAX_TRANSFERS:
                raise ResCCLangEvalError(
                    f"program exceeds {MAX_TRANSFERS} transfers; "
                    "likely a runaway loop"
                )
            program.transfer(
                src=eval_expr(stmt.src, env),
                dst=eval_expr(stmt.dst, env),
                step=eval_expr(stmt.step, env),
                chunk=eval_expr(stmt.chunk, env),
                op=stmt.comm_type,
            )
        else:
            raise ResCCLangEvalError(f"unknown statement {stmt!r}")


def evaluate_module(module: Module) -> AlgoProgram:
    """Execute a parsed ResCCLang module into an elaborated program."""
    program = AlgoProgram(header=module.header)
    env = _header_env(module.header)
    _execute(module.body, env, program)
    return program


__all__ = ["AlgoProgram", "evaluate_module", "MAX_TRANSFERS"]

"""ResCCLang: the DSL for describing collective communication algorithms."""

from .ast import (
    Assign,
    BinOp,
    Expr,
    ForLoop,
    Header,
    Module,
    Name,
    Num,
    ResCCLangError,
    ResCCLangEvalError,
    ResCCLangSyntaxError,
    Stmt,
    TransferStmt,
)
from .builder import AlgoProgram, evaluate_module
from .parser import parse_module, parse_program
from .validate import ProgramValidationError, ValidationReport, validate_program

__all__ = [
    "AlgoProgram",
    "evaluate_module",
    "parse_module",
    "parse_program",
    "validate_program",
    "ValidationReport",
    "ProgramValidationError",
    "Header",
    "Module",
    "Assign",
    "ForLoop",
    "TransferStmt",
    "BinOp",
    "Name",
    "Num",
    "Expr",
    "Stmt",
    "ResCCLangError",
    "ResCCLangSyntaxError",
    "ResCCLangEvalError",
]

"""Abstract syntax tree for ResCCLang (Figure 14 of the paper).

The language is deliberately tiny: a single ``ResCCLAlgo`` definition whose
body is a sequence of assignments, integer ``for`` loops over ``range``,
and ``transfer`` calls.  Expressions are integer arithmetic over literals
and identifiers with ``+ - * / %`` (division is integer division — the DSL
has no floats).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from ..ir.task import Collective, CommType


class ResCCLangError(ValueError):
    """Base class for ResCCLang parse/evaluation errors."""


class ResCCLangSyntaxError(ResCCLangError):
    """Raised when source text does not match the Figure 14 grammar."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


class ResCCLangEvalError(ResCCLangError):
    """Raised when a syntactically valid program fails at evaluation time."""


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Num:
    """Integer literal."""

    value: int


@dataclass(frozen=True)
class Name:
    """Identifier reference."""

    ident: str


@dataclass(frozen=True)
class BinOp:
    """Binary arithmetic: ``left op right`` with op in ``+ - * / %``."""

    op: str
    left: "Expr"
    right: "Expr"


Expr = Union[Num, Name, BinOp]


def eval_expr(expr: Expr, env: Dict[str, int]) -> int:
    """Evaluate an expression in an integer environment."""
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, Name):
        try:
            return env[expr.ident]
        except KeyError:
            raise ResCCLangEvalError(f"undefined identifier {expr.ident!r}") from None
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, env)
        right = eval_expr(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            if right == 0:
                raise ResCCLangEvalError("division by zero")
            return left // right
        if expr.op == "%":
            if right == 0:
                raise ResCCLangEvalError("modulo by zero")
            return left % right
        raise ResCCLangEvalError(f"unknown operator {expr.op!r}")
    raise ResCCLangEvalError(f"not an expression: {expr!r}")


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Assign:
    """``id = exp``."""

    target: str
    value: Expr


@dataclass(frozen=True)
class ForLoop:
    """``for id in range(exp+): stat`` — 1 to 3 range arguments."""

    var: str
    range_args: Tuple[Expr, ...]
    body: Tuple["Stmt", ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.range_args) <= 3:
            raise ResCCLangError(
                f"range() takes 1-3 arguments, got {len(self.range_args)}"
            )


@dataclass(frozen=True)
class TransferStmt:
    """``transfer(src, dst, step, chunkId, commType)``."""

    src: Expr
    dst: Expr
    step: Expr
    chunk: Expr
    comm_type: CommType


Stmt = Union[Assign, ForLoop, TransferStmt]


# ----------------------------------------------------------------------
# Module
# ----------------------------------------------------------------------


@dataclass
class Header:
    """The ``ResCCLAlgo(paramList)`` signature.

    Defaults mirror the paper's Table 2 CCL configuration (4 channels,
    16 warps).
    """

    nranks: int
    algo_name: str = "anonymous"
    collective: Collective = Collective.ALLGATHER
    nchannels: int = 4
    nwarps: int = 16
    gpus_per_node: int = 8
    nics_per_node: int = 4

    def __post_init__(self) -> None:
        if self.nranks < 2:
            raise ResCCLangError(f"nRanks must be >= 2, got {self.nranks}")
        if self.nchannels < 1 or self.nwarps < 1:
            raise ResCCLangError("nChannels and nWarps must be positive")


@dataclass
class Module:
    """A parsed ResCCLang program: header plus statement body."""

    header: Header
    body: List[Stmt] = field(default_factory=list)


def walk_statements(body: Sequence[Stmt]):
    """Depth-first iteration over all statements, including loop bodies."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, ForLoop):
            yield from walk_statements(stmt.body)


__all__ = [
    "ResCCLangError",
    "ResCCLangSyntaxError",
    "ResCCLangEvalError",
    "Num",
    "Name",
    "BinOp",
    "Expr",
    "eval_expr",
    "Assign",
    "ForLoop",
    "TransferStmt",
    "Stmt",
    "Header",
    "Module",
    "walk_statements",
]

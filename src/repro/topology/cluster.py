"""Cluster model: ranks, servers, NICs, racks, and rank-to-rank paths.

The model mirrors the testbed of the paper's Table 2:

* ``gpus_per_node`` GPUs per server, fully connected intra-server through
  NVSwitch — each GPU owns one NVLink egress port and one ingress port;
* ``nics_per_node`` NICs per server, with consecutive GPUs sharing a NIC
  ("every two GPUs on the host share the same NIC");
* servers grouped into racks under ToR switches; the Clos aggregation tier
  is non-blocking, so crossing racks costs extra latency but no extra
  bandwidth bottleneck.

A rank-to-rank :class:`Path` lists the *contention edges* a transfer
occupies.  Edges are the resources the fluid-flow runtime arbitrates:

* ``nv:out:<rank>`` / ``nv:in:<rank>`` — the GPU's NVLink egress/ingress
  port, contended when one GPU talks to several local peers at once;
* ``nic:out:<node>:<k>`` / ``nic:in:<node>:<k>`` — a NIC direction,
  contended by every inter-server transfer of the GPUs sharing NIC ``k``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx as nx

from .hardware import GpuProfile, a100_profile


@dataclass(frozen=True)
class Path:
    """The resources and latency of one rank-to-rank transfer route.

    Attributes:
        edges: contention-edge identifiers occupied for the whole transfer.
        latency_us: one-way startup latency (alpha) of the route.
        bottleneck_bandwidth: capacity in bytes/us of the slowest edge.
    """

    edges: Tuple[str, ...]
    latency_us: float
    bottleneck_bandwidth: float

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended alpha + c*beta time for ``nbytes`` on this path."""
        return self.latency_us + nbytes / self.bottleneck_bandwidth


class Cluster:
    """A multi-server GPU cluster with an NVSwitch + Clos RoCE fabric.

    Args:
        nodes: number of servers.
        gpus_per_node: GPUs per server.
        nics_per_node: NICs per server; must divide ``gpus_per_node``.
        profile: hardware constants (defaults to the paper's A100 testbed).
        nodes_per_rack: servers attached to one ToR switch.
    """

    def __init__(
        self,
        nodes: int,
        gpus_per_node: int,
        nics_per_node: int = 0,
        profile: GpuProfile = None,
        nodes_per_rack: int = 2,
    ) -> None:
        if nodes < 1:
            raise ValueError(f"need at least one node, got {nodes}")
        if gpus_per_node < 1:
            raise ValueError(f"need at least one GPU per node, got {gpus_per_node}")
        if nics_per_node == 0:
            # Default to the paper's two-GPUs-per-NIC sharing; fall back to
            # the largest divisor when the GPU count is odd.
            target = max(1, gpus_per_node // 2)
            nics_per_node = next(
                n for n in range(target, 0, -1) if gpus_per_node % n == 0
            )
        if gpus_per_node % nics_per_node != 0:
            raise ValueError(
                f"nics_per_node={nics_per_node} must divide "
                f"gpus_per_node={gpus_per_node}"
            )
        if nodes_per_rack < 1:
            raise ValueError(f"nodes_per_rack must be positive, got {nodes_per_rack}")

        self.nodes = nodes
        self.gpus_per_node = gpus_per_node
        self.nics_per_node = nics_per_node
        self.profile = profile if profile is not None else a100_profile()
        self.nodes_per_rack = nodes_per_rack
        self._edge_capacity: Dict[str, float] = {}
        self._path_cache: Dict[Tuple[int, int], Path] = {}
        self._link_name_cache: Dict[Tuple[int, int], str] = {}
        self._fingerprint: str = ""
        self._build_edges()

    # ------------------------------------------------------------------
    # Basic rank arithmetic
    # ------------------------------------------------------------------

    @property
    def world_size(self) -> int:
        """Total number of ranks (GPUs) in the cluster."""
        return self.nodes * self.gpus_per_node

    @property
    def gpus_per_nic(self) -> int:
        """How many GPUs share each NIC."""
        return self.gpus_per_node // self.nics_per_node

    def ranks(self) -> Iterator[int]:
        """Iterate over all rank ids."""
        return iter(range(self.world_size))

    def node_of(self, rank: int) -> int:
        """Server index hosting ``rank``."""
        self._check_rank(rank)
        return rank // self.gpus_per_node

    def local_index(self, rank: int) -> int:
        """Rank's GPU index within its server."""
        self._check_rank(rank)
        return rank % self.gpus_per_node

    def nic_of(self, rank: int) -> int:
        """NIC index (within the server) that ``rank`` sends/receives on."""
        return self.local_index(rank) // self.gpus_per_nic

    def rack_of(self, rank: int) -> int:
        """Rack (ToR switch) index hosting ``rank``'s server."""
        return self.node_of(rank) // self.nodes_per_rack

    def same_node(self, src: int, dst: int) -> bool:
        """True when both ranks live in the same server."""
        return self.node_of(src) == self.node_of(dst)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range [0, {self.world_size})")

    # ------------------------------------------------------------------
    # Contention edges and routing
    # ------------------------------------------------------------------

    def _build_edges(self) -> None:
        nv_bw = self.profile.nvlink.bandwidth
        nic_bw = self.profile.nic.bandwidth
        for rank in range(self.world_size):
            self._edge_capacity[f"nv:out:{rank}"] = nv_bw
            self._edge_capacity[f"nv:in:{rank}"] = nv_bw
        for node in range(self.nodes):
            for nic in range(self.nics_per_node):
                self._edge_capacity[f"nic:out:{node}:{nic}"] = nic_bw
                self._edge_capacity[f"nic:in:{node}:{nic}"] = nic_bw

    def fingerprint(self) -> str:
        """Stable content hash of everything routing/rates depend on.

        Covers the cluster shape, every hardware-profile constant, and
        the per-edge capacity table — so a :meth:`degraded` clone (whose
        edge capacities differ) hashes differently even though its shape
        is identical.  This is the topology component of the
        compiled-plan cache key (:mod:`repro.core.plancache`) and of the
        tuning-table cell key, both of which sit on the request hot
        path, so the hash is computed once per cluster: edge capacities
        only ever change inside :meth:`degraded`, before the clone
        escapes, never on a cluster a caller already holds.
        """
        if self._fingerprint:
            return self._fingerprint
        payload = {
            "nodes": self.nodes,
            "gpus_per_node": self.gpus_per_node,
            "nics_per_node": self.nics_per_node,
            "nodes_per_rack": self.nodes_per_rack,
            "profile": dataclasses.asdict(self.profile),
            "edges": sorted(self._edge_capacity.items()),
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def edge_capacity(self, edge: str) -> float:
        """Capacity in bytes/us of a contention edge."""
        try:
            return self._edge_capacity[edge]
        except KeyError:
            raise KeyError(f"unknown contention edge {edge!r}") from None

    @property
    def edges(self) -> List[str]:
        """All contention-edge identifiers in the cluster."""
        return list(self._edge_capacity)

    def degraded(self, edges: Iterable[str], factor: float) -> "Cluster":
        """Clone this cluster with ``edges`` derated to ``factor`` capacity.

        Models planning around a failed link: the dead edge is replaced
        by its slow failover path (rerouted hop / host fallback) rather
        than removed, so every route stays valid while recovery policies
        re-plan conservatively.  ``factor`` must be positive — a zero
        capacity would just move the deadlock into the fallback plan.
        """
        if factor <= 0.0:
            raise ValueError(f"degraded factor must be positive, got {factor}")
        clone = Cluster(
            nodes=self.nodes,
            gpus_per_node=self.gpus_per_node,
            nics_per_node=self.nics_per_node,
            profile=self.profile,
            nodes_per_rack=self.nodes_per_rack,
        )
        for edge in edges:
            if edge not in clone._edge_capacity:
                raise KeyError(f"unknown contention edge {edge!r}")
            clone._edge_capacity[edge] *= factor
        return clone

    def path(self, src: int, dst: int) -> Path:
        """Route a transfer from ``src`` to ``dst``.

        Intra-server transfers ride NVSwitch and occupy the source egress
        and destination ingress NVLink ports.  Inter-server transfers
        occupy the source-side NIC egress and destination-side NIC
        ingress; crossing racks adds aggregation-tier latency.
        """
        if src == dst:
            raise ValueError(f"self-transfer on rank {src} has no path")
        key = (src, dst)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached

        if self.same_node(src, dst):
            edges = (f"nv:out:{src}", f"nv:in:{dst}")
            latency = self.profile.nvlink.latency_us
            bottleneck = self.profile.nvlink.bandwidth
        else:
            src_node, dst_node = self.node_of(src), self.node_of(dst)
            edges = (
                f"nic:out:{src_node}:{self.nic_of(src)}",
                f"nic:in:{dst_node}:{self.nic_of(dst)}",
            )
            latency = self.profile.nic.latency_us
            if self.rack_of(src) != self.rack_of(dst):
                latency += self.profile.cross_rack_extra_latency_us
            bottleneck = self.profile.nic.bandwidth

        result = Path(edges=edges, latency_us=latency, bottleneck_bandwidth=bottleneck)
        self._path_cache[key] = result
        return result

    def link_name(self, src: int, dst: int) -> str:
        """A stable identifier for the (directed) src->dst logical link.

        Two tasks share a *communication dependency* (section 3) when their
        transfers resolve to the same bottleneck resource.  For intra-node
        transfers that is the ordered GPU pair; for inter-node transfers it
        is the source NIC direction, because every flow out of that NIC
        shares its line rate.
        """
        cached = self._link_name_cache.get((src, dst))
        if cached is not None:
            return cached
        if self.same_node(src, dst):
            name = f"nvlink:{src}->{dst}"
        else:
            name = (
                f"nic:{self.node_of(src)}:{self.nic_of(src)}->"
                f"{self.node_of(dst)}:{self.nic_of(dst)}"
            )
        self._link_name_cache[(src, dst)] = name
        return name

    # ------------------------------------------------------------------
    # Export for synthesizers
    # ------------------------------------------------------------------

    def to_graph(self) -> "nx.DiGraph":
        """Directed rank-level graph annotated with alpha/beta, for solvers.

        Every ordered rank pair gets an edge whose ``latency`` and
        ``bandwidth`` attributes reflect the route the cluster would use.
        TACCL/TECCL-style synthesizers consume this view.
        """
        import networkx as nx  # deferred: only solver exports need it

        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.world_size))
        for src in range(self.world_size):
            for dst in range(self.world_size):
                if src == dst:
                    continue
                route = self.path(src, dst)
                graph.add_edge(
                    src,
                    dst,
                    latency=route.latency_us,
                    bandwidth=route.bottleneck_bandwidth,
                    intra=self.same_node(src, dst),
                )
        return graph

    def __repr__(self) -> str:
        return (
            f"Cluster(nodes={self.nodes}, gpus_per_node={self.gpus_per_node}, "
            f"nics_per_node={self.nics_per_node}, profile={self.profile.name})"
        )


def single_node(gpus: int = 8, profile: GpuProfile = None) -> Cluster:
    """One server with ``gpus`` GPUs — the paper's 1-server topology."""
    return Cluster(nodes=1, gpus_per_node=gpus, profile=profile)


def multi_node(
    nodes: int, gpus_per_node: int = 8, profile: GpuProfile = None
) -> Cluster:
    """``nodes`` servers of ``gpus_per_node`` GPUs on the Clos fabric."""
    return Cluster(nodes=nodes, gpus_per_node=gpus_per_node, profile=profile)

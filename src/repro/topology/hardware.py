"""Hardware profiles for the simulated GPU clusters.

The paper's testbeds (Table 2 and section 5.2) are:

* an A100 cluster — 8 NVIDIA A100 80GB GPUs per server, 300 GB/s of NVLink
  bandwidth per GPU through 6 NVSwitches, four 200 Gbps NICs per server
  (every two GPUs share a NIC), two-tier Clos fabric;
* a V100 cluster interconnected with 100 Gbps RoCE, used for the
  heterogeneous-hardware experiments (Figure 11).

We capture each of those as a :class:`GpuProfile` with per-link latency and
bandwidth numbers.  Bandwidth is stored in **bytes per microsecond**
(1 GB/s == 1000 B/us) so the discrete-event runtime can work in a single
consistent unit system: *bytes* for sizes and *microseconds* for time.

Latencies follow the paper's measurement in section 4.3 that inter-machine
latency is at least 2.5x intra-machine latency, even at equal bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Multiplicative factor converting GB/s into bytes/us.
BYTES_PER_US_PER_GBPS = 1000.0

#: The paper reports lambda_inter >= 2.5 * lambda_intra (section 4.3).
INTER_INTRA_LATENCY_RATIO = 2.5


def gbps_to_bytes_per_us(gigabytes_per_second: float) -> float:
    """Convert a GB/s figure into the runtime's bytes/us unit."""
    return gigabytes_per_second * BYTES_PER_US_PER_GBPS


def gbits_to_bytes_per_us(gigabits_per_second: float) -> float:
    """Convert a Gbit/s NIC rating into bytes/us (divide by 8 for bytes)."""
    return gigabits_per_second / 8.0 * BYTES_PER_US_PER_GBPS


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link class: propagation latency plus capacity.

    Attributes:
        latency_us: one-way startup latency (the alpha term of the
            alpha-beta cost model in Equation 1).
        bandwidth: capacity in bytes per microsecond (the inverse of the
            beta term).
    """

    latency_us: float
    bandwidth: float

    def transfer_time(self, nbytes: float) -> float:
        """Uncontended time to move ``nbytes`` over this link."""
        return self.latency_us + nbytes / self.bandwidth


@dataclass(frozen=True)
class GpuProfile:
    """Per-GPU-generation hardware constants used to build clusters.

    Attributes:
        name: human-readable profile name.
        nvlink: intra-server GPU<->GPU link class (through NVSwitch).
        nic: inter-server link class (RDMA NIC, per NIC port).
        cross_rack_extra_latency_us: additional latency paid when the
            source and destination servers hang off different ToR switches
            and traffic crosses the aggregation tier.
        reduce_cost_per_byte_us: extra per-byte cost of performing the
            reduction arithmetic in ``recvReduceCopy`` style primitives.
        warp_copy_bandwidth: per-warp data-movement capability in
            bytes/us.  Figure 4 of the paper shows one NIC saturating at
            four default-sized (4-warp) TBs, i.e. 16 warps match NIC line
            rate; a TB with ``w`` warps moves ``w * warp_copy_bandwidth``.
    """

    name: str
    nvlink: LinkSpec
    nic: LinkSpec
    cross_rack_extra_latency_us: float
    reduce_cost_per_byte_us: float
    warp_copy_bandwidth: float

    def tb_copy_bandwidth(self, nwarps: int) -> float:
        """Copy capability of a thread block with ``nwarps`` warps."""
        if nwarps < 1:
            raise ValueError(f"a TB needs at least one warp, got {nwarps}")
        return nwarps * self.warp_copy_bandwidth


def a100_profile() -> GpuProfile:
    """The paper's primary testbed: A100 + NVSwitch + 200 Gbps RoCE."""
    nic_bandwidth = gbits_to_bytes_per_us(200.0)
    return GpuProfile(
        name="A100",
        nvlink=LinkSpec(latency_us=3.0, bandwidth=gbps_to_bytes_per_us(300.0)),
        nic=LinkSpec(
            latency_us=3.0 * INTER_INTRA_LATENCY_RATIO,
            bandwidth=nic_bandwidth,
        ),
        cross_rack_extra_latency_us=3.0,
        reduce_cost_per_byte_us=1.0 / gbps_to_bytes_per_us(600.0),
        warp_copy_bandwidth=nic_bandwidth / 16.0,
    )


def v100_profile() -> GpuProfile:
    """The heterogeneous testbed of Figure 11: V100 + 100 Gbps RoCE."""
    nic_bandwidth = gbits_to_bytes_per_us(100.0)
    return GpuProfile(
        name="V100",
        nvlink=LinkSpec(latency_us=4.0, bandwidth=gbps_to_bytes_per_us(130.0)),
        nic=LinkSpec(
            latency_us=4.0 * INTER_INTRA_LATENCY_RATIO,
            bandwidth=nic_bandwidth,
        ),
        cross_rack_extra_latency_us=4.0,
        reduce_cost_per_byte_us=1.0 / gbps_to_bytes_per_us(300.0),
        warp_copy_bandwidth=nic_bandwidth / 16.0,
    )


_PROFILES = {
    "A100": a100_profile,
    "V100": v100_profile,
}


def profile_by_name(name: str) -> GpuProfile:
    """Look up a built-in profile by name (case-insensitive)."""
    try:
        return _PROFILES[name.upper()]()
    except KeyError:
        known = ", ".join(sorted(_PROFILES))
        raise ValueError(f"unknown GPU profile {name!r}; known: {known}") from None

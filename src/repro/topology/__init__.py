"""Cluster topology substrate: hardware profiles, routing, contention edges."""

from .cluster import Cluster, Path, multi_node, single_node
from .hardware import (
    GpuProfile,
    LinkSpec,
    a100_profile,
    gbits_to_bytes_per_us,
    gbps_to_bytes_per_us,
    profile_by_name,
    v100_profile,
)

__all__ = [
    "Cluster",
    "Path",
    "GpuProfile",
    "LinkSpec",
    "a100_profile",
    "v100_profile",
    "profile_by_name",
    "gbps_to_bytes_per_us",
    "gbits_to_bytes_per_us",
    "single_node",
    "multi_node",
]

"""Result analysis: table rows, per-TB breakdowns, comparison helpers."""

from .timeline import ascii_gantt, to_chrome_trace, write_chrome_trace
from .tables import (
    TBBreakdownEntry,
    TBUtilizationRow,
    compare_bandwidth,
    format_table,
    tb_breakdown,
    worst_idle_tb,
)

__all__ = [
    "ascii_gantt",
    "to_chrome_trace",
    "write_chrome_trace",
    "TBUtilizationRow",
    "TBBreakdownEntry",
    "tb_breakdown",
    "worst_idle_tb",
    "compare_bandwidth",
    "format_table",
]

"""Result analysis: table rows, per-TB breakdowns, comparison helpers."""

from .attribution import (
    BUCKETS,
    AttributionReport,
    Bubble,
    PathSegment,
    attribute,
    critical_path,
)
from .timeline import (
    ascii_gantt,
    partition_trace,
    request_trace_to_chrome,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .tables import (
    TBBreakdownEntry,
    TBUtilizationRow,
    compare_bandwidth,
    format_table,
    tb_breakdown,
    worst_idle_tb,
)
from .verify_delivery import (
    DeliveryError,
    DeliveryReport,
    ResumeTaskMeta,
    verify_delivery,
    verify_stitched,
)

__all__ = [
    "BUCKETS",
    "AttributionReport",
    "Bubble",
    "PathSegment",
    "attribute",
    "critical_path",
    "ascii_gantt",
    "partition_trace",
    "request_trace_to_chrome",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "TBUtilizationRow",
    "TBBreakdownEntry",
    "tb_breakdown",
    "worst_idle_tb",
    "compare_bandwidth",
    "format_table",
    "DeliveryError",
    "DeliveryReport",
    "ResumeTaskMeta",
    "verify_delivery",
    "verify_stitched",
]

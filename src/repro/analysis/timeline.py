"""Execution-timeline rendering: ASCII Gantt charts and Chrome traces.

The simulator can record per-TB activity intervals
(``simulate(plan, record_trace=True)``); this module turns them into

* an ASCII Gantt chart — the quickest way to *see* pipeline bubbles,
  sync blocking, and early release in a terminal;
* a unified Chrome trace-event JSON object — load it at
  ``chrome://tracing`` or in Perfetto for interactive inspection.  Next
  to the per-rank TB lanes the export carries three synthetic processes:
  fault/recovery events (pid 9990), per-link occupancy counter tracks
  built from ``SimReport.link_trace`` (pid 9991), and — when a span
  tracer is passed in — the compile/simulate pipeline spans (pid 9992;
  wall-clock timebase, unlike the simulated-time lanes).

Both renderers share one rank filter (:func:`partition_trace`): TB lanes
are restricted to the requested ranks while global events (fault
timeline, ``rank < 0``) always survive, so the Gantt chart and the
Chrome export of the same invocation agree on what they show.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime.metrics import SimReport, TraceEvent

#: Gantt glyph per activity kind (later entries win on overlap).
_GLYPHS = {
    "wait:sync": "s",
    "wait:data": "w",
    "overhead": "o",
    "recv": "r",
    "send": "#",
}

#: Synthetic Chrome-trace process ids for non-TB tracks.
FAULT_PID = 9990
LINK_PID = 9991
SPAN_PID = 9992
REQUEST_PID = 9993


def _require_trace(report: SimReport) -> None:
    if not report.trace:
        raise ValueError(
            "report has no trace — run simulate(plan, record_trace=True)"
        )


def partition_trace(
    report: SimReport, ranks: Optional[Sequence[int]] = None
) -> Tuple[List[TraceEvent], List[TraceEvent]]:
    """Split the trace into (TB lane events, global events).

    Lane events are per-TB activity intervals, filtered to ``ranks`` when
    given.  Global events — the fault/recovery timeline, anything with
    ``rank < 0`` — are never rank-filtered: a link failure concerns every
    rank the viewer is looking at.
    """
    rank_set = None if ranks is None else set(ranks)
    lanes: List[TraceEvent] = []
    global_events: List[TraceEvent] = []
    for event in report.trace:
        if event.tb_index < 0 or event.rank < 0:
            global_events.append(event)
        elif rank_set is None or event.rank in rank_set:
            lanes.append(event)
    return lanes, global_events


def ascii_gantt(
    report: SimReport,
    width: int = 80,
    ranks: Optional[List[int]] = None,
    max_tbs: int = 24,
) -> str:
    """Render per-TB activity lanes as an ASCII Gantt chart.

    Legend: ``#`` sending, ``r`` receiving, ``o`` control overhead,
    ``w`` waiting on data dependencies, ``s`` sync-blocked, ``.`` idle.
    Fault/recovery events are global, not TB activity; they are listed
    below the lanes rather than drawn into them.
    """
    _require_trace(report)
    horizon = report.completion_time_us
    if horizon <= 0:
        raise ValueError("empty report")
    scale = width / horizon

    lane_events, global_events = partition_trace(report, ranks)
    by_tb: Dict[int, List[TraceEvent]] = defaultdict(list)
    for event in lane_events:
        by_tb[event.tb_index].append(event)

    lines = [
        f"timeline 0 .. {horizon / 1000.0:.2f} ms   "
        "(#=send r=recv o=overhead w=data-wait s=sync-wait .=idle)"
    ]
    stats_by_index = {
        i: stats for i, stats in enumerate(report.tb_stats)
    }
    for tb_index in sorted(by_tb)[:max_tbs]:
        lane = ["."] * width
        for event in by_tb[tb_index]:
            glyph = _GLYPHS.get(event.kind, "?")
            lo = min(width - 1, int(event.start_us * scale))
            hi = min(width, max(lo + 1, int(event.end_us * scale)))
            for column in range(lo, hi):
                lane[column] = glyph
        stats = stats_by_index.get(tb_index)
        label = (
            f"r{stats.rank:<3}TB{stats.tb_index:<3}" if stats else f"tb{tb_index}"
        )
        lines.append(f"  {label} |{''.join(lane)}|")
    if len(by_tb) > max_tbs:
        lines.append(f"  ... {len(by_tb) - max_tbs} more TBs")
    if global_events:
        lines.append(f"  fault/recovery events ({len(global_events)}):")
        for event in global_events[:12]:
            lines.append(
                f"    {event.start_us:>9.1f} .. {event.end_us:<9.1f} us"
                f"  {event.kind}"
            )
        if len(global_events) > 12:
            lines.append(f"    ... {len(global_events) - 12} more")
    if report.trace_dropped:
        lines.append(
            f"  (fault trace ring buffer dropped {report.trace_dropped} "
            "older event(s))"
        )
    return "\n".join(lines)


def to_chrome_trace(
    report: SimReport,
    ranks: Optional[Sequence[int]] = None,
    spans: Optional[List[dict]] = None,
    include_counters: bool = True,
) -> dict:
    """Convert a traced report into a unified Chrome trace-event object.

    Lanes: process = rank, thread = TB index, complete ("X") events in
    simulated microseconds.  Three synthetic processes ride along:

    * pid ``9990`` — fault/detection/recovery events (never
      rank-filtered);
    * pid ``9991`` — one counter ("C") track per link with the number of
      concurrently active flows, from ``SimReport.link_trace``
      (``include_counters=False`` drops them);
    * pid ``9992`` — pipeline spans, when ``spans`` (a list of Chrome
      events, e.g. ``SpanTracer.to_chrome_events()``) is given.  Span
      timestamps are tracer wall-clock, a timebase distinct from the
      simulated-time lanes; Perfetto renders them as a separate process.
    """
    _require_trace(report)
    lane_events, global_events = partition_trace(report, ranks)
    events = []
    for event in lane_events:
        name = event.kind
        if event.task_id >= 0:
            name = f"{event.kind} task {event.task_id} mb {event.mb}"
        events.append(
            {
                "name": name,
                "cat": event.kind,
                "ph": "X",
                "ts": event.start_us,
                "dur": event.duration_us,
                "pid": event.rank,
                "tid": event.tb_index,
                "args": {"task": event.task_id, "mb": event.mb},
            }
        )
    for event in global_events:
        events.append(
            {
                "name": event.kind,
                "cat": "fault",
                "ph": "X",
                "ts": event.start_us,
                # Instantaneous transitions still get a sliver of width
                # so they stay visible (and valid: dur >= 0).
                "dur": max(event.duration_us, 0.001),
                "pid": FAULT_PID,
                "tid": 0,
                "args": {"task": event.task_id, "mb": event.mb},
            }
        )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": rank,
            "args": {"name": f"rank {rank}"},
        }
        for rank in sorted({e.rank for e in lane_events})
    ]
    if global_events:
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": FAULT_PID,
                "args": {"name": "faults"},
            }
        )
    if include_counters and report.link_trace:
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": LINK_PID,
                "args": {"name": "links"},
            }
        )
        for link, ts, active in report.link_trace:
            events.append(
                {
                    "name": f"link {link}",
                    "ph": "C",
                    "ts": ts,
                    "pid": LINK_PID,
                    "args": {"active_flows": active},
                }
            )
    if spans:
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": SPAN_PID,
                "args": {"name": "pipeline (wall clock)"},
            }
        )
        events.extend(spans)
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "plan": report.plan_name,
            "trace_dropped": report.trace_dropped,
        },
    }


def request_trace_to_chrome(trace: dict) -> dict:
    """One stitched service request trace as a Chrome trace-event object.

    Input is the ``/debug/traces/<id>`` payload (see
    :mod:`repro.service.tracing`): top-level segments — admission /
    queue / worker-compute / coalesce-wait / serialize / killed — with
    the worker's pipeline spans nested under ``worker-compute``, all in
    request-relative microseconds.  Events land on pid ``9993``
    (:data:`REQUEST_PID`), the request lane beside the fault (9990),
    link (9991), and pipeline-span (9992) lanes, so a service trace
    opens in Perfetto exactly like a ``resccl profile`` export.
    """
    trace_id = str(trace.get("trace_id", "?"))
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": REQUEST_PID,
            "args": {
                "name": f"service request {trace_id[:12]} "
                f"({trace.get('op', '?')}, {trace.get('status', '?')})"
            },
        }
    ]

    def visit(span: dict) -> None:
        args: Dict[str, object] = dict(span.get("attrs", {}))
        args.update(span.get("counters", {}))
        events.append(
            {
                "name": span["name"],
                "cat": "request",
                "ph": "X",
                "ts": max(0.0, span["start_us"]),
                # Zero-width segments (e.g. queue on an idle pool) keep
                # a sliver so they stay visible and valid (dur >= 0).
                "dur": max(span["duration_us"], 0.001),
                "pid": REQUEST_PID,
                "tid": 0,
                "args": args,
            }
        )
        for child in span.get("children", ()):
            visit(child)

    for segment in trace.get("spans", ()):
        visit(segment)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": trace_id,
            "request_id": trace.get("request_id"),
            "op": trace.get("op"),
            "status": trace.get("status"),
            "total_us": trace.get("total_us"),
        },
    }


def validate_chrome_trace(trace: dict) -> None:
    """Check a trace object against the Chrome trace-event schema.

    Covers the subset this repo emits — "X" complete events with
    ``ts``/``dur``, "C" counter samples, and "M" metadata records — and
    raises :class:`ValueError` on the first malformed entry.  Used by
    tests and the CI profile smoke job to guard the export format.
    """
    if not isinstance(trace, dict):
        raise ValueError(f"trace must be a JSON object, got {type(trace).__name__}")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty list")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        ph = event.get("ph")
        if ph not in ("X", "C", "M", "B", "E", "i"):
            raise ValueError(f"{where}: unsupported ph {ph!r}")
        if "name" not in event:
            raise ValueError(f"{where}: missing name")
        if "pid" not in event or not isinstance(event["pid"], int):
            raise ValueError(f"{where}: pid must be an integer")
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: dur must be a non-negative number")
            if not isinstance(event.get("tid"), int):
                raise ValueError(f"{where}: tid must be an integer")
        if ph == "C" and not isinstance(event.get("args"), dict):
            raise ValueError(f"{where}: counter event needs args")


def write_chrome_trace(
    report: SimReport,
    path: str,
    ranks: Optional[Sequence[int]] = None,
    spans: Optional[List[dict]] = None,
    include_counters: bool = True,
) -> None:
    """Serialize :func:`to_chrome_trace` output to a JSON file."""
    trace = to_chrome_trace(
        report, ranks=ranks, spans=spans, include_counters=include_counters
    )
    with open(path, "w") as handle:
        json.dump(trace, handle)


__all__ = [
    "ascii_gantt",
    "partition_trace",
    "request_trace_to_chrome",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "FAULT_PID",
    "LINK_PID",
    "SPAN_PID",
    "REQUEST_PID",
]

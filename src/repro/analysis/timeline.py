"""Execution-timeline rendering: ASCII Gantt charts and Chrome traces.

The simulator can record per-TB activity intervals
(``simulate(plan, record_trace=True)``); this module turns them into

* an ASCII Gantt chart — the quickest way to *see* pipeline bubbles,
  sync blocking, and early release in a terminal;
* a Chrome trace-event JSON object — load it at ``chrome://tracing`` or
  in Perfetto for interactive inspection.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, List, Optional

from ..runtime.metrics import SimReport, TraceEvent

#: Gantt glyph per activity kind (later entries win on overlap).
_GLYPHS = {
    "wait:sync": "s",
    "wait:data": "w",
    "overhead": "o",
    "recv": "r",
    "send": "#",
}


def _require_trace(report: SimReport) -> None:
    if not report.trace:
        raise ValueError(
            "report has no trace — run simulate(plan, record_trace=True)"
        )


def ascii_gantt(
    report: SimReport,
    width: int = 80,
    ranks: Optional[List[int]] = None,
    max_tbs: int = 24,
) -> str:
    """Render per-TB activity lanes as an ASCII Gantt chart.

    Legend: ``#`` sending, ``r`` receiving, ``o`` control overhead,
    ``w`` waiting on data dependencies, ``s`` sync-blocked, ``.`` idle.
    """
    _require_trace(report)
    horizon = report.completion_time_us
    if horizon <= 0:
        raise ValueError("empty report")
    scale = width / horizon

    by_tb: Dict[int, List[TraceEvent]] = defaultdict(list)
    for event in report.trace:
        if ranks is None or event.rank in ranks:
            by_tb[event.tb_index].append(event)

    lines = [
        f"timeline 0 .. {horizon / 1000.0:.2f} ms   "
        "(#=send r=recv o=overhead w=data-wait s=sync-wait .=idle)"
    ]
    stats_by_index = {
        i: stats for i, stats in enumerate(report.tb_stats)
    }
    for tb_index in sorted(by_tb)[:max_tbs]:
        lane = ["."] * width
        for event in by_tb[tb_index]:
            glyph = _GLYPHS.get(event.kind, "?")
            lo = min(width - 1, int(event.start_us * scale))
            hi = min(width, max(lo + 1, int(event.end_us * scale)))
            for column in range(lo, hi):
                lane[column] = glyph
        stats = stats_by_index.get(tb_index)
        label = (
            f"r{stats.rank:<3}TB{stats.tb_index:<3}" if stats else f"tb{tb_index}"
        )
        lines.append(f"  {label} |{''.join(lane)}|")
    if len(by_tb) > max_tbs:
        lines.append(f"  ... {len(by_tb) - max_tbs} more TBs")
    return "\n".join(lines)


def to_chrome_trace(report: SimReport) -> dict:
    """Convert a traced report into Chrome trace-event format.

    Lanes: process = rank, thread = TB index.  Durations are emitted as
    complete ("X") events in microseconds, directly loadable in
    ``chrome://tracing`` or Perfetto.
    """
    _require_trace(report)
    events = []
    for event in report.trace:
        name = event.kind
        if event.task_id >= 0:
            name = f"{event.kind} task {event.task_id} mb {event.mb}"
        events.append(
            {
                "name": name,
                "cat": event.kind,
                "ph": "X",
                "ts": event.start_us,
                "dur": event.duration_us,
                "pid": event.rank,
                "tid": event.tb_index,
                "args": {"task": event.task_id, "mb": event.mb},
            }
        )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": rank,
            "args": {"name": f"rank {rank}"},
        }
        for rank in sorted({e.rank for e in report.trace})
    ]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"plan": report.plan_name},
    }


def write_chrome_trace(report: SimReport, path: str) -> None:
    """Serialize :func:`to_chrome_trace` output to a JSON file."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(report), handle)


__all__ = ["ascii_gantt", "to_chrome_trace", "write_chrome_trace"]

"""Critical-path attribution over a recorded simulation trace.

Figure 2 of the paper explains *where* a collective's completion time
goes: transferring, control overhead, or blocked in one of the pipeline's
wait states.  This module computes that decomposition programmatically
from ``SimReport.trace``:

* :func:`critical_path` walks backward from the completion instant
  through the per-TB activity intervals, splicing across thread blocks at
  wait boundaries (the producer whose send/recv finished is what released
  the waiter, so *its* activity is the critical work during the wait).
  The returned segments exactly partition ``[0, completion_time_us]``, so
  bucket totals sum to the completion time by construction.
* :func:`attribute` aggregates the path into
  send/recv/overhead/wait:data/wait:sync/idle buckets, per-rank and
  (given the plan's DAG) per-link totals, and flags pipeline bubbles —
  long blocked or idle stretches on the critical path.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..ir.dag import DependencyDAG
from ..runtime.metrics import SimReport, TraceEvent

#: Buckets of the completion-time decomposition, in display order.
BUCKETS = ("send", "recv", "overhead", "wait:data", "wait:sync", "idle")

#: TB activity kinds that can appear on the critical path.
_ACTIVITY_KINDS = frozenset(BUCKETS) - {"idle"}

#: Event kinds whose completion can release a waiting thread block.
_PRODUCER_KINDS = frozenset({"send", "recv"})

#: Slack when matching a producer's end time to a wait's end time, and
#: when testing interval coverage.  The simulator's event queue orders
#: float microsecond timestamps, so exact equality is the common case.
_EPS = 1e-6

#: Producer matching tolerance: a wait is released by an event finishing
#: at (or a rounding error before) the wait's end.
_PRODUCER_EPS = 1e-3


@dataclass(frozen=True)
class PathSegment:
    """One interval of the critical path, attributed to a bucket."""

    tb_index: int
    rank: int
    kind: str
    start_us: float
    end_us: float
    task_id: int = -1
    mb: int = -1

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass(frozen=True)
class Bubble:
    """A long blocked/idle stretch on the critical path."""

    start_us: float
    end_us: float
    rank: int
    tb_index: int
    kind: str

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class AttributionReport:
    """Completion-time decomposition of one traced run."""

    plan_name: str
    completion_time_us: float
    segments: List[PathSegment] = field(default_factory=list)
    buckets: Dict[str, float] = field(default_factory=dict)
    per_rank: Dict[int, Dict[str, float]] = field(default_factory=dict)
    per_link: Dict[str, float] = field(default_factory=dict)
    bubbles: List[Bubble] = field(default_factory=list)

    @property
    def attributed_total_us(self) -> float:
        """Sum over buckets; equals ``completion_time_us`` by construction."""
        return sum(self.buckets.values())

    def share(self, bucket: str) -> float:
        if self.completion_time_us <= 0:
            return 0.0
        return self.buckets.get(bucket, 0.0) / self.completion_time_us

    def render(self) -> str:
        """Human-readable attribution report for the CLI."""
        lines = [
            f"critical path — {self.plan_name}: "
            f"{self.completion_time_us:.1f} us over "
            f"{len(self.segments)} segment(s)"
        ]
        lines.append(f"  {'bucket':<10} {'time (us)':>12} {'share':>8}")
        for bucket in BUCKETS:
            value = self.buckets.get(bucket, 0.0)
            if value <= 0.0:
                continue
            lines.append(
                f"  {bucket:<10} {value:>12.1f} {self.share(bucket):>7.1%}"
            )
        if self.per_link:
            lines.append("  busiest links on the path:")
            ranked = sorted(
                self.per_link.items(), key=lambda kv: -kv[1]
            )[:6]
            for link, value in ranked:
                lines.append(f"    {link:<24} {value:>10.1f} us")
        if self.bubbles:
            lines.append(f"  pipeline bubbles ({len(self.bubbles)}):")
            for bubble in self.bubbles[:8]:
                lines.append(
                    f"    {bubble.start_us:>9.1f} .. {bubble.end_us:<9.1f} us"
                    f"  {bubble.kind:<9} r{bubble.rank} TB{bubble.tb_index}"
                    f"  ({bubble.duration_us:.1f} us)"
                )
            if len(self.bubbles) > 8:
                lines.append(f"    ... {len(self.bubbles) - 8} more")
        else:
            lines.append("  no pipeline bubbles above threshold")
        return "\n".join(lines)


def _activity_events(report: SimReport) -> List[TraceEvent]:
    return [
        e
        for e in report.trace
        if e.tb_index >= 0 and e.kind in _ACTIVITY_KINDS and e.end_us > e.start_us
    ]


def critical_path(report: SimReport) -> List[PathSegment]:
    """Backward-walk the trace into a contiguous critical path.

    The walk keeps an attribution frontier ``(tb, t)`` and repeatedly
    explains the time just before ``t``:

    * the latest event on ``tb`` ending at ``t`` claims ``[start, t]``
      for its kind;
    * a gap before ``t`` becomes an explicit ``idle`` segment;
    * a *wait* interval is spliced: the send/recv on another TB whose
      completion released the wait takes over the frontier, so blocked
      time is charged to the activity that actually gated progress.
      Waits with no matching producer (e.g. the fabric was still moving
      bytes) stay attributed as waits.

    Segments are returned in time order and exactly partition
    ``[0, completion_time_us]``.
    """
    events = _activity_events(report)
    if not events:
        raise ValueError(
            "report has no TB activity trace — run "
            "simulate(plan, record_trace=True)"
        )
    completion = report.completion_time_us
    if completion <= 0:
        raise ValueError("empty report: completion_time_us <= 0")

    by_tb: Dict[int, List[TraceEvent]] = defaultdict(list)
    for event in events:
        by_tb[event.tb_index].append(event)
    starts_by_tb: Dict[int, List[float]] = {}
    for tb_index, tb_events in by_tb.items():
        tb_events.sort(key=lambda e: (e.start_us, e.end_us))
        starts_by_tb[tb_index] = [e.start_us for e in tb_events]

    producers = sorted(
        (e for e in events if e.kind in _PRODUCER_KINDS),
        key=lambda e: e.end_us,
    )
    producer_ends = [e.end_us for e in producers]

    def latest_before(tb: int, t: float) -> Optional[TraceEvent]:
        tb_events = by_tb.get(tb)
        if not tb_events:
            return None
        i = bisect_left(starts_by_tb[tb], t - _EPS) - 1
        return tb_events[i] if i >= 0 else None

    def find_producer(wait: TraceEvent, t: float) -> Optional[TraceEvent]:
        """The send/recv on another TB whose finish released ``wait``."""
        lo = bisect_left(producer_ends, wait.end_us - _PRODUCER_EPS)
        best = None
        for candidate in producers[lo:]:
            if candidate.end_us > wait.end_us + _PRODUCER_EPS:
                break
            if candidate.tb_index == wait.tb_index:
                continue
            if candidate.start_us >= t - _EPS:
                continue  # would not let the frontier progress backward
            # Prefer the producer of the very task the TB blocked on.
            if (
                wait.task_id >= 0
                and candidate.task_id == wait.task_id
                and candidate.mb == wait.mb
            ):
                return candidate
            if best is None:
                best = candidate
        return best

    anchor = max(events, key=lambda e: e.end_us)
    tb = anchor.tb_index
    t = completion
    segments: List[PathSegment] = []
    jumped: set = set()
    guard = 4 * len(events) + 16

    def rank_of(tb_index: int, fallback: int) -> int:
        if 0 <= tb_index < len(report.tb_stats):
            return report.tb_stats[tb_index].rank
        return fallback

    while t > _EPS and guard > 0:
        guard -= 1
        event = latest_before(tb, t)
        if event is None:
            # Nothing earlier on this TB: fall back to the globally
            # latest activity before t, bridging the gap as idle time.
            fallback_event = None
            for other in events:
                if other.start_us < t - _EPS and (
                    fallback_event is None
                    or other.end_us > fallback_event.end_us
                ):
                    fallback_event = other
            if fallback_event is None or fallback_event is event:
                segments.append(
                    PathSegment(tb, rank_of(tb, -1), "idle", 0.0, t)
                )
                t = 0.0
                break
            cut = min(t, fallback_event.end_us)
            if cut < t - _EPS:
                segments.append(
                    PathSegment(tb, rank_of(tb, -1), "idle", cut, t)
                )
            t = cut
            tb = fallback_event.tb_index
            continue
        if event.end_us < t - _EPS:
            segments.append(
                PathSegment(tb, event.rank, "idle", event.end_us, t)
            )
            t = event.end_us
            continue
        if event.kind not in _PRODUCER_KINDS and event.kind.startswith("wait"):
            if id(event) not in jumped:
                producer = find_producer(event, t)
                if producer is not None:
                    jumped.add(id(event))
                    tb = producer.tb_index
                    continue
        seg_start = max(0.0, min(event.start_us, t))
        segments.append(
            PathSegment(
                tb,
                event.rank,
                event.kind,
                seg_start,
                t,
                event.task_id,
                event.mb,
            )
        )
        t = seg_start
    if t > _EPS:
        # Guard tripped (pathological trace): close the partition.
        segments.append(PathSegment(tb, rank_of(tb, -1), "idle", 0.0, t))
    segments.reverse()
    return segments


def attribute(
    report: SimReport,
    dag: Optional[DependencyDAG] = None,
    bubble_threshold_us: Optional[float] = None,
) -> AttributionReport:
    """Decompose a traced run's completion time along its critical path.

    Args:
        report: a ``simulate(plan, record_trace=True)`` report.
        dag: the plan's dependency DAG; enables per-link attribution
            (transfer segments are charged to their task's link).
        bubble_threshold_us: minimum blocked/idle stretch flagged as a
            pipeline bubble; defaults to 2% of the completion time.
    """
    segments = critical_path(report)
    completion = report.completion_time_us
    if bubble_threshold_us is None:
        bubble_threshold_us = max(1.0, 0.02 * completion)

    buckets: Dict[str, float] = {}
    per_rank: Dict[int, Dict[str, float]] = {}
    per_link: Dict[str, float] = {}
    bubbles: List[Bubble] = []
    for segment in segments:
        duration = segment.duration_us
        if duration <= 0:
            continue
        buckets[segment.kind] = buckets.get(segment.kind, 0.0) + duration
        rank_buckets = per_rank.setdefault(segment.rank, {})
        rank_buckets[segment.kind] = (
            rank_buckets.get(segment.kind, 0.0) + duration
        )
        if (
            dag is not None
            and segment.kind in _PRODUCER_KINDS
            and segment.task_id >= 0
        ):
            link = dag.task(segment.task_id).link
            per_link[link] = per_link.get(link, 0.0) + duration
        if (
            segment.kind not in _PRODUCER_KINDS
            and segment.kind != "overhead"
            and duration >= bubble_threshold_us
        ):
            bubbles.append(
                Bubble(
                    start_us=segment.start_us,
                    end_us=segment.end_us,
                    rank=segment.rank,
                    tb_index=segment.tb_index,
                    kind=segment.kind,
                )
            )
    bubbles.sort(key=lambda b: -b.duration_us)
    return AttributionReport(
        plan_name=report.plan_name,
        completion_time_us=completion,
        segments=segments,
        buckets=buckets,
        per_rank=per_rank,
        per_link=per_link,
        bubbles=bubbles,
    )


__all__ = [
    "BUCKETS",
    "PathSegment",
    "Bubble",
    "AttributionReport",
    "critical_path",
    "attribute",
]

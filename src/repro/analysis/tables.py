"""Result aggregation and table formatting for the evaluation harness.

Turns one or more :class:`~repro.runtime.metrics.SimReport` objects into
the rows the paper's tables and figures report: link utilization
(Table 1), per-TB breakdowns (Figures 2 and 12), TB-utilization summary
rows (Table 3), and aligned text tables for benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..runtime.metrics import SimReport


@dataclass
class TBUtilizationRow:
    """One backend's Table 3 row for one algorithm/topology cell."""

    backend: str
    tb_count: int
    tbs_per_rank: int
    comm_time_fraction: float
    avg_idle_fraction: float
    max_idle_fraction: float

    @classmethod
    def from_report(cls, report: SimReport, backend: str = "") -> "TBUtilizationRow":
        return cls(
            backend=backend or report.plan_name.split("/")[0],
            tb_count=report.tb_count(),
            tbs_per_rank=report.max_tbs_per_rank(),
            comm_time_fraction=report.avg_busy_fraction(),
            avg_idle_fraction=report.avg_idle_fraction(),
            max_idle_fraction=report.max_idle_fraction(),
        )

    def cells(self) -> List[str]:
        return [
            self.backend,
            str(self.tbs_per_rank),
            f"{self.comm_time_fraction:.1%}",
            f"{self.avg_idle_fraction:.1%}",
            f"{self.max_idle_fraction:.1%}",
        ]


@dataclass
class TBBreakdownEntry:
    """One TB's Figure 2 / Figure 12 time decomposition."""

    rank: int
    tb_index: int
    label: str
    execution_us: float
    sync_us: float
    data_wait_us: float
    overhead_us: float
    tail_us: float

    @property
    def lifetime_us(self) -> float:
        return (
            self.execution_us
            + self.sync_us
            + self.data_wait_us
            + self.overhead_us
            + self.tail_us
        )

    @property
    def idle_fraction(self) -> float:
        if self.lifetime_us <= 0:
            return 0.0
        return (self.sync_us + self.data_wait_us + self.tail_us) / self.lifetime_us


def tb_breakdown(report: SimReport) -> List[TBBreakdownEntry]:
    """Per-TB time decomposition, including the retained-SM tail.

    Interpreter backends hold every TB until the kernel exits; generated
    kernels release TBs as they finish ("Release" in Figure 12), so the
    tail is zero.
    """
    entries: List[TBBreakdownEntry] = []
    end = report.completion_time_us
    for tb in report.tb_stats:
        tail = 0.0 if report.early_release else max(0.0, end - tb.release_time)
        active_span = tb.release_time
        waits = max(0.0, active_span - tb.busy - tb.overhead)
        # Split measured waits by their recorded causes, scaling to close
        # any rounding gap.
        recorded = tb.sync_wait + tb.data_wait
        if recorded > 0:
            sync = waits * tb.sync_wait / recorded
            data = waits * tb.data_wait / recorded
        else:
            sync, data = waits, 0.0
        entries.append(
            TBBreakdownEntry(
                rank=tb.rank,
                tb_index=tb.tb_index,
                label=tb.label,
                execution_us=tb.busy,
                sync_us=sync,
                data_wait_us=data,
                overhead_us=tb.overhead,
                tail_us=tail,
            )
        )
    return entries


def worst_idle_tb(report: SimReport) -> TBBreakdownEntry:
    """The most-idle TB — the paper's 98.2%-idle extra-channel headline."""
    entries = tb_breakdown(report)
    if not entries:
        raise ValueError("report has no thread blocks")
    return max(entries, key=lambda e: e.idle_fraction)


def compare_bandwidth(
    reports: Dict[str, SimReport], baseline: str
) -> Dict[str, float]:
    """Speedup of each report over the named baseline."""
    if baseline not in reports:
        raise KeyError(f"baseline {baseline!r} not among {sorted(reports)}")
    base = reports[baseline].algo_bandwidth
    if base <= 0:
        raise ValueError(f"baseline {baseline!r} has zero bandwidth")
    return {
        name: report.algo_bandwidth / base for name, report in reports.items()
    }


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]], indent: str = ""
) -> str:
    """Align columns for terminal output (benchmarks print these)."""
    materialized = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return indent + "  ".join(
            str(cell).ljust(widths[i]) for i, cell in enumerate(row)
        )

    lines = [fmt(headers), indent + "  ".join("-" * w for w in widths)]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


__all__ = [
    "TBUtilizationRow",
    "TBBreakdownEntry",
    "tb_breakdown",
    "worst_idle_tb",
    "compare_bandwidth",
    "format_table",
]

"""Semantic delivery verification: exactly-once chunk data flow.

The symbolic engine in :mod:`repro.runtime.memory` tracks *sets* of
contributions, which proves nothing was lost but cannot see a reduction
contribution applied twice (set union is idempotent).  Recovery makes
duplicates a live hazard: a resume plan that retransmits a chunk whose
``recvReduceCopy`` already landed would silently corrupt the reduction.

This module re-executes a plan under **counting semantics**: every
``(rank, chunk, micro-batch)`` slot holds a multiset of contributing
ranks.  A plain ``recv`` *replaces* the destination slot (copy
semantics); a ``recvReduceCopy`` *adds* the payload's counts to it.  The
collective postcondition then demands each expected contributor with
count exactly one — catching loss *and* duplication — and flags any
transfer that streams from a never-written slot.

Two entry points:

* :func:`verify_delivery` — check one :class:`ExecutionPlan` end to end,
  either along a static topological order or along the dynamic
  ``completion_order`` a simulation actually executed.
* :func:`verify_stitched` — check a recovered run: replay the
  checkpointed prefix of the primary plan, then each resume plan's
  executed tasks (interpreted through their :class:`ResumeTaskMeta`
  records, including two-hop relay scratch semantics), and prove the
  stitched whole still meets the postcondition with every instance
  delivered exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ir.task import Collective, CommType
from ..obs.metrics import current_registry
from ..obs.spans import span as obs_span
from ..runtime.plan import ExecutionPlan

#: (rank, chunk, micro-batch) -> {contributing rank: count}.
Slot = Tuple[int, int, int]
State = Dict[Slot, Dict[int, int]]

#: Resume-task kinds (see :class:`ResumeTaskMeta`).
DIRECT = "direct"
RELAY_IN = "relay-in"
RELAY_OUT = "relay-out"


class DeliveryError(RuntimeError):
    """The delivery verifier found a postcondition or data-flow violation."""


@dataclass(frozen=True)
class ResumeTaskMeta:
    """Semantic record of one resume-plan task.

    A resume plan lives in a synthetic chunk-id space (residual instances
    flattened to ``mb * chunks_per_microbatch + chunk``), so its tasks
    cannot be interpreted positionally; each carries the original
    instance it serves and how:

    * ``direct`` — the original transfer rerouted verbatim: apply
      ``op`` from ``src``'s main slot to ``dst``'s main slot.
    * ``relay-in`` — first hop of a two-hop detour around a dead edge:
      copy ``src``'s main slot into a scratch slot at ``relay_rank``
      (never the relay's own main slot, which would corrupt the relay's
      reduction state).
    * ``relay-out`` — second hop: apply the *original* ``op`` from the
      relay scratch slot to ``dst``'s main slot.

    An instance counts as delivered when its ``direct`` or ``relay-out``
    task completes; a completed ``relay-in`` alone leaves the payload
    parked in scratch, unapplied.
    """

    orig_task_id: int
    mb: int
    kind: str
    src: int
    dst: int
    chunk: int
    op: CommType
    relay_rank: int = -1

    @property
    def delivers(self) -> bool:
        return self.kind != RELAY_IN


@dataclass
class DeliveryReport:
    """Outcome of one delivery verification."""

    plan_name: str
    ok: bool
    errors: List[str] = field(default_factory=list)
    applied: int = 0
    checked_slots: int = 0
    microbatches: int = 0
    duplicates: int = 0
    losses: int = 0

    def raise_if_failed(self) -> None:
        if not self.ok:
            shown = self.errors[:20]
            more = len(self.errors) - len(shown)
            tail = f"\n  ... and {more} more" if more > 0 else ""
            raise DeliveryError(
                f"delivery verification failed for {self.plan_name!r} "
                f"({len(self.errors)} violation(s)):\n  "
                + "\n  ".join(shown)
                + tail
            )

    def summary(self) -> str:
        status = "OK" if self.ok else f"FAILED ({len(self.errors)} errors)"
        return (
            f"delivery {status}: {self.applied} transfers applied over "
            f"{self.microbatches} micro-batch(es), "
            f"{self.checked_slots} slots checked"
        )


# ---------------------------------------------------------------------------
# Counting-semantics execution
# ---------------------------------------------------------------------------


def initial_state(
    collective: Collective,
    nranks: int,
    chunks: Sequence[int],
    microbatches: Sequence[int],
) -> State:
    """Pre-collective buffer contents under counting semantics.

    The owner of chunk id ``q`` is ``q % nranks`` — the identity map for
    programs whose chunk space equals the rank count, and the correct
    generalization for backends that slice data across parallel channel
    instances in an extended space (each channel's chunks map back to
    their owning rank modulo ``nranks``).
    """
    state: State = {}
    for mb in microbatches:
        for q in chunks:
            owner = q % nranks
            if collective is Collective.ALLGATHER:
                state[(owner, q, mb)] = {owner: 1}
            else:
                for rank in range(nranks):
                    state[(rank, q, mb)] = {rank: 1}
    return state


def _apply(
    state: State,
    src_slot: Slot,
    dst_slot: Slot,
    op: CommType,
    errors: List[str],
    label: str,
    source: Optional[Dict[int, int]] = None,
) -> None:
    payload = source if source is not None else state.get(src_slot)
    if not payload:
        errors.append(f"{label}: streams from empty slot {src_slot} (loss)")
        return
    if op is CommType.RECV:
        state[dst_slot] = dict(payload)
        return
    dst = state.setdefault(dst_slot, {})
    for contributor, count in payload.items():
        dst[contributor] = dst.get(contributor, 0) + count


def _expected_contributors(
    collective: Collective, nranks: int, rank: int, chunk: int
) -> Optional[Dict[int, int]]:
    """Postcondition for one slot; ``None`` means unconstrained."""
    owner = chunk % nranks
    if collective is Collective.ALLGATHER:
        return {owner: 1}
    if collective is Collective.ALLREDUCE:
        return {r: 1 for r in range(nranks)}
    if collective is Collective.REDUCESCATTER:
        if rank == owner:
            return {r: 1 for r in range(nranks)}
        return None
    raise ValueError(f"unsupported collective {collective}")


def _check_postcondition(
    state: State,
    collective: Collective,
    nranks: int,
    chunks: Sequence[int],
    microbatches: Sequence[int],
    report: DeliveryReport,
) -> None:
    for mb in microbatches:
        for q in chunks:
            for rank in range(nranks):
                expected = _expected_contributors(collective, nranks, rank, q)
                if expected is None:
                    continue
                report.checked_slots += 1
                actual = state.get((rank, q, mb), {})
                for contributor, want in sorted(expected.items()):
                    have = actual.get(contributor, 0)
                    if have == want:
                        continue
                    if have < want:
                        report.losses += 1
                        report.errors.append(
                            f"rank {rank} chunk {q} mb {mb}: contribution "
                            f"of rank {contributor} applied {have}x, "
                            f"expected {want}x (loss)"
                        )
                    else:
                        report.duplicates += 1
                        report.errors.append(
                            f"rank {rank} chunk {q} mb {mb}: contribution "
                            f"of rank {contributor} applied {have}x, "
                            f"expected {want}x (duplicate)"
                        )
                for contributor in sorted(set(actual) - set(expected)):
                    report.errors.append(
                        f"rank {rank} chunk {q} mb {mb}: unexpected "
                        f"contribution from rank {contributor}"
                    )


def _static_order(plan: ExecutionPlan) -> List[Tuple[int, int]]:
    """Per-micro-batch topological replay order for a plan."""
    topo = plan.dag.topological_order()
    return [
        (task_id, mb)
        for mb in range(plan.n_microbatches)
        for task_id in topo
    ]


def _publish(report: DeliveryReport, span) -> None:
    span.set(
        applied=report.applied,
        checked_slots=report.checked_slots,
        errors=len(report.errors),
    )
    registry = current_registry()
    if registry is not None:
        registry.inc("delivery_verifications_total")
        if not report.ok:
            registry.inc("delivery_violations_total", len(report.errors))


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def verify_delivery(
    plan: ExecutionPlan,
    order: Optional[Sequence[Tuple[int, int]]] = None,
    expected_chunks: Optional[Iterable[int]] = None,
) -> DeliveryReport:
    """Symbolically execute ``plan`` and prove its collective postcondition.

    Args:
        plan: any execution plan (ResCCL, MSCCL, NCCL — extended chunk
            spaces are handled via owner-modulo-nranks semantics).
        order: an executed ``(task_id, mb)`` schedule to replay (e.g.
            ``SimReport.completion_order``); defaults to a static
            topological order.  When given, the schedule must also cover
            every instance exactly once.
        expected_chunks: override the verified chunk universe (defaults
            to ``range(plan.chunks_per_microbatch)``).
    """
    with obs_span("recovery_verify", plan=plan.name, mode="plan") as sp:
        program = plan.program
        chunks = (
            sorted(expected_chunks)
            if expected_chunks is not None
            else list(range(plan.chunks_per_microbatch))
        )
        mbs = list(range(plan.n_microbatches))
        report = DeliveryReport(
            plan_name=plan.name, ok=True, microbatches=len(mbs)
        )
        state = initial_state(
            program.collective, program.nranks, chunks, mbs
        )
        schedule = list(order) if order is not None else _static_order(plan)
        if order is not None:
            _check_schedule_coverage(plan, schedule, report)
        for task_id, mb in schedule:
            task = plan.dag.task(task_id)
            _apply(
                state,
                (task.src, task.chunk, mb),
                (task.dst, task.chunk, mb),
                task.op,
                report.errors,
                f"task {task_id} ({task.src}->{task.dst} chunk "
                f"{task.chunk} mb {mb})",
            )
            report.applied += 1
        _check_postcondition(
            state, program.collective, program.nranks, chunks, mbs, report
        )
        report.ok = not report.errors
        _publish(report, sp)
    return report


def _check_schedule_coverage(
    plan: ExecutionPlan,
    schedule: Sequence[Tuple[int, int]],
    report: DeliveryReport,
) -> None:
    seen: Dict[Tuple[int, int], int] = {}
    for pair in schedule:
        seen[pair] = seen.get(pair, 0) + 1
    for pair, count in sorted(seen.items()):
        if count > 1:
            report.errors.append(
                f"instance (task {pair[0]}, mb {pair[1]}) executed "
                f"{count}x in the replayed schedule"
            )
    expected = plan.n_microbatches * len(plan.dag)
    if len(seen) != expected:
        report.errors.append(
            f"replayed schedule covers {len(seen)} instances, plan has "
            f"{expected}"
        )


def verify_stitched(
    plan: ExecutionPlan,
    prefix: Sequence[Tuple[int, int]],
    segments: Sequence[Tuple[Sequence[ResumeTaskMeta], Sequence[int]]],
    expected_chunks: Optional[Iterable[int]] = None,
) -> DeliveryReport:
    """Verify a checkpoint + resume-plan(s) execution as one collective.

    Args:
        plan: the primary (failed) plan.
        prefix: the checkpointed ``(task_id, mb)`` completion log of the
            primary attempt, in execution order.
        segments: one entry per resume plan actually run, in order: the
            resume plan's per-task :class:`ResumeTaskMeta` list and the
            resume task ids in the order they completed.  All but the
            last segment may be partial (a later fault cut them short).
        expected_chunks: as in :func:`verify_delivery`.
    """
    with obs_span("recovery_verify", plan=plan.name, mode="stitched") as sp:
        program = plan.program
        chunks = (
            sorted(expected_chunks)
            if expected_chunks is not None
            else list(range(plan.chunks_per_microbatch))
        )
        mbs = list(range(plan.n_microbatches))
        report = DeliveryReport(
            plan_name=f"{plan.name}+resume", ok=True, microbatches=len(mbs)
        )
        state = initial_state(
            program.collective, program.nranks, chunks, mbs
        )
        delivered: Dict[Tuple[int, int], int] = {}

        # Primary-attempt prefix: the completion log is closed under
        # predecessors, so replaying it in order is a valid execution.
        for task_id, mb in prefix:
            task = plan.dag.task(task_id)
            _apply(
                state,
                (task.src, task.chunk, mb),
                (task.dst, task.chunk, mb),
                task.op,
                report.errors,
                f"prefix task {task_id} mb {mb}",
            )
            report.applied += 1
            delivered[(task_id, mb)] = delivered.get((task_id, mb), 0) + 1

        # Resume segments: relay hops go through per-(relay, chunk, mb)
        # scratch slots so relaying never disturbs the relay rank's own
        # reduction state.
        scratch: Dict[Slot, Dict[int, int]] = {}
        for seg_index, (metas, completed) in enumerate(segments):
            for resume_task_id in completed:
                meta = metas[resume_task_id]
                label = (
                    f"resume[{seg_index}] task {resume_task_id} "
                    f"({meta.kind} for task {meta.orig_task_id} mb {meta.mb})"
                )
                main_src = (meta.src, meta.chunk, meta.mb)
                main_dst = (meta.dst, meta.chunk, meta.mb)
                if meta.kind == RELAY_IN:
                    payload = state.get(main_src)
                    if not payload:
                        report.errors.append(
                            f"{label}: streams from empty slot {main_src} "
                            f"(loss)"
                        )
                    else:
                        scratch[(meta.relay_rank, meta.chunk, meta.mb)] = (
                            dict(payload)
                        )
                elif meta.kind == RELAY_OUT:
                    key = (meta.relay_rank, meta.chunk, meta.mb)
                    payload = scratch.pop(key, None)
                    if payload is None:
                        report.errors.append(
                            f"{label}: relay scratch {key} empty — "
                            f"relay-out completed before relay-in"
                        )
                    else:
                        _apply(
                            state, main_src, main_dst, meta.op,
                            report.errors, label, source=payload,
                        )
                else:
                    _apply(
                        state, main_src, main_dst, meta.op,
                        report.errors, label,
                    )
                report.applied += 1
                if meta.delivers:
                    key2 = (meta.orig_task_id, meta.mb)
                    delivered[key2] = delivered.get(key2, 0) + 1

        # Exactly-once delivery over the stitched whole.
        for (task_id, mb), count in sorted(delivered.items()):
            if count > 1:
                report.duplicates += 1
                report.errors.append(
                    f"instance (task {task_id}, mb {mb}) delivered "
                    f"{count}x across checkpoint and resume plans"
                )
        expected_instances = plan.n_microbatches * len(plan.dag)
        if len(delivered) != expected_instances:
            missing = expected_instances - len(delivered)
            report.losses += abs(missing)
            report.errors.append(
                f"stitched execution delivered {len(delivered)} of "
                f"{expected_instances} instances"
            )

        _check_postcondition(
            state, program.collective, program.nranks, chunks, mbs, report
        )
        report.ok = not report.errors
        _publish(report, sp)
    return report


__all__ = [
    "DIRECT",
    "RELAY_IN",
    "RELAY_OUT",
    "DeliveryError",
    "DeliveryReport",
    "ResumeTaskMeta",
    "initial_state",
    "verify_delivery",
    "verify_stitched",
]

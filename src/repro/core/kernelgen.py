"""Lightweight kernel generation (section 4.5).

ResCCL lowers the scheduled primitive pipeline into directly executable
kernels instead of interpreting the algorithm at runtime.  The paradigm
has three dimensions:

* **Rank dimension** — the complete primitive set each GPU executes
  (one generated kernel per rank);
* **TB dimension** — the primitives assigned to each thread block (one
  ``switch`` arm per TB);
* **Pipeline dimension** — within a TB, primitives grouped by pipeline
  index, each cycling through every micro-batch invocation (task-level
  execution: ``for task in pipeline order: for mb in micro-batches``).

:func:`lower_to_programs` produces the simulator-executable form;
:func:`render_kernel_source` emits a human-readable CUDA-style listing of
the same kernel, used by the examples and documentation.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.dag import DependencyDAG
from ..ir.primitives import PrimKind
from ..ir.task import CommType
from ..obs.spans import span as obs_span
from ..runtime.plan import Invocation, Side, TBProgram
from .tballoc import TBAssignment


def lower_to_programs(
    assignments: List[TBAssignment],
    n_microbatches: int,
    nwarps: int,
) -> List[TBProgram]:
    """Lower TB assignments into task-level invocation programs."""
    with obs_span("kernelgen") as sp:
        programs: List[TBProgram] = []
        per_rank: Dict[int, int] = {}
        for assignment in assignments:
            invocations = [
                Invocation(task_id=task_id, side=side, mb=mb)
                for task_id, side in assignment.ordered_sides()
                for mb in range(n_microbatches)
            ]
            index = per_rank.get(assignment.rank, 0)
            per_rank[assignment.rank] = index + 1
            programs.append(
                TBProgram(
                    rank=assignment.rank,
                    tb_index=index,
                    invocations=invocations,
                    nwarps=nwarps,
                    label=assignment.label,
                )
            )
        sp.set(
            tb_programs=len(programs),
            invocations=sum(len(p.invocations) for p in programs),
        )
    return programs


def _primitive_name(side: Side, op: CommType) -> str:
    if side is Side.SEND:
        return PrimKind.SEND.value
    if op is CommType.RRC:
        return PrimKind.RECV_REDUCE_COPY.value
    return PrimKind.RECV.value


def render_kernel_source(
    rank: int,
    assignments: List[TBAssignment],
    dag: DependencyDAG,
    n_microbatches: int,
    algo_name: str = "algo",
) -> str:
    """CUDA-style listing of one rank's generated kernel.

    The listing makes the three generation dimensions visible: the kernel
    is the rank dimension, each ``case`` arm is a TB, and each loop nest
    is one pipeline-dimension entry cycling through its micro-batches.
    """
    rank_tbs = [a for a in assignments if a.rank == rank]
    lines = [
        f"// ResCCL generated kernel — {algo_name}, rank {rank}",
        "// Direct execution: no runtime interpreter, one-time pipeline load.",
        f"__global__ void resccl_{algo_name.replace('-', '_')}_r{rank}"
        "(ResCCLComm *comm) {",
        "  load_pipeline(comm);  // t_Load, paid once",
        "  switch (blockIdx.x) {",
    ]
    for tb_index, assignment in enumerate(rank_tbs):
        lines.append(f"  case {tb_index}:  // {assignment.label}")
        for pipeline_index, (task_id, side) in enumerate(
            assignment.ordered_sides()
        ):
            task = dag.task(task_id)
            prim = _primitive_name(side, task.op)
            peer = task.dst if side is Side.SEND else task.src
            lines.append(
                f"    // pipeline {pipeline_index}: task {task_id} "
                f"chunk {task.chunk} ({task.link})"
            )
            lines.append(
                f"    for (int mb = 0; mb < {n_microbatches}; ++mb)"
            )
            lines.append(
                f"      {prim}(comm, /*peer=*/{peer}, "
                f"/*chunk=*/{task.chunk}, mb);"
            )
        lines.append("    break;")
    lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


__all__ = ["lower_to_programs", "render_kernel_source"]

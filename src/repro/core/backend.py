"""The ResCCL backend facade: compile once, plan and execute collectives.

Usage::

    backend = ResCCLBackend()
    plan = backend.plan(cluster, hm_allreduce(2, 8), buffer_bytes=1 << 30)
    report = simulate(plan)

The backend combines the paper's three techniques: HPDS primitive-level
scheduling (section 4.3), state-based TB allocation (section 4.4), and
lightweight generated kernels (section 4.5, kernel mode — interpreter
mode is available for the Figure 3 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..lang.builder import AlgoProgram
from ..obs.spans import span as obs_span
from ..runtime.plan import (
    ExecMode,
    ExecutionPlan,
    SimConfig,
    plan_microbatches,
)
from ..topology import Cluster
from .compiler import CompileResult, ResCCLCompiler
from .kernelgen import lower_to_programs
from .plancache import get_cache
from .tballoc import allocate_tbs


@dataclass
class ResCCLBackend:
    """Resource-efficient scheduling backend (the paper's contribution).

    Args:
        scheduler: ``"hpds"`` or ``"rr"`` (ablation).
        nwarps: warps per generated TB (Table 2: 16).
        mode: ``ExecMode.KERNEL`` for generated kernels (default) or
            ``ExecMode.INTERPRETER`` for the Figure 3 ablation.
        max_microbatches: cap on micro-batch count per plan.
        config: runtime constants override.
        indexed_schedule: run the compiler's indexed cold-compile path
            (default); ``False`` selects the reference implementations.
            Outputs are bit-identical, so plans do not depend on it.
        target_chunk_kb: target transfer-chunk size for micro-batch
            planning; ``None`` keeps the paper's 1 MB (Table 2).
        tb_allowance: cap on the pipelining allowance handed to TB
            allocation; ``None`` keeps the default (the plan's own
            micro-batch count).
        use_tuning: consult the installed tuning table
            (:func:`repro.tuning.get_table`) at plan time.  With no
            table installed — the default — planning is bit-identical
            to the untuned path.
    """

    scheduler: str = "hpds"
    nwarps: int = 16
    mode: ExecMode = ExecMode.KERNEL
    max_microbatches: int = 32
    config: Optional[SimConfig] = None
    indexed_schedule: bool = True
    target_chunk_kb: Optional[int] = None
    tb_allowance: Optional[int] = None
    use_tuning: bool = True

    name = "ResCCL"

    def __post_init__(self) -> None:
        self._compiler = ResCCLCompiler(
            scheduler=self.scheduler,
            indexed_schedule=self.indexed_schedule,
        )

    def compile(
        self, algorithm: Union[str, AlgoProgram], cluster: Cluster
    ) -> CompileResult:
        """Compile an algorithm for a cluster through the shared plan cache.

        Memoization is content-addressed (``repro.core.plancache``): the
        key covers the DSL source, the cluster fingerprint, and this
        backend's scheduler, so two backends compiling the same
        algorithm on equivalent clusters share one ``CompileResult``.
        """
        return get_cache().compile(self._compiler, algorithm, cluster)

    def plan(
        self,
        cluster: Cluster,
        program: Union[str, AlgoProgram],
        buffer_bytes: float,
    ) -> ExecutionPlan:
        """Build the execution plan for one collective call.

        TB allocation is finalized here rather than at compile time: the
        micro-batch count of this call sets the pipelining allowance of
        the state-based merge (a connection keeps streaming micro-batches
        past its static window, so windows closer than one pipeline depth
        are not truly disjoint).

        When a tuning table is installed (``resccl tune`` +
        :func:`repro.tuning.configure_tuning`) and covers this
        ``(collective, size, topology)`` cell, the winning plan source
        and knobs replace the requested ones — the autotuned plan is
        served at cache-hit speed, with no search on this path.  With
        no table installed the untuned path below runs unchanged.
        """
        tuned = self._tuned_lookup(program, cluster, buffer_bytes)
        if tuned is not None:
            program, scheduler, chunk_kb, max_mb, allowance = tuned
        else:
            scheduler = self.scheduler
            chunk_kb = self.target_chunk_kb
            max_mb = self.max_microbatches
            allowance = self.tb_allowance
        with obs_span("plan", backend=self.name) as sp:
            if scheduler == self.scheduler:
                compiled = self.compile(program, cluster)
            else:
                compiled = get_cache().compile(
                    ResCCLCompiler(
                        scheduler=scheduler,
                        indexed_schedule=self.indexed_schedule,
                    ),
                    program,
                    cluster,
                )
            if chunk_kb is None:
                n_mb, chunk_bytes = plan_microbatches(
                    buffer_bytes,
                    compiled.program.nchunks,
                    max_microbatches=max_mb,
                )
            else:
                n_mb, chunk_bytes = plan_microbatches(
                    buffer_bytes,
                    compiled.program.nchunks,
                    target_chunk_bytes=chunk_kb * 1024.0,
                    max_microbatches=max_mb,
                )
            effective_allowance = (
                n_mb if allowance is None
                else max(1, min(allowance, n_mb))
            )

            def lower():
                assignments = allocate_tbs(
                    compiled.dag,
                    compiled.pipeline,
                    pipelining_allowance=effective_allowance,
                    indexed=self.indexed_schedule,
                )
                return lower_to_programs(
                    assignments, n_mb, nwarps=self.nwarps
                )

            # Repeat calls with the same compile + knobs (the serving
            # hot path) reuse the lowered programs instead of paying TB
            # allocation + lowering again.
            tb_programs = get_cache().lowered(
                compiled.cache_key,
                n_mb,
                effective_allowance,
                self.indexed_schedule,
                self.nwarps,
                build=lower,
            )
            sp.set(
                n_microbatches=n_mb,
                tbs=len(tb_programs),
                tuned=tuned is not None,
            )
        return ExecutionPlan(
            name=f"ResCCL/{compiled.program.name}",
            cluster=cluster,
            program=compiled.program,
            dag=compiled.dag,
            n_microbatches=n_mb,
            chunk_bytes=chunk_bytes,
            tb_programs=tb_programs,
            mode=self.mode,
            config=self.config or SimConfig(),
        )

    def _tuned_lookup(self, program, cluster: Cluster, buffer_bytes: float):
        """The tuned (program, knobs) for this call, or ``None``.

        Misses are free of side effects beyond a counter bump; with no
        table installed the lookup short-circuits before touching the
        tuning layer's state at all, keeping the untuned path
        bit-identical to a build without :mod:`repro.tuning`.
        """
        if not self.use_tuning or not isinstance(program, AlgoProgram):
            return None
        from ..tuning.table import get_table

        table = get_table()
        if table is None:
            return None
        config = table.lookup(
            program.collective.value, buffer_bytes, cluster
        )
        if config is None:
            return None
        return (
            table.resolve_program(config, cluster),
            config.scheduler,
            config.chunk_kb,
            config.max_microbatches,
            config.tb_allowance,
        )


__all__ = ["ResCCLBackend"]

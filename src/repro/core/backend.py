"""The ResCCL backend facade: compile once, plan and execute collectives.

Usage::

    backend = ResCCLBackend()
    plan = backend.plan(cluster, hm_allreduce(2, 8), buffer_bytes=1 << 30)
    report = simulate(plan)

The backend combines the paper's three techniques: HPDS primitive-level
scheduling (section 4.3), state-based TB allocation (section 4.4), and
lightweight generated kernels (section 4.5, kernel mode — interpreter
mode is available for the Figure 3 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..lang.builder import AlgoProgram
from ..obs.spans import span as obs_span
from ..runtime.plan import (
    ExecMode,
    ExecutionPlan,
    SimConfig,
    plan_microbatches,
)
from ..topology import Cluster
from .compiler import CompileResult, ResCCLCompiler
from .kernelgen import lower_to_programs
from .plancache import get_cache
from .tballoc import allocate_tbs


@dataclass
class ResCCLBackend:
    """Resource-efficient scheduling backend (the paper's contribution).

    Args:
        scheduler: ``"hpds"`` or ``"rr"`` (ablation).
        nwarps: warps per generated TB (Table 2: 16).
        mode: ``ExecMode.KERNEL`` for generated kernels (default) or
            ``ExecMode.INTERPRETER`` for the Figure 3 ablation.
        max_microbatches: cap on micro-batch count per plan.
        config: runtime constants override.
        indexed_schedule: run the compiler's indexed cold-compile path
            (default); ``False`` selects the reference implementations.
            Outputs are bit-identical, so plans do not depend on it.
    """

    scheduler: str = "hpds"
    nwarps: int = 16
    mode: ExecMode = ExecMode.KERNEL
    max_microbatches: int = 32
    config: Optional[SimConfig] = None
    indexed_schedule: bool = True

    name = "ResCCL"

    def __post_init__(self) -> None:
        self._compiler = ResCCLCompiler(
            scheduler=self.scheduler,
            indexed_schedule=self.indexed_schedule,
        )

    def compile(
        self, algorithm: Union[str, AlgoProgram], cluster: Cluster
    ) -> CompileResult:
        """Compile an algorithm for a cluster through the shared plan cache.

        Memoization is content-addressed (``repro.core.plancache``): the
        key covers the DSL source, the cluster fingerprint, and this
        backend's scheduler, so two backends compiling the same
        algorithm on equivalent clusters share one ``CompileResult``.
        """
        return get_cache().compile(self._compiler, algorithm, cluster)

    def plan(
        self,
        cluster: Cluster,
        program: Union[str, AlgoProgram],
        buffer_bytes: float,
    ) -> ExecutionPlan:
        """Build the execution plan for one collective call.

        TB allocation is finalized here rather than at compile time: the
        micro-batch count of this call sets the pipelining allowance of
        the state-based merge (a connection keeps streaming micro-batches
        past its static window, so windows closer than one pipeline depth
        are not truly disjoint).
        """
        with obs_span("plan", backend=self.name) as sp:
            compiled = self.compile(program, cluster)
            n_mb, chunk_bytes = plan_microbatches(
                buffer_bytes,
                compiled.program.nchunks,
                max_microbatches=self.max_microbatches,
            )
            assignments = allocate_tbs(
                compiled.dag,
                compiled.pipeline,
                pipelining_allowance=n_mb,
                indexed=self.indexed_schedule,
            )
            tb_programs = lower_to_programs(
                assignments, n_mb, nwarps=self.nwarps
            )
            sp.set(n_microbatches=n_mb, tbs=len(tb_programs))
        return ExecutionPlan(
            name=f"ResCCL/{compiled.program.name}",
            cluster=cluster,
            program=compiled.program,
            dag=compiled.dag,
            n_microbatches=n_mb,
            chunk_bytes=chunk_bytes,
            tb_programs=tb_programs,
            mode=self.mode,
            config=self.config or SimConfig(),
        )


__all__ = ["ResCCLBackend"]

"""Pipeline structures produced by primitive-level scheduling (section 4.3).

A **sub-pipeline** is a set of transmission tasks that simultaneously
satisfy both dependency kinds: none has an unscheduled data-dependency
predecessor, and no two share a communication link.  The **global
pipeline** concatenates sub-pipelines; a task's sub-pipeline index is its
position in the execution wavefront — under task-level execution,
micro-batches of consecutive sub-pipelines overlap, masking
data-dependency bubbles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..ir.dag import DependencyDAG


@dataclass
class SubPipeline:
    """One scheduling wavefront: link-disjoint, dependency-ready tasks."""

    index: int
    task_ids: List[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.task_ids)


@dataclass
class GlobalPipeline:
    """The scheduler's output ``Pr``: ordered sub-pipelines covering the DAG."""

    sub_pipelines: List[SubPipeline] = field(default_factory=list)
    scheduler: str = ""

    def __post_init__(self) -> None:
        self._position: Dict[int, int] = {}
        self._order: Dict[int, tuple] = {}
        for sp in self.sub_pipelines:
            for slot, task_id in enumerate(sp.task_ids):
                self._position[task_id] = sp.index
                self._order[task_id] = (sp.index, slot)

    def position(self, task_id: int) -> int:
        """Sub-pipeline index of a task (its wavefront position)."""
        return self._position[task_id]

    def order_key(self, task_id: int) -> tuple:
        """Total scheduling order: (sub-pipeline index, slot within it)."""
        return self._order[task_id]

    @property
    def depth(self) -> int:
        """Number of sub-pipelines — the pipeline-fill length."""
        return len(self.sub_pipelines)

    @property
    def task_count(self) -> int:
        return len(self._position)

    def ordered_task_ids(self) -> List[int]:
        """All tasks in (sub-pipeline, insertion) order."""
        return [tid for sp in self.sub_pipelines for tid in sp.task_ids]

    # ------------------------------------------------------------------
    # Invariant checks (used by the test suite and the compiler)
    # ------------------------------------------------------------------

    def check_complete(self, dag: DependencyDAG) -> None:
        """Every task scheduled exactly once."""
        scheduled = self.ordered_task_ids()
        if len(scheduled) != len(set(scheduled)):
            raise ValueError("a task appears in more than one sub-pipeline")
        missing = {t.task_id for t in dag.tasks} - set(scheduled)
        if missing:
            raise ValueError(
                f"{len(missing)} task(s) never scheduled, e.g. "
                f"{sorted(missing)[:5]}"
            )

    def check_dependencies(self, dag: DependencyDAG) -> None:
        """Data deps respect the scheduling order.

        A producer must be scheduled strictly before its consumer — either
        in an earlier sub-pipeline or earlier within the same sub-pipeline
        (one sub-pipeline may pack a multi-stage chain, Figure 5(c)).
        """
        order = self._order
        for producer, consumers in dag.succs.items():
            producer_key = order[producer]
            for consumer in consumers:
                if producer_key >= order[consumer]:
                    raise ValueError(
                        f"task {consumer} at {order[consumer]} depends "
                        f"on task {producer} scheduled later/equal at "
                        f"{producer_key}"
                    )

    def check_comm_conflicts(self, dag: DependencyDAG) -> None:
        """No two tasks of one sub-pipeline share a communication link."""
        tasks = dag.tasks
        for sp in self.sub_pipelines:
            links: Set[str] = set()
            for task_id in sp.task_ids:
                link = tasks[task_id].link
                if link in links:
                    raise ValueError(
                        f"sub-pipeline {sp.index} schedules two tasks on "
                        f"link {link}"
                    )
                links.add(link)

    def check_all(self, dag: DependencyDAG) -> None:
        """Run every pipeline invariant check."""
        self.check_complete(dag)
        self.check_dependencies(dag)
        self.check_comm_conflicts(dag)


__all__ = ["SubPipeline", "GlobalPipeline"]

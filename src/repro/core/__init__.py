"""ResCCL core: HPDS scheduling, flexible TB allocation, kernel generation."""

from .backend import ResCCLBackend
from .compiler import (
    CompileResult,
    ResCCLCompiler,
    SCHEDULERS,
    compile_residual,
)
from .hpds import hpds_schedule
from .kernelgen import lower_to_programs, render_kernel_source
from .pipeline import GlobalPipeline, SubPipeline
from .plancache import (
    CacheStats,
    PlanCache,
    configure as configure_plan_cache,
    get_cache as get_plan_cache,
)
from .rr import rr_schedule
from .tballoc import (
    EndpointGroup,
    TBAssignment,
    allocate_tbs,
    build_endpoint_groups,
    connection_endpoint_count,
    timeline_slots,
)

__all__ = [
    "ResCCLBackend",
    "ResCCLCompiler",
    "CompileResult",
    "SCHEDULERS",
    "compile_residual",
    "CacheStats",
    "PlanCache",
    "configure_plan_cache",
    "get_plan_cache",
    "hpds_schedule",
    "rr_schedule",
    "GlobalPipeline",
    "SubPipeline",
    "EndpointGroup",
    "TBAssignment",
    "allocate_tbs",
    "build_endpoint_groups",
    "connection_endpoint_count",
    "timeline_slots",
    "lower_to_programs",
    "render_kernel_source",
]

"""Round-robin scheduling baseline (the Figure 10(b) comparison).

The paper's ablation baseline: "traverse each chunk's DAG in ascending
chunk-ID order, visit the chunks in a circular queue, and schedule them
in that same immutable sequence".  Each sub-pipeline is built with a
single fixed-order pass over the chunks — no priority adaptation, no
re-visiting — which under-fills wavefronts and unbalances chunk progress
relative to HPDS.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.dag import DependencyDAG
from .pipeline import GlobalPipeline, SubPipeline


def rr_schedule(dag: DependencyDAG) -> GlobalPipeline:
    """Round-robin counterpart of :func:`~repro.core.hpds.hpds_schedule`."""
    dag.topological_order()  # raises CyclicDependencyError on bad input

    remaining: Set[int] = {t.task_id for t in dag.tasks}
    unscheduled_preds: Dict[int, int] = {
        t.task_id: len(dag.preds[t.task_id]) for t in dag.tasks
    }
    ready: Set[int] = {tid for tid, n in unscheduled_preds.items() if n == 0}

    chunks = sorted(c for c, members in dag.chunk_tasks.items() if members)
    chunk_remaining: Dict[int, List[int]] = {
        c: list(dag.chunk_tasks[c]) for c in chunks
    }
    cursor = 0  # circular-queue position, persists across sub-pipelines

    sub_pipelines: List[SubPipeline] = []
    stalls = 0
    while remaining:
        # One circular-queue visit schedules one chunk's currently
        # eligible tasks as one sub-pipeline — the fixed, priority-free
        # sequence of the paper's RR baseline.  Chunks with nothing
        # eligible at their turn are skipped, never reordered.
        chunk = chunks[cursor % len(chunks)]
        cursor += 1
        node_list: List[int] = []
        used_links: Set[str] = set()
        for task_id in chunk_remaining[chunk]:
            if task_id not in ready:
                continue
            link = dag.task(task_id).link
            if link in used_links:
                continue
            node_list.append(task_id)
            used_links.add(link)
        if not node_list:
            stalls += 1
            if stalls > len(chunks):
                raise RuntimeError(
                    "round-robin made no progress — inconsistent DAG state "
                    f"with {len(remaining)} task(s) remaining"
                )
            continue
        stalls = 0
        current = SubPipeline(
            index=len(sub_pipelines), task_ids=list(node_list)
        )
        picked = set(node_list)
        chunk_remaining[chunk] = [
            t for t in chunk_remaining[chunk] if t not in picked
        ]
        remaining.difference_update(picked)
        for task_id in node_list:
            ready.discard(task_id)
            for succ in dag.succs[task_id]:
                unscheduled_preds[succ] -= 1
                if unscheduled_preds[succ] == 0:
                    ready.add(succ)
        sub_pipelines.append(current)

    return GlobalPipeline(sub_pipelines=sub_pipelines, scheduler="rr")


__all__ = ["rr_schedule"]

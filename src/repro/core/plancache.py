"""Content-addressed cache of compiled execution pipelines (GC3).

Every sweep point, chaos-corpus cell, and replan retry re-enters
:meth:`~repro.core.compiler.ResCCLCompiler.compile` — usually with the
*same* algorithm on the *same* fabric.  This module memoizes the
compiler behind a content hash so compilation is amortized across
executions:

* **Key** — SHA-256 over the ResCCLang source text (built programs are
  serialized through :meth:`AlgoProgram.to_source`, which round-trips
  through the parser), the cluster's :meth:`~repro.topology.Cluster.
  fingerprint` (shape + hardware constants + per-edge capacities, so a
  degraded fabric never aliases a healthy one), the scheduler name, the
  validation flag, and :data:`CACHE_FORMAT_VERSION`.
* **In-process tier** — an LRU of :class:`CompileResult` objects.
  Results are treated as immutable by every caller (TB allocation at
  plan time re-derives assignments from the cached DAG + pipeline).
* **On-disk tier** — opt-in (``--cache-dir``, the ``RESCCL_CACHE_DIR``
  environment variable, or :func:`configure`): one pickle per key under
  the cache directory, written atomically.  A version bump or an unknown
  key changes the digest (and so the filename), so stale entries are
  simply never read again.  A *corrupt* entry — truncated, unpicklable,
  or failing the embedded version/key self-check — is quarantined to
  ``<key>.corrupt`` on first read so it is not re-parsed on every miss
  (multi-process daemons share this tier as their L2), counted in
  ``compile_cache_corrupt_total``, and the compile proceeds as a miss.
* **Front-end tier** — ``(source, topology, validate)`` →
  ``(program, DAG)``, so recompiling the same algorithm under a
  different scheduler (the Figure 10(b) HPDS-vs-RR sweeps) reuses
  parsing and analysis.  :func:`~repro.core.compiler.compile_residual`
  is the cache-bypassing phase-3 entry: it is handed an already-built
  residual DAG, so it reuses the front end by construction and never
  re-parses.

Hits and misses are published to the ambient metrics registry
(``compile_cache_{hits,misses}_total``) and tracked on
:class:`CacheStats` for the benchmarks and ``resccl profile``.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

try:  # pragma: no cover - present on every supported platform
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from ..obs.metrics import current_registry

#: Bump whenever CompileResult (or anything reachable from it) changes
#: shape — stale on-disk entries are then invisible, not corrupt.
#: v2: CompileResult grew ``cache_key`` (the lowered-tier memo anchor).
CACHE_FORMAT_VERSION = 2

#: Default in-process LRU capacity (compiled pipelines are small
#: relative to a simulation's working set).
DEFAULT_CAPACITY = 128


def default_cache_dir() -> Path:
    """``$XDG_CACHE_HOME/resccl`` (or ``~/.cache/resccl``)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "resccl"


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    frontend_hits: int = 0
    disk_hits: int = 0
    disk_writes: int = 0
    disk_corrupt: int = 0
    lowered_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`PlanCache.compile` calls served cached."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def summary(self) -> str:
        text = (
            f"plan cache: {self.hits}/{self.lookups} hit(s) "
            f"({self.hit_rate:.1%}; {self.disk_hits} from disk, "
            f"{self.frontend_hits} front-end reuse(s), "
            f"{self.disk_writes} disk write(s))"
        )
        if self.disk_corrupt:
            text += f" [{self.disk_corrupt} corrupt entr(ies) quarantined]"
        return text


class PlanCache:
    """LRU + optional on-disk cache of :class:`CompileResult` objects.

    Args:
        capacity: in-process LRU entry bound (0 disables memoization,
            leaving only the disk tier if one is configured).
        cache_dir: directory for the on-disk tier; ``None`` keeps the
            cache purely in-process.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        cache_dir: Union[str, Path, None] = None,
    ) -> None:
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self._memo: "OrderedDict[str, object]" = OrderedDict()
        self._frontend: "OrderedDict[str, Tuple[object, object]]" = OrderedDict()
        self._lowered: "OrderedDict[Tuple, object]" = OrderedDict()
        self.stats = CacheStats()

    # -- keying ---------------------------------------------------------

    @staticmethod
    def _source_of(algorithm) -> str:
        if isinstance(algorithm, str):
            return algorithm
        return algorithm.to_source()

    @staticmethod
    def _digest(*parts: str) -> str:
        payload = "\x00".join(parts).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def compile_key(
        self, source: str, cluster, scheduler: str, validate: bool
    ) -> str:
        """Content-hash key for a full compile.

        ``indexed_schedule`` is deliberately absent: the indexed and
        reference compile paths produce bit-identical results (the
        golden-equivalence suite enforces it), so entries are shared
        across modes rather than compiled twice.
        """
        return self._digest(
            f"v{CACHE_FORMAT_VERSION}",
            "compile",
            source,
            cluster.fingerprint(),
            scheduler,
            f"validate={bool(validate)}",
        )

    def frontend_key(self, source: str, cluster, validate: bool) -> str:
        """Key for the parse+analysis (phases 1-2) portion."""
        return self._digest(
            f"v{CACHE_FORMAT_VERSION}",
            "frontend",
            source,
            cluster.fingerprint(),
            f"validate={bool(validate)}",
        )

    # -- the cached compile entry point --------------------------------

    def compile(self, compiler, algorithm, cluster):
        """``compiler.compile(algorithm, cluster)``, memoized by content.

        ``compiler`` is a :class:`~repro.core.compiler.ResCCLCompiler`;
        its ``scheduler`` and ``validate`` attributes are part of the
        key.  On a full miss the front-end tier may still supply the
        parsed program + DAG so only scheduling and lowering run.
        """
        source = self._source_of(algorithm)
        key = self.compile_key(
            source, cluster, compiler.scheduler, compiler.validate
        )
        result = self._memo_get(key)
        if result is not None:
            self._count_hit()
            return result
        result = self._disk_get(key)
        if result is not None:
            result.cache_key = key
            self._memo_put(key, result)
            self.stats.disk_hits += 1
            self._count_hit()
            return result

        fe_key = self.frontend_key(source, cluster, compiler.validate)
        frontend = self._frontend.get(fe_key)
        if frontend is not None:
            self._frontend.move_to_end(fe_key)
            self.stats.frontend_hits += 1
        result = compiler.compile(algorithm, cluster, frontend=frontend)
        result.cache_key = key
        self._count_miss()
        self._memo_put(key, result)
        if frontend is None:
            self._frontend[fe_key] = (result.program, result.dag)
            while len(self._frontend) > max(self.capacity, 1):
                self._frontend.popitem(last=False)
        self._disk_put(key, result)
        return result

    def lowered(self, cache_key: str, *knobs, build):
        """Memoized TB allocation + kernel lowering for one plan call.

        ``plan()`` re-derives TB assignments and lowers them on every
        call even when the compile itself is a cache hit — for large
        winners that lowering dominates the request-time cost.  This
        tier memoizes ``build()`` under ``(cache_key, *knobs)``, where
        ``cache_key`` is the :class:`CompileResult`'s content hash and
        ``knobs`` are the plan-shaping inputs (micro-batch count,
        pipelining allowance, indexed mode, warp count).  Results built
        outside the cache carry an empty ``cache_key`` and bypass the
        tier rather than alias each other.
        """
        if not cache_key or self.capacity <= 0:
            return build()
        key = (cache_key, *knobs)
        hit = self._lowered.get(key)
        if hit is not None:
            self._lowered.move_to_end(key)
            self.stats.lowered_hits += 1
            return hit
        value = build()
        self._lowered[key] = value
        while len(self._lowered) > self.capacity:
            self._lowered.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop the in-process tiers and reset the statistics."""
        self._memo.clear()
        self._frontend.clear()
        self._lowered.clear()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._memo)

    # -- in-process tier ------------------------------------------------

    def _memo_get(self, key: str):
        result = self._memo.get(key)
        if result is not None:
            self._memo.move_to_end(key)
        return result

    def _memo_put(self, key: str, result) -> None:
        if self.capacity <= 0:
            return
        self._memo[key] = result
        self._memo.move_to_end(key)
        while len(self._memo) > self.capacity:
            self._memo.popitem(last=False)

    # -- on-disk tier ---------------------------------------------------

    def _entry_path(self, key: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{key}.pkl"

    @contextlib.contextmanager
    def _entry_lock(self, path: Path):
        """Per-key ``fcntl`` advisory lock for disk-tier mutations.

        The atomic-rename protocol already makes concurrent *processes*
        safe against torn reads (their tmp names embed distinct pids and
        ``os.replace`` is atomic), but two mutations of the same key can
        still interleave: threads sharing one pid collide on the tmp
        name, and a quarantine rename can race a concurrent writer's
        fresh ``os.replace`` and sweep the *good* replacement entry into
        ``<key>.corrupt``.  Daemons sharing a cache dir as their L2
        (``RESCCL_CACHE_DIR``) hit both.  The lock file is tiny,
        per-key, and never deleted (deleting an flock'd file reopens the
        unlink race the lock exists to close).  Best-effort: if the lock
        cannot be taken (exotic filesystem, no ``fcntl``), mutation
        proceeds under the old atomic-rename-only guarantees.
        """
        if fcntl is None or self.cache_dir is None:
            yield
            return
        lock_path = path.with_suffix(".lock")
        try:
            fh = open(lock_path, "a")
        except OSError:
            yield
            return
        try:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            except OSError:
                pass
            yield
        finally:
            fh.close()

    def _disk_get(self, key: str):
        path = self._entry_path(key)
        if path is None:
            return None
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            # Truncated or written by an incompatible build: quarantine
            # so the broken bytes are not re-parsed on every future miss
            # (concurrent writers may have already replaced the file —
            # the rename is best-effort), then compile as a plain miss.
            self._quarantine(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != CACHE_FORMAT_VERSION
            or entry.get("key") != key
        ):
            # The payload unpickled but fails the self-check (e.g. a
            # hash-colliding or hand-edited file): equally corrupt.
            self._quarantine(path)
            return None
        return entry.get("result")

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside as ``<key>.corrupt`` and count it."""
        try:
            with self._entry_lock(path):
                os.replace(path, path.with_suffix(".corrupt"))
        except OSError:
            pass
        self.stats.disk_corrupt += 1
        registry = current_registry()
        if registry is not None:
            registry.inc("compile_cache_corrupt_total")

    def _disk_put(self, key: str, result) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        entry = {"version": CACHE_FORMAT_VERSION, "key": key, "result": result}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with self._entry_lock(path):
                if path.exists():
                    # Content-addressed: a concurrent writer already
                    # persisted this exact result — rewriting identical
                    # bytes is churn (and, unlocked, the tmp-name race).
                    return
                tmp = path.with_suffix(f".tmp.{os.getpid()}")
                with tmp.open("wb") as fh:
                    pickle.dump(entry, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            self.stats.disk_writes += 1
        except OSError:
            # A read-only or full cache directory must never fail a
            # compile; the result is simply not persisted.
            pass

    # -- accounting -----------------------------------------------------

    def _count_hit(self) -> None:
        self.stats.hits += 1
        registry = current_registry()
        if registry is not None:
            registry.inc("compile_cache_hits_total")

    def _count_miss(self) -> None:
        self.stats.misses += 1
        registry = current_registry()
        if registry is not None:
            registry.inc("compile_cache_misses_total")


# ----------------------------------------------------------------------
# Process-wide default cache (what ResCCLBackend and the CLI use)
# ----------------------------------------------------------------------

_default_cache: Optional[PlanCache] = None


def get_cache() -> PlanCache:
    """The process-wide plan cache (created on first use).

    The disk tier is enabled automatically when ``RESCCL_CACHE_DIR`` is
    set; otherwise the default cache is purely in-process until
    :func:`configure` is called (e.g. by the CLI's ``--cache-dir``).
    """
    global _default_cache
    if _default_cache is None:
        env_dir = os.environ.get("RESCCL_CACHE_DIR")
        _default_cache = PlanCache(cache_dir=env_dir or None)
    return _default_cache


def configure(
    cache_dir: Union[str, Path, None] = None,
    capacity: Optional[int] = None,
    enabled: bool = True,
) -> PlanCache:
    """Replace the process-wide cache (CLI ``--cache-dir``/``--no-cache``).

    Args:
        cache_dir: on-disk tier directory; the string ``"auto"`` selects
            :func:`default_cache_dir`; ``None`` keeps in-process only.
        capacity: in-process LRU bound override.
        enabled: ``False`` installs a disabled cache (every compile runs).
    """
    global _default_cache
    if cache_dir == "auto":
        cache_dir = default_cache_dir()
    if not enabled:
        _default_cache = PlanCache(capacity=0, cache_dir=None)
    else:
        _default_cache = PlanCache(
            capacity=DEFAULT_CAPACITY if capacity is None else capacity,
            cache_dir=cache_dir,
        )
    return _default_cache


__all__ = [
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "PlanCache",
    "configure",
    "default_cache_dir",
    "get_cache",
]

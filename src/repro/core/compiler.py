"""The ResCCL offline compiler: DSL text -> optimized execution pipeline.

The four serial phases of Figure 10(a):

1. **Parsing** — ResCCLang source to AST, then elaboration into the flat
   transfer program;
2. **Analysis** — transfers to the data-dependency DAG (plus validation);
3. **Scheduling** — HPDS (or the round-robin ablation baseline) over the
   DAG, producing the global task pipeline;
4. **Lowering** — task pipeline to TB assignments and generated kernels.

Each phase's wall-clock time is recorded so the Figure 10(a)
scalability experiment measures the *actual* cost of this
implementation, not a model.  With a metrics registry armed, every
phase also lands one ``compile_wall_us`` histogram observation labelled
by stage and entry point, and the ``compile``/``compile_residual``
spans carry per-stage wall counters — the observability contract of the
cold-compile path (``docs/performance.md``).

``indexed_schedule`` selects between the near-linearithmic indexed
implementations of analysis, scheduling, and lowering (default) and the
original reference implementations kept as the golden comparators.
Outputs are bit-identical either way — :func:`compile_fingerprint`
captures everything observable about a compile so tests, benchmarks,
and CI can assert it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..ir.dag import DependencyDAG, build_dag
from ..lang.builder import AlgoProgram
from ..lang.parser import parse_module
from ..lang.builder import evaluate_module
from ..lang.validate import validate_program
from ..obs.metrics import current_registry
from ..obs.spans import span as obs_span
from ..topology import Cluster
from .hpds import hpds_schedule
from .kernelgen import render_kernel_source
from .pipeline import GlobalPipeline
from .rr import rr_schedule
from .tballoc import TBAssignment, allocate_tbs

SCHEDULERS: Dict[str, Callable[..., GlobalPipeline]] = {
    "hpds": hpds_schedule,
    "rr": rr_schedule,
}


def _run_scheduler(
    name: str, dag: DependencyDAG, indexed: bool
) -> GlobalPipeline:
    """Dispatch to a scheduler, forwarding the indexed/reference choice.

    Only HPDS has dual implementations; the round-robin ablation
    baseline has a single one and takes no mode.
    """
    if name == "hpds":
        return hpds_schedule(dag, indexed=indexed)
    return SCHEDULERS[name](dag)


def _observe_stage_wall(stage: str, micros: float, entry: str) -> None:
    """Publish one cold-compile stage wall time to the ambient registry."""
    registry = current_registry()
    if registry is not None:
        registry.observe("compile_wall_us", micros, stage=stage, entry=entry)


@dataclass
class CompileResult:
    """Everything the compiler produces for one algorithm + cluster."""

    program: AlgoProgram
    dag: DependencyDAG
    pipeline: GlobalPipeline
    assignments: List[TBAssignment]
    cluster: Cluster
    scheduler: str
    phase_times_us: Dict[str, float] = field(default_factory=dict)
    #: Content-hash under which the plan cache stored this result; set
    #: by :meth:`repro.core.plancache.PlanCache.compile` and empty for
    #: results built outside the cache.  Keys the per-call TB
    #: allocation + lowering memo on the plan hot path.
    cache_key: str = ""

    @property
    def total_time_us(self) -> float:
        return sum(self.phase_times_us.values())

    def kernel_source(self, rank: int, n_microbatches: int = 1) -> str:
        """Render the generated kernel listing for one rank."""
        return render_kernel_source(
            rank,
            self.assignments,
            self.dag,
            n_microbatches,
            algo_name=self.program.name,
        )

    def tb_count(self) -> int:
        return len(self.assignments)


def compile_fingerprint(
    result: CompileResult, kernel_ranks: Optional[List[int]] = None
) -> dict:
    """Content fingerprint of a compile's observable outputs.

    Captures the global pipeline (per-sub-pipeline task sequences), the
    TB assignments (per-TB endpoint groups with sides, peers, ordered
    task ids, and windows), and — when ``kernel_ranks`` is given — the
    rendered kernel source per rank.  Two compiles are bit-identical iff
    their fingerprints compare equal; the indexed-vs-reference golden
    suite and the compile-scaling benchmark both assert on this.
    """
    fp = {
        "scheduler": result.pipeline.scheduler,
        "pipeline": [list(sp.task_ids) for sp in result.pipeline.sub_pipelines],
        "assignments": [
            (
                tb.rank,
                [
                    (g.side.value, g.peer, tuple(g.task_ids), g.window)
                    for g in tb.groups
                ],
            )
            for tb in result.assignments
        ],
    }
    if kernel_ranks is not None:
        fp["kernels"] = {
            rank: result.kernel_source(rank) for rank in kernel_ranks
        }
    return fp


class ResCCLCompiler:
    """Compiles ResCCLang algorithms into scheduled TB pipelines.

    Args:
        scheduler: ``"hpds"`` (default) or ``"rr"`` (the ablation
            baseline of Figure 10(b)).
        validate: run static program validation during Analysis.
        indexed_schedule: run the indexed near-linearithmic analysis /
            scheduling / lowering implementations (default).  ``False``
            selects the original reference implementations — the golden
            escape hatch; outputs are bit-identical in both modes, so
            the plan cache deliberately keys on neither.
    """

    def __init__(
        self,
        scheduler: str = "hpds",
        validate: bool = True,
        indexed_schedule: bool = True,
    ) -> None:
        if scheduler not in SCHEDULERS:
            known = ", ".join(sorted(SCHEDULERS))
            raise ValueError(f"unknown scheduler {scheduler!r}; known: {known}")
        self.scheduler = scheduler
        self.validate = validate
        self.indexed_schedule = indexed_schedule

    def compile(
        self,
        algorithm: Union[str, AlgoProgram],
        cluster: Cluster,
        frontend: Optional[Tuple[AlgoProgram, DependencyDAG]] = None,
    ) -> CompileResult:
        """Run the full pipeline on DSL source text or a built program.

        ``frontend`` optionally supplies an already-parsed ``(program,
        dag)`` pair for this exact (algorithm, cluster, validate)
        combination — the plan cache uses it to skip phases 1-2 when
        only the scheduler differs between compiles.  Their phase times
        are recorded as 0.0.
        """
        times: Dict[str, float] = {}
        indexed = self.indexed_schedule

        with obs_span(
            "compile",
            scheduler=self.scheduler,
            indexed_schedule=str(indexed).lower(),
        ) as compile_sp:
            if frontend is not None:
                program, dag = frontend
                times["parsing"] = 0.0
                times["analysis"] = 0.0
            else:
                # Phase 1: Parsing (DSL text -> AST -> elaborated program).
                start = time.perf_counter()
                with obs_span("parsing") as sp:
                    if isinstance(algorithm, str):
                        program = evaluate_module(parse_module(algorithm))
                    else:
                        program = algorithm
                    sp.set(transfers=len(program.transfers))
                times["parsing"] = (time.perf_counter() - start) * 1e6

                # Phase 2: Analysis (program -> dependency DAG).
                start = time.perf_counter()
                with obs_span("analysis") as sp:
                    if self.validate:
                        validate_program(program, cluster).raise_if_failed()
                    dag = build_dag(program.transfers, cluster, fused=indexed)
                    sp.set(dag_nodes=len(dag), dag_edges=dag.edge_count)
                times["analysis"] = (time.perf_counter() - start) * 1e6

            # Phase 3: Scheduling (DAG -> global task pipeline).
            start = time.perf_counter()
            with obs_span("scheduling") as sp:
                pipeline = _run_scheduler(self.scheduler, dag, indexed)
                pipeline.check_all(dag)
                sp.set(
                    tasks_scheduled=pipeline.task_count,
                    sub_pipelines=pipeline.depth,
                )
            times["scheduling"] = (time.perf_counter() - start) * 1e6

            # Phase 4: Lowering (pipeline -> TB assignments).
            start = time.perf_counter()
            with obs_span("lowering"):
                assignments = allocate_tbs(dag, pipeline, indexed=indexed)
            times["lowering"] = (time.perf_counter() - start) * 1e6

            for stage, micros in times.items():
                _observe_stage_wall(stage, micros, entry="full")
            compile_sp.set(
                total_wall_us=sum(times.values()),
                **{f"{stage}_wall_us": t for stage, t in times.items()},
            )

        return CompileResult(
            program=program,
            dag=dag,
            pipeline=pipeline,
            assignments=assignments,
            cluster=cluster,
            scheduler=self.scheduler,
            phase_times_us=times,
        )


def compile_residual(
    dag: DependencyDAG,
    scheduler: str = "hpds",
    pipelining_allowance: int = 1,
    indexed: bool = True,
) -> Tuple[GlobalPipeline, List[TBAssignment]]:
    """Scheduling + lowering for an already-built (residual) DAG.

    The replan-and-resume recovery path enters the pipeline here: it has
    no DSL source and must not re-run whole-program validation — its
    transfer set is a precedence-closed *residue* of a collective, built
    directly against the degraded cluster (whose link annotations the DAG
    already carries).  Phases 3 and 4 are identical to a full compile:
    HPDS (or round-robin) over the DAG, then state-based TB allocation.
    ``indexed`` selects the indexed or reference implementations exactly
    as :class:`ResCCLCompiler` does — replans on a degraded cluster are
    cold compiles the plan cache never sees, so they ride the indexed
    path by default.

    Returns ``(pipeline, assignments)``; kernel generation stays with the
    caller, which knows the resume plan's micro-batch count.
    """
    if scheduler not in SCHEDULERS:
        known = ", ".join(sorted(SCHEDULERS))
        raise ValueError(f"unknown scheduler {scheduler!r}; known: {known}")
    with obs_span(
        "compile_residual",
        scheduler=scheduler,
        indexed_schedule=str(indexed).lower(),
    ) as sp:
        start = time.perf_counter()
        pipeline = _run_scheduler(scheduler, dag, indexed)
        pipeline.check_all(dag)
        scheduling_us = (time.perf_counter() - start) * 1e6
        start = time.perf_counter()
        assignments = allocate_tbs(
            dag,
            pipeline,
            pipelining_allowance=pipelining_allowance,
            indexed=indexed,
        )
        lowering_us = (time.perf_counter() - start) * 1e6
        _observe_stage_wall("scheduling", scheduling_us, entry="residual")
        _observe_stage_wall("lowering", lowering_us, entry="residual")
        sp.set(
            dag_nodes=len(dag),
            sub_pipelines=pipeline.depth,
            tbs=len(assignments),
            scheduling_wall_us=scheduling_us,
            lowering_wall_us=lowering_us,
        )
    return pipeline, assignments


__all__ = [
    "ResCCLCompiler",
    "CompileResult",
    "SCHEDULERS",
    "compile_fingerprint",
    "compile_residual",
]

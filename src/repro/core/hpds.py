"""Hierarchical Priority-based Dynamic Scheduling — the paper's Algorithm 1.

HPDS builds the global task pipeline by repeatedly constructing
sub-pipelines.  Within one sub-pipeline it visits per-chunk DAGs ``G[C]``
in priority order, extracting every task whose data dependencies are
already scheduled (in *earlier* sub-pipelines) and whose link is not yet
claimed by the current sub-pipeline.  Chunks that contributed recently
lose priority ("tasks with lower execution frequency — underutilized
chunks — are assigned higher priority"), which balances load across
chunks and keeps inter- and intra-machine task chains in separate
wavefronts — the bubble-minimization property of section 4.3.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.dag import DependencyDAG
from ..obs.spans import current_span
from .pipeline import GlobalPipeline, SubPipeline


class _ChunkQueue:
    """Hierarchical priority queue over chunks.

    The priority is a two-level hierarchy (the "Hierarchical" in HPDS):

    1. **execution frequency** — chunks served fewer times rank first
       ("tasks with lower execution frequency — underutilized chunks —
       are assigned higher priority", section 4.3), which balances chunk
       progress;
    2. **critical-path urgency** — among equally-served chunks, the one
       whose pending work heads the longest remaining dependency chain
       ranks first, so long reduction chains are never starved behind
       short ones.

    Ties break on ascending chunk id, making the schedule deterministic.
    """

    def __init__(self, chunks: List[int]) -> None:
        self._served: Dict[int, int] = {c: 0 for c in chunks}
        self._urgency: Dict[int, int] = {c: 0 for c in chunks}
        self._chunks = sorted(chunks)

    def priority(self, chunk: int) -> int:
        return -self._served[chunk]

    def decrease(self, chunk: int) -> None:
        self._served[chunk] += 1

    def set_urgency(self, chunk: int, value: int) -> None:
        self._urgency[chunk] = value

    def highest_with_flag(self, flags: Dict[int, bool]) -> int:
        """Highest-priority chunk whose flag is still true, or -1."""
        best = -1
        best_key = None
        for chunk in self._chunks:
            if not flags.get(chunk, False):
                continue
            key = (self._served[chunk], -self._urgency[chunk], chunk)
            if best_key is None or key < best_key:
                best_key = key
                best = chunk
        return best


def hpds_schedule(dag: DependencyDAG) -> GlobalPipeline:
    """Run Algorithm 1 over a dependency DAG.

    Returns the global pipeline ``Pr``; raises if the DAG is cyclic (the
    outer loop would otherwise never terminate).
    """
    dag.topological_order()  # raises CyclicDependencyError on bad input

    remaining: Set[int] = {t.task_id for t in dag.tasks}
    unscheduled_preds: Dict[int, int] = {
        t.task_id: len(dag.preds[t.task_id]) for t in dag.tasks
    }
    # Algorithm 1 removes scheduled nodes from G immediately (line 22), so
    # a task becomes data-ready as soon as its producers are scheduled —
    # possibly within the *current* sub-pipeline, which is how one
    # sub-pipeline packs multi-stage chains (Figure 5(c)).
    ready: Set[int] = {tid for tid, n in unscheduled_preds.items() if n == 0}

    # Critical-path height of each task: length of the longest dependency
    # chain it heads.  Drives the urgency level of the priority hierarchy.
    height: Dict[int, int] = {}
    for tid in reversed(dag.topological_order()):
        height[tid] = 1 + max((height[s] for s in dag.succs[tid]), default=0)

    chunks = [c for c, members in dag.chunk_tasks.items() if members]
    queue = _ChunkQueue(chunks)
    chunk_remaining: Dict[int, List[int]] = {
        c: list(dag.chunk_tasks[c]) for c in chunks
    }
    ready_by_chunk: Dict[int, Set[int]] = {c: set() for c in chunks}
    # Communication-dependency arbitration: when several ready tasks of
    # different chunks contend for one link, the algorithm's step order
    # decides — a later-step task must not claim the link first, or the
    # earlier-step chain (and everything behind it) stalls.
    ready_by_link: Dict[str, Set[int]] = {}
    for tid in ready:
        ready_by_chunk[dag.task(tid).chunk].add(tid)
        ready_by_link.setdefault(dag.task(tid).link, set()).add(tid)

    def link_has_earlier_ready(task_id: int) -> bool:
        task = dag.task(task_id)
        key = (task.step, task_id)
        return any(
            (dag.task(other).step, other) < key
            for other in ready_by_link.get(task.link, ())
            if other != task_id
        )

    def refresh_urgency(chunk: int) -> None:
        queue.set_urgency(
            chunk,
            max((height[t] for t in ready_by_chunk[chunk]), default=0),
        )

    for chunk in chunks:
        refresh_urgency(chunk)

    sub_pipelines: List[SubPipeline] = []
    while remaining:
        current = SubPipeline(index=len(sub_pipelines))
        used_links: Set[str] = set()
        flags: Dict[int, bool] = {
            c: bool(chunk_remaining[c]) for c in chunks
        }
        while any(flags.values()):
            chunk = queue.highest_with_flag(flags)
            if chunk < 0:
                break
            node_list: List[int] = []
            for task_id in chunk_remaining[chunk]:
                if task_id not in ready:
                    continue
                link = dag.task(task_id).link
                if link in used_links:
                    continue
                if link_has_earlier_ready(task_id):
                    continue  # the link belongs to an earlier-step chain
                node_list.append(task_id)
                used_links.add(link)
            if not node_list:
                flags[chunk] = False
                continue
            current.task_ids.extend(node_list)
            picked = set(node_list)
            chunk_remaining[chunk] = [
                t for t in chunk_remaining[chunk] if t not in picked
            ]
            remaining.difference_update(picked)
            touched = {chunk}
            for task_id in node_list:
                ready.discard(task_id)
                ready_by_chunk[chunk].discard(task_id)
                ready_by_link[dag.task(task_id).link].discard(task_id)
                for succ in dag.succs[task_id]:
                    unscheduled_preds[succ] -= 1
                    if unscheduled_preds[succ] == 0:
                        ready.add(succ)
                        succ_task = dag.task(succ)
                        ready_by_chunk[succ_task.chunk].add(succ)
                        ready_by_link.setdefault(succ_task.link, set()).add(succ)
                        touched.add(succ_task.chunk)
                        # A chunk that regained eligible work is revisited.
                        flags[succ_task.chunk] = True
            for touched_chunk in touched:
                refresh_urgency(touched_chunk)
            queue.decrease(chunk)
        if not current.task_ids:
            raise RuntimeError(
                "HPDS made no progress — the ready set is empty although "
                f"{len(remaining)} task(s) remain (inconsistent DAG state)"
            )
        sub_pipelines.append(current)

    current_span().set(
        hpds_tasks=len(dag),
        hpds_sub_pipelines=len(sub_pipelines),
        hpds_chunks=len(chunks),
    )
    return GlobalPipeline(sub_pipelines=sub_pipelines, scheduler="hpds")


__all__ = ["hpds_schedule"]

"""Hierarchical Priority-based Dynamic Scheduling — the paper's Algorithm 1.

HPDS builds the global task pipeline by repeatedly constructing
sub-pipelines.  Within one sub-pipeline it visits per-chunk DAGs ``G[C]``
in priority order, extracting every task whose data dependencies are
already scheduled (in *earlier* sub-pipelines) and whose link is not yet
claimed by the current sub-pipeline.  Chunks that contributed recently
lose priority ("tasks with lower execution frequency — underutilized
chunks — are assigned higher priority"), which balances load across
chunks and keeps inter- and intra-machine task chains in separate
wavefronts — the bubble-minimization property of section 4.3.

Two implementations live here, selected by ``hpds_schedule(dag,
indexed=...)`` and producing **bit-identical** pipelines:

* the **reference** (``indexed=False``) follows Algorithm 1 literally —
  a full chunk scan per pick, a full remaining-task scan per chunk
  visit, and a per-link ready-set scan per candidate.  It is
  O(sub-pipelines x chunks x tasks) and kept as the golden comparator
  (``ResCCLCompiler(indexed_schedule=False)``);
* the **indexed** scheduler (default) reaches near-linearithmic cost by
  replacing every scan with an incrementally-maintained index: a
  lazy-deletion heap over chunks keyed by :func:`_priority_key`,
  per-chunk ready heaps drained in ascending task id, per-link min-heaps
  keyed by ``(step, task_id)`` for communication-dependency arbitration,
  and per-chunk lazy max-heaps that maintain critical-path urgency
  without re-maxing the ready set.

``tests/test_hpds_indexed.py`` proves equivalence over the DSL corpus,
the built-in algorithms, synthesized programs, and a degraded-cluster
replan; ``benchmarks/test_compile_scaling.py`` measures the speedup.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from ..ir.dag import DependencyDAG
from ..obs.spans import current_span
from .pipeline import GlobalPipeline, SubPipeline


def _priority_key(served: int, urgency: int, chunk: int) -> Tuple[int, int, int]:
    """The two-level HPDS priority, as a min-sortable key.

    1. **execution frequency** — chunks served fewer times rank first
       ("tasks with lower execution frequency — underutilized chunks —
       are assigned higher priority", section 4.3), which balances chunk
       progress;
    2. **critical-path urgency** — among equally-served chunks, the one
       whose pending work heads the longest remaining dependency chain
       ranks first, so long reduction chains are never starved behind
       short ones.

    Ties break on ascending chunk id, making the schedule deterministic.
    This is the single definition of chunk priority: the reference
    :class:`_ChunkQueue` and the indexed scheduler's chunk heap both key
    on it.
    """
    return (served, -urgency, chunk)


class _ChunkQueue:
    """Hierarchical priority queue over chunks (reference implementation).

    Orders chunks by :func:`_priority_key`; the pick is a full scan,
    which is what the indexed scheduler's lazy-deletion heap replaces.
    """

    def __init__(self, chunks: List[int]) -> None:
        self._served: Dict[int, int] = {c: 0 for c in chunks}
        self._urgency: Dict[int, int] = {c: 0 for c in chunks}
        self._chunks = sorted(chunks)

    def decrease(self, chunk: int) -> None:
        self._served[chunk] += 1

    def set_urgency(self, chunk: int, value: int) -> None:
        self._urgency[chunk] = value

    def highest_with_flag(self, flags: Dict[int, bool]) -> int:
        """Highest-priority chunk whose flag is still true, or -1."""
        best = -1
        best_key = None
        for chunk in self._chunks:
            if not flags.get(chunk, False):
                continue
            key = _priority_key(
                self._served[chunk], self._urgency[chunk], chunk
            )
            if best_key is None or key < best_key:
                best_key = key
                best = chunk
        return best


def _heights(dag: DependencyDAG, order: List[int]) -> Dict[int, int]:
    """Critical-path height of each task: length of the longest
    dependency chain it heads.  Drives the urgency level of the priority
    hierarchy."""
    height: Dict[int, int] = {}
    for tid in reversed(order):
        height[tid] = 1 + max((height[s] for s in dag.succs[tid]), default=0)
    return height


def _schedule_reference(dag: DependencyDAG) -> GlobalPipeline:
    """Algorithm 1, literally — the golden reference implementation."""
    order = dag.topological_order()  # raises CyclicDependencyError

    remaining: Set[int] = {t.task_id for t in dag.tasks}
    unscheduled_preds: Dict[int, int] = {
        t.task_id: len(dag.preds[t.task_id]) for t in dag.tasks
    }
    # Algorithm 1 removes scheduled nodes from G immediately (line 22), so
    # a task becomes data-ready as soon as its producers are scheduled —
    # possibly within the *current* sub-pipeline, which is how one
    # sub-pipeline packs multi-stage chains (Figure 5(c)).
    ready: Set[int] = {tid for tid, n in unscheduled_preds.items() if n == 0}

    height = _heights(dag, order)

    chunks = [c for c, members in dag.chunk_tasks.items() if members]
    queue = _ChunkQueue(chunks)
    chunk_remaining: Dict[int, List[int]] = {
        c: list(dag.chunk_tasks[c]) for c in chunks
    }
    ready_by_chunk: Dict[int, Set[int]] = {c: set() for c in chunks}
    # Communication-dependency arbitration: when several ready tasks of
    # different chunks contend for one link, the algorithm's step order
    # decides — a later-step task must not claim the link first, or the
    # earlier-step chain (and everything behind it) stalls.
    ready_by_link: Dict[str, Set[int]] = {}
    for tid in ready:
        ready_by_chunk[dag.task(tid).chunk].add(tid)
        ready_by_link.setdefault(dag.task(tid).link, set()).add(tid)

    def link_has_earlier_ready(task_id: int) -> bool:
        task = dag.task(task_id)
        key = (task.step, task_id)
        return any(
            (dag.task(other).step, other) < key
            for other in ready_by_link.get(task.link, ())
            if other != task_id
        )

    def refresh_urgency(chunk: int) -> None:
        queue.set_urgency(
            chunk,
            max((height[t] for t in ready_by_chunk[chunk]), default=0),
        )

    for chunk in chunks:
        refresh_urgency(chunk)

    sub_pipelines: List[SubPipeline] = []
    while remaining:
        current = SubPipeline(index=len(sub_pipelines))
        used_links: Set[str] = set()
        flags: Dict[int, bool] = {
            c: bool(chunk_remaining[c]) for c in chunks
        }
        while any(flags.values()):
            chunk = queue.highest_with_flag(flags)
            if chunk < 0:
                break
            node_list: List[int] = []
            for task_id in chunk_remaining[chunk]:
                if task_id not in ready:
                    continue
                link = dag.task(task_id).link
                if link in used_links:
                    continue
                if link_has_earlier_ready(task_id):
                    continue  # the link belongs to an earlier-step chain
                node_list.append(task_id)
                used_links.add(link)
            if not node_list:
                flags[chunk] = False
                continue
            current.task_ids.extend(node_list)
            picked = set(node_list)
            chunk_remaining[chunk] = [
                t for t in chunk_remaining[chunk] if t not in picked
            ]
            remaining.difference_update(picked)
            touched = {chunk}
            for task_id in node_list:
                ready.discard(task_id)
                ready_by_chunk[chunk].discard(task_id)
                ready_by_link[dag.task(task_id).link].discard(task_id)
                for succ in dag.succs[task_id]:
                    unscheduled_preds[succ] -= 1
                    if unscheduled_preds[succ] == 0:
                        ready.add(succ)
                        succ_task = dag.task(succ)
                        ready_by_chunk[succ_task.chunk].add(succ)
                        ready_by_link.setdefault(succ_task.link, set()).add(succ)
                        touched.add(succ_task.chunk)
                        # A chunk that regained eligible work is revisited.
                        flags[succ_task.chunk] = True
            for touched_chunk in touched:
                refresh_urgency(touched_chunk)
            queue.decrease(chunk)
        if not current.task_ids:
            raise RuntimeError(
                "HPDS made no progress — the ready set is empty although "
                f"{len(remaining)} task(s) remain (inconsistent DAG state)"
            )
        sub_pipelines.append(current)
    return GlobalPipeline(sub_pipelines=sub_pipelines, scheduler="hpds")


def _schedule_indexed(dag: DependencyDAG) -> GlobalPipeline:
    """Index-based HPDS: every reference scan becomes a heap operation.

    Replays the reference pick sequence exactly:

    * the chunk pick pops a **lazy-deletion heap** of
      ``_priority_key(served, urgency, chunk)`` entries — an entry is
      valid iff the chunk is still flagged and the key matches its
      current state, and every state change pushes a fresh entry, so
      the valid minimum equals the reference's full-scan argmin;
    * the per-chunk visit drains a **ready heap** in ascending task id —
      the same order the reference's remaining-task scan yields, because
      ``chunk_tasks`` lists are ascending by construction — and pushes
      the non-picked tasks straight back (a popped ascending run is
      already a valid heap);
    * link arbitration peeks the **per-link min-heap** of
      ``(step, task_id)``: an earlier-step ready task exists iff the
      valid heap minimum is smaller than the candidate's own key;
    * urgency is maintained **incrementally**: each chunk owns a lazy
      max-heap of ``(-height, task)`` entries pushed when a task becomes
      ready; the current urgency is the valid top, popped-through in
      amortized O(log n) instead of re-maxing the ready set.
    """
    order = dag.topological_order()  # raises CyclicDependencyError

    tasks = dag.tasks
    n = len(tasks)
    succs = dag.succs
    task_chunk: List[int] = [t.transfer.chunk for t in tasks]
    task_link: List[str] = [t.link for t in tasks]
    task_step: List[int] = [t.transfer.step for t in tasks]
    unscheduled_preds: List[int] = [len(dag.preds[t.task_id]) for t in tasks]
    heappush = heapq.heappush
    heappop = heapq.heappop

    # Critical-path heights (what _heights computes for the reference),
    # in a dense array and without per-task generator overhead.
    height: List[int] = [0] * n
    for tid in reversed(order):
        tallest = 0
        for s in succs[tid]:
            h = height[s]
            if h > tallest:
                tallest = h
        height[tid] = tallest + 1

    chunks = [c for c, members in dag.chunk_tasks.items() if members]
    served: Dict[int, int] = {c: 0 for c in chunks}
    urgency: Dict[int, int] = {c: 0 for c in chunks}
    chunk_left: Dict[int, int] = {c: len(dag.chunk_tasks[c]) for c in chunks}

    # ready_mask[tid] is 1 while the task is ready and unscheduled; it is
    # the validity oracle for every lazy heap entry below.
    ready_mask = bytearray(n)
    ready_heap: Dict[int, List[int]] = {c: [] for c in chunks}
    urgency_heap: Dict[int, List[Tuple[int, int]]] = {c: [] for c in chunks}
    link_heap: Dict[str, List[Tuple[int, int]]] = {}

    def make_ready(tid: int) -> None:
        ready_mask[tid] = 1
        c = task_chunk[tid]
        heappush(ready_heap[c], tid)
        heappush(urgency_heap[c], (-height[tid], tid))
        link = task_link[tid]
        heap = link_heap.get(link)
        if heap is None:
            link_heap[link] = [(task_step[tid], tid)]
        else:
            heappush(heap, (task_step[tid], tid))

    for tid in range(n):
        if unscheduled_preds[tid] == 0:
            make_ready(tid)

    def current_urgency(c: int) -> int:
        heap = urgency_heap[c]
        while heap and not ready_mask[heap[0][1]]:
            heappop(heap)
        return -heap[0][0] if heap else 0

    for c in chunks:
        urgency[c] = current_urgency(c)

    n_remaining = n
    active: List[int] = list(chunks)
    sub_pipelines: List[SubPipeline] = []
    while n_remaining:
        current = SubPipeline(index=len(sub_pipelines))
        used_links: Set[str] = set()
        active = [c for c in active if chunk_left[c]]
        flags: Dict[int, bool] = dict.fromkeys(active, True)
        flags_true = len(active)
        chunk_heap: List[Tuple[int, int, int]] = [
            _priority_key(served[c], urgency[c], c) for c in active
        ]
        heapq.heapify(chunk_heap)

        while flags_true:
            # Lazy-deletion pop: skip entries whose chunk was unflagged
            # or whose (served, urgency) moved on since the push.  Every
            # flagged chunk always has one valid entry, so the loop
            # cannot exhaust the heap while flags_true > 0.
            chunk = -1
            while chunk_heap:
                s, neg_u, c = heappop(chunk_heap)
                if (
                    flags.get(c, False)
                    and s == served[c]
                    and neg_u == -urgency[c]
                ):
                    chunk = c
                    break
            if chunk < 0:  # pragma: no cover - defensive, invariant holds
                break

            heap = ready_heap[chunk]
            node_list: List[int] = []
            leftovers: List[int] = []
            while heap:
                tid = heappop(heap)
                if not ready_mask[tid]:
                    continue
                link = task_link[tid]
                if link in used_links:
                    leftovers.append(tid)
                    continue
                # Inline link arbitration: an earlier-step ready task on
                # this link (the valid minimum of its lazy heap) owns it.
                lheap = link_heap.get(link)
                if lheap:
                    while lheap and not ready_mask[lheap[0][1]]:
                        heappop(lheap)
                    if lheap and lheap[0] < (task_step[tid], tid):
                        leftovers.append(tid)
                        continue
                node_list.append(tid)
                used_links.add(link)
            # Popped in ascending order, so the leftover run is already a
            # valid min-heap.
            ready_heap[chunk] = leftovers

            if not node_list:
                flags[chunk] = False
                flags_true -= 1
                continue

            current.task_ids.extend(node_list)
            n_picked = len(node_list)
            n_remaining -= n_picked
            chunk_left[chunk] -= n_picked
            touched = {chunk}
            for tid in node_list:
                ready_mask[tid] = 0
            for tid in node_list:
                for succ in succs[tid]:
                    unscheduled_preds[succ] -= 1
                    if unscheduled_preds[succ] == 0:
                        # make_ready, inlined on the hot path.
                        ready_mask[succ] = 1
                        sc = task_chunk[succ]
                        heappush(ready_heap[sc], succ)
                        heappush(urgency_heap[sc], (-height[succ], succ))
                        slink = task_link[succ]
                        lheap = link_heap.get(slink)
                        if lheap is None:
                            link_heap[slink] = [(task_step[succ], succ)]
                        else:
                            heappush(lheap, (task_step[succ], succ))
                        touched.add(sc)
                        # An unscheduled succ keeps its chunk in `active`,
                        # so `flags` is guaranteed to hold sc.
                        if not flags[sc]:
                            # A chunk that regained eligible work is
                            # revisited within this sub-pipeline.
                            flags[sc] = True
                            flags_true += 1
            served[chunk] += 1
            for tc in touched:
                u = current_urgency(tc)
                urgency[tc] = u
                if flags[tc]:
                    # _priority_key, inlined.
                    heappush(chunk_heap, (served[tc], -u, tc))

        if not current.task_ids:
            raise RuntimeError(
                "HPDS made no progress — the ready set is empty although "
                f"{n_remaining} task(s) remain (inconsistent DAG state)"
            )
        sub_pipelines.append(current)
    return GlobalPipeline(sub_pipelines=sub_pipelines, scheduler="hpds")


def hpds_schedule(
    dag: DependencyDAG, *, indexed: Optional[bool] = True
) -> GlobalPipeline:
    """Run Algorithm 1 over a dependency DAG.

    Returns the global pipeline ``Pr``; raises if the DAG is cyclic (the
    outer loop would otherwise never terminate).  ``indexed`` selects the
    near-linearithmic index-based scheduler (default) or the literal
    reference implementation — their outputs are bit-identical.
    """
    if indexed:
        pipeline = _schedule_indexed(dag)
    else:
        pipeline = _schedule_reference(dag)
    current_span().set(
        hpds_tasks=len(dag),
        hpds_sub_pipelines=len(pipeline.sub_pipelines),
        hpds_chunks=sum(1 for members in dag.chunk_tasks.values() if members),
    )
    return pipeline


__all__ = ["hpds_schedule"]

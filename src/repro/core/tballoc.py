"""Flexible, state-based thread-block allocation (section 4.4).

Existing backends allocate one TB per connection *per stage/channel*,
leaving many TBs idle for most of the kernel.  ResCCL instead:

1. starts from connection endpoints — one executor per
   (rank, direction, peer), covering that connection across the *whole*
   pipeline rather than per stage;
2. runs a timeline analysis over the scheduled pipeline: each endpoint's
   active window is the span of list-scheduled execution slots its tasks
   occupy (see :func:`timeline_slots`);
3. merges endpoints on the same rank whose windows never overlap
   (``active(l_i) ∩ active(l_j) = ∅``), packing serially-active
   connections onto one TB with classic interval-scheduling greedy
   allocation — optimal in the number of TBs for the window model.

The result is the Equation 7 reduction: ``|TB|`` drops from the number of
connection endpoints to the number of *concurrently* active ones.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ir.dag import DependencyDAG
from ..obs.spans import span as obs_span
from ..runtime.plan import Side
from .pipeline import GlobalPipeline


@dataclass
class EndpointGroup:
    """One connection endpoint's scheduled work.

    Attributes:
        rank: owning GPU.
        side: SEND or RECV role.
        peer: the GPU on the other end of the connection.
        task_ids: tasks, ordered by pipeline position.
        window: (first, last) timeline slot in which the endpoint is
            active (see :func:`timeline_slots`).
    """

    rank: int
    side: Side
    peer: int
    task_ids: List[int]
    window: Tuple[int, int]


@dataclass
class TBAssignment:
    """One allocated thread block: merged endpoint groups, in time order."""

    rank: int
    groups: List[EndpointGroup] = field(default_factory=list)

    @property
    def window(self) -> Tuple[int, int]:
        return (self.groups[0].window[0], self.groups[-1].window[1])

    def ordered_sides(self) -> List[Tuple[int, Side]]:
        """The TB's (task, side) sequence across its merged endpoints."""
        return [
            (task_id, group.side)
            for group in self.groups
            for task_id in group.task_ids
        ]

    @property
    def label(self) -> str:
        parts = [
            f"{g.side.value}{'->' if g.side is Side.SEND else '<-'}r{g.peer}"
            for g in self.groups
        ]
        return "resccl:" + "+".join(parts)


def timeline_slots(dag: DependencyDAG, pipeline: GlobalPipeline) -> Dict[int, int]:
    """Static timeline analysis: a discrete execution slot per task.

    List scheduling in pipeline order: a task runs one slot after its last
    data-dependency producer, and no earlier than its link's next free
    slot (one task per link per slot).  The resulting slots approximate
    *when* each connection is active — the ``active_l(t)`` intervals of
    section 4.4.
    """
    # The pipeline's own task sequence IS the sort the old implementation
    # recomputed: ordered_task_ids() enumerates (sub-pipeline, slot)
    # order, which is exactly sorting every task by order_key.  Slots
    # live in a dense array during the pass (task ids are dense); -1
    # marks not-yet-scheduled, matching the old ``p in slots`` guard.
    order = pipeline.ordered_task_ids()
    dense: List[int] = [-1] * len(dag.tasks)
    link_free: Dict[str, int] = {}
    tasks = dag.tasks
    preds = dag.preds
    for task_id in order:
        slot = 0
        for p in preds[task_id]:
            sp = dense[p]
            if sp >= slot:
                slot = sp + 1
        link = tasks[task_id].link
        free = link_free.get(link, 0)
        if free > slot:
            slot = free
        dense[task_id] = slot
        link_free[link] = slot + 1
    return {task_id: dense[task_id] for task_id in order}


def build_endpoint_groups(
    dag: DependencyDAG, pipeline: GlobalPipeline
) -> List[EndpointGroup]:
    """Connection-endpoint grouping with timeline-analysis windows.

    Tasks are sorted once, globally, by ``(slot, order_key)`` — a total
    order, so appending them to each endpoint's member list leaves every
    list in exactly the per-endpoint sorted order — in timeline order:
    the list-scheduled slot is when the task can actually run, which
    beats raw pipeline position when a wavefront packs long chains.
    Windows fall out of the ends of each sorted member list.
    """
    slots = timeline_slots(dag, pipeline)
    tasks = dag.tasks
    # ordered_task_ids() is already the order_key sort, so a *stable*
    # sort by slot alone yields exactly the old (slot, order_key) total
    # order without building a key tuple per task.
    timeline_order = sorted(pipeline.ordered_task_ids(), key=slots.__getitem__)
    # Sides are encoded as 0 (SEND) / 1 (RECV) while grouping — tuple
    # hashing over plain ints is much cheaper than over enum members.
    members: Dict[Tuple[int, int, int], List[int]] = {}
    for task_id in timeline_order:
        tr = tasks[task_id].transfer  # plain fields, no property calls
        for key in (
            (tr.src, 0, tr.dst),
            (tr.dst, 1, tr.src),
        ):
            bucket = members.get(key)
            if bucket is None:
                members[key] = [task_id]
            else:
                bucket.append(task_id)
    groups: List[EndpointGroup] = []
    for (rank, side_recv, peer), task_ids in members.items():
        groups.append(
            EndpointGroup(
                rank=rank,
                side=Side.RECV if side_recv else Side.SEND,
                peer=peer,
                task_ids=task_ids,
                window=(slots[task_ids[0]], slots[task_ids[-1]]),
            )
        )
    groups.sort(key=lambda g: (g.rank, g.window, g.side is Side.RECV, g.peer))
    return groups


def _merge_rank_reference(
    groups: List[EndpointGroup],
    rank: int,
    pipelining_allowance: int,
) -> Tuple[List[TBAssignment], int, int]:
    """Best-fit merge by linear scan over open TBs — the golden reference."""
    merges_accepted = 0
    merges_rejected = 0
    open_tbs: List[TBAssignment] = []
    for group in groups:  # already sorted by window start
        best = None
        for tb in open_tbs:
            if tb.window[1] + pipelining_allowance < group.window[0]:
                if best is None or tb.window[1] > best.window[1]:
                    best = tb
        if best is None:
            if open_tbs:
                merges_rejected += 1
            best = TBAssignment(rank=rank)
            open_tbs.append(best)
        else:
            merges_accepted += 1
        best.groups.append(group)
    return open_tbs, merges_accepted, merges_rejected


def _merge_rank_indexed(
    groups: List[EndpointGroup],
    rank: int,
    pipelining_allowance: int,
) -> Tuple[List[TBAssignment], int, int]:
    """Best-fit merge through a sorted-by-window-end index.

    Open TBs live in a list kept sorted by ``(window_end, -creation)``.
    The reference picks the TB with the *largest* end strictly below the
    window start (minus the allowance), breaking ties toward the
    earliest-created TB — which is exactly the rightmost index entry
    below the threshold, because equal ends sort by descending creation
    order.  Each endpoint costs one bisect plus one ordered reinsertion
    instead of a scan over every open TB, and the assignment is
    identical to the reference by construction.
    """
    merges_accepted = 0
    merges_rejected = 0
    open_tbs: List[TBAssignment] = []
    # Entries are (window_end, -creation_index, tb); creation indexes are
    # unique per rank so the TBAssignment itself is never compared.
    index: List[Tuple[int, int, TBAssignment]] = []
    for group in groups:  # already sorted by window start
        threshold = group.window[0] - pipelining_allowance
        pos = bisect_left(index, (threshold,))
        if pos == 0:
            if open_tbs:
                merges_rejected += 1
            tb = TBAssignment(rank=rank)
            seq = len(open_tbs)
            open_tbs.append(tb)
        else:
            _, neg_seq, tb = index.pop(pos - 1)
            seq = -neg_seq
            merges_accepted += 1
        tb.groups.append(group)
        insort(index, (group.window[1], -seq, tb))
    return open_tbs, merges_accepted, merges_rejected


def allocate_tbs(
    dag: DependencyDAG,
    pipeline: GlobalPipeline,
    pipelining_allowance: int = 0,
    *,
    indexed: bool = True,
) -> List[TBAssignment]:
    """State-based allocation: merge serially-active endpoints per rank.

    Greedy interval scheduling: endpoints are taken in window-start
    order; each goes to the existing TB whose last window ended most
    recently but still strictly before this endpoint's window starts,
    or to a fresh TB when every TB's window overlaps.

    ``pipelining_allowance`` widens every window on the right by that
    many slots before testing disjointness: under task-level execution a
    connection's last task keeps streaming micro-batches past its static
    slot, so merging across a smaller gap would serialize work that
    actually overlaps.  Backends pass a value derived from the
    micro-batch count.

    ``indexed`` selects the sorted-by-window-end merge index (default)
    or the reference linear scan over open TBs; both yield the same
    assignments (``tests/test_tballoc.py``).
    """
    merge = _merge_rank_indexed if indexed else _merge_rank_reference
    with obs_span("tballoc") as sp:
        by_rank: Dict[int, List[EndpointGroup]] = defaultdict(list)
        endpoint_count = 0
        for group in build_endpoint_groups(dag, pipeline):
            by_rank[group.rank].append(group)
            endpoint_count += 1

        merges_accepted = 0
        merges_rejected = 0
        assignments: List[TBAssignment] = []
        for rank in sorted(by_rank):
            open_tbs, accepted, rejected = merge(
                by_rank[rank], rank, pipelining_allowance
            )
            merges_accepted += accepted
            merges_rejected += rejected
            assignments.extend(open_tbs)
        sp.set(
            endpoints=endpoint_count,
            tbs=len(assignments),
            merges_accepted=merges_accepted,
            merges_rejected=merges_rejected,
        )
    return assignments


def connection_endpoint_count(dag: DependencyDAG) -> int:
    """TBs a rigid connection-based allocation would need (for reporting)."""
    endpoints = set()
    for task in dag.tasks:
        endpoints.add((task.src, Side.SEND, task.dst))
        endpoints.add((task.dst, Side.RECV, task.src))
    return len(endpoints)


__all__ = [
    "EndpointGroup",
    "TBAssignment",
    "timeline_slots",
    "build_endpoint_groups",
    "allocate_tbs",
    "connection_endpoint_count",
]

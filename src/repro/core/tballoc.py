"""Flexible, state-based thread-block allocation (section 4.4).

Existing backends allocate one TB per connection *per stage/channel*,
leaving many TBs idle for most of the kernel.  ResCCL instead:

1. starts from connection endpoints — one executor per
   (rank, direction, peer), covering that connection across the *whole*
   pipeline rather than per stage;
2. runs a timeline analysis over the scheduled pipeline: each endpoint's
   active window is the span of list-scheduled execution slots its tasks
   occupy (see :func:`timeline_slots`);
3. merges endpoints on the same rank whose windows never overlap
   (``active(l_i) ∩ active(l_j) = ∅``), packing serially-active
   connections onto one TB with classic interval-scheduling greedy
   allocation — optimal in the number of TBs for the window model.

The result is the Equation 7 reduction: ``|TB|`` drops from the number of
connection endpoints to the number of *concurrently* active ones.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ir.dag import DependencyDAG
from ..obs.spans import span as obs_span
from ..runtime.plan import Side
from .pipeline import GlobalPipeline


@dataclass
class EndpointGroup:
    """One connection endpoint's scheduled work.

    Attributes:
        rank: owning GPU.
        side: SEND or RECV role.
        peer: the GPU on the other end of the connection.
        task_ids: tasks, ordered by pipeline position.
        window: (first, last) timeline slot in which the endpoint is
            active (see :func:`timeline_slots`).
    """

    rank: int
    side: Side
    peer: int
    task_ids: List[int]
    window: Tuple[int, int]


@dataclass
class TBAssignment:
    """One allocated thread block: merged endpoint groups, in time order."""

    rank: int
    groups: List[EndpointGroup] = field(default_factory=list)

    @property
    def window(self) -> Tuple[int, int]:
        return (self.groups[0].window[0], self.groups[-1].window[1])

    def ordered_sides(self) -> List[Tuple[int, Side]]:
        """The TB's (task, side) sequence across its merged endpoints."""
        return [
            (task_id, group.side)
            for group in self.groups
            for task_id in group.task_ids
        ]

    @property
    def label(self) -> str:
        parts = [
            f"{g.side.value}{'->' if g.side is Side.SEND else '<-'}r{g.peer}"
            for g in self.groups
        ]
        return "resccl:" + "+".join(parts)


def timeline_slots(dag: DependencyDAG, pipeline: GlobalPipeline) -> Dict[int, int]:
    """Static timeline analysis: a discrete execution slot per task.

    List scheduling in pipeline order: a task runs one slot after its last
    data-dependency producer, and no earlier than its link's next free
    slot (one task per link per slot).  The resulting slots approximate
    *when* each connection is active — the ``active_l(t)`` intervals of
    section 4.4.
    """
    slots: Dict[int, int] = {}
    link_free: Dict[str, int] = defaultdict(int)
    for task_id in sorted(
        (t.task_id for t in dag.tasks), key=pipeline.order_key
    ):
        task = dag.task(task_id)
        after_deps = max(
            (slots[p] + 1 for p in dag.preds[task_id] if p in slots),
            default=0,
        )
        slot = max(after_deps, link_free[task.link])
        slots[task_id] = slot
        link_free[task.link] = slot + 1
    return slots


def build_endpoint_groups(
    dag: DependencyDAG, pipeline: GlobalPipeline
) -> List[EndpointGroup]:
    """Connection-endpoint grouping with timeline-analysis windows."""
    slots = timeline_slots(dag, pipeline)
    members: Dict[Tuple[int, Side, int], List[int]] = defaultdict(list)
    for task in dag.tasks:
        members[(task.src, Side.SEND, task.dst)].append(task.task_id)
        members[(task.dst, Side.RECV, task.src)].append(task.task_id)
    groups: List[EndpointGroup] = []
    for (rank, side, peer), task_ids in members.items():
        # Execute in timeline order: the list-scheduled slot is when the
        # task can actually run, which beats raw pipeline position when a
        # wavefront packs long chains.
        task_ids.sort(key=lambda t: (slots[t],) + pipeline.order_key(t))
        positions = [slots[t] for t in task_ids]
        groups.append(
            EndpointGroup(
                rank=rank,
                side=side,
                peer=peer,
                task_ids=task_ids,
                window=(min(positions), max(positions)),
            )
        )
    groups.sort(key=lambda g: (g.rank, g.window, g.side is Side.RECV, g.peer))
    return groups


def allocate_tbs(
    dag: DependencyDAG,
    pipeline: GlobalPipeline,
    pipelining_allowance: int = 0,
) -> List[TBAssignment]:
    """State-based allocation: merge serially-active endpoints per rank.

    Greedy interval scheduling: endpoints are taken in window-start
    order; each goes to the existing TB whose last window ended most
    recently but still strictly before this endpoint's window starts,
    or to a fresh TB when every TB's window overlaps.

    ``pipelining_allowance`` widens every window on the right by that
    many slots before testing disjointness: under task-level execution a
    connection's last task keeps streaming micro-batches past its static
    slot, so merging across a smaller gap would serialize work that
    actually overlaps.  Backends pass a value derived from the
    micro-batch count.
    """
    with obs_span("tballoc") as sp:
        by_rank: Dict[int, List[EndpointGroup]] = defaultdict(list)
        endpoint_count = 0
        for group in build_endpoint_groups(dag, pipeline):
            by_rank[group.rank].append(group)
            endpoint_count += 1

        merges_accepted = 0
        merges_rejected = 0
        assignments: List[TBAssignment] = []
        for rank in sorted(by_rank):
            open_tbs: List[TBAssignment] = []
            for group in by_rank[rank]:  # already sorted by window start
                best = None
                for tb in open_tbs:
                    if tb.window[1] + pipelining_allowance < group.window[0]:
                        if best is None or tb.window[1] > best.window[1]:
                            best = tb
                if best is None:
                    if open_tbs:
                        merges_rejected += 1
                    best = TBAssignment(rank=rank)
                    open_tbs.append(best)
                else:
                    merges_accepted += 1
                best.groups.append(group)
            assignments.extend(open_tbs)
        sp.set(
            endpoints=endpoint_count,
            tbs=len(assignments),
            merges_accepted=merges_accepted,
            merges_rejected=merges_rejected,
        )
    return assignments


def connection_endpoint_count(dag: DependencyDAG) -> int:
    """TBs a rigid connection-based allocation would need (for reporting)."""
    endpoints = set()
    for task in dag.tasks:
        endpoints.add((task.src, Side.SEND, task.dst))
        endpoints.add((task.dst, Side.RECV, task.src))
    return len(endpoints)


__all__ = [
    "EndpointGroup",
    "TBAssignment",
    "timeline_slots",
    "build_endpoint_groups",
    "allocate_tbs",
    "connection_endpoint_count",
]

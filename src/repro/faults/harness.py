"""Chaos harness: run an execution plan under an injected fault scenario.

:func:`run_with_faults` is the one-stop entry used by the CLI
(``resccl run --inject ...``), the resilience experiment, and the
benchmarks: it measures the clean baseline first (which also yields the
horizon the fault generator spreads events over), builds a seeded
:class:`~repro.faults.plan.FaultPlan` restricted to the contention edges
the plan actually exercises, then re-runs under injection with the
requested recovery policy and ring fallback armed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..obs.metrics import current_registry
from ..runtime.metrics import SimReport
from ..runtime.plan import ExecutionPlan
from ..runtime.simulator import Simulator
from .plan import FaultPlan, parse_inject_spec
from .recovery import RecoveryPolicy, ResilientRunner, make_policy


def _publish_fault_metrics(report: SimReport) -> None:
    """Publish the faulted run's counters into the ambient registry."""
    registry = current_registry()
    stats = report.fault_stats
    if registry is None or stats is None:
        return
    registry.inc("fault_injected_total", stats.injected)
    registry.inc("fault_stalls_detected_total", stats.detected_stalls)
    registry.inc("fault_recovered_total", stats.recovered)
    registry.inc("fault_retries_total", stats.retries)
    registry.inc("fault_unrecovered_total", stats.unrecovered)
    registry.inc("fault_fallbacks_total", stats.fallbacks)
    registry.inc("fault_replans_total", stats.replans)
    registry.set("fault_downtime_us", stats.downtime_us)
    for latency in stats.recovery_latencies_us:
        registry.observe("fault_recovery_latency_us", latency)


def plan_edges(plan: ExecutionPlan) -> List[str]:
    """Contention edges the plan's task routes actually traverse."""
    edges = set()
    for task in plan.dag.tasks:
        edges.update(plan.cluster.path(task.src, task.dst).edges)
    return sorted(edges)


@dataclass
class FaultRunOutcome:
    """Baseline vs faulted run of one plan under one fault scenario."""

    baseline: SimReport
    report: SimReport
    fault_plan: FaultPlan

    @property
    def goodput_ratio(self) -> float:
        """Faulted algbw as a fraction of the clean run's (<= ~1.0)."""
        if self.baseline.algo_bandwidth <= 0.0:
            return 0.0
        return self.report.algo_bandwidth / self.baseline.algo_bandwidth

    @property
    def slowdown(self) -> float:
        """Faulted completion time over clean completion time (>= ~1.0)."""
        if self.baseline.completion_time_us <= 0.0:
            return 1.0
        return self.report.completion_time_us / self.baseline.completion_time_us


def run_with_faults(
    plan: ExecutionPlan,
    inject: Union[str, FaultPlan, None],
    seed: int = 0,
    intensity: float = 1.0,
    recovery: Union[str, RecoveryPolicy, None] = "fallback",
    record_trace: bool = False,
    background_traffic=None,
    fallback_capacity_factor: float = 0.25,
    verify: bool = True,
    max_replans: int = 3,
) -> FaultRunOutcome:
    """Run ``plan`` clean, then under faults, and report both.

    Args:
        plan: the compiled execution plan to stress.
        inject: a ``--inject`` spec string (``link-flap``,
            ``link-kill:count=2``, ...), a prebuilt :class:`FaultPlan`,
            or ``None``/empty for a control run with the injector armed
            on an empty schedule.
        seed: single RNG seed for schedule generation (determinism).
        intensity: scales the generated event count (cumulative prefix).
        recovery: policy name (``none``/``retry``/``fallback``/
            ``replan``) or a policy instance.
        record_trace: record fault/recovery :class:`TraceEvent`\\ s.
        background_traffic: forwarded to both runs.
        fallback_capacity_factor: derating applied to dead edges when the
            run falls back to a ring plan (0 models "no failover path":
            a partition then raises ``RecoveryImpossible``).
        verify: prove the collective postcondition of every surviving
            run — including stitched checkpoint + resume executions —
            with the semantic delivery verifier.
        max_replans: re-replanning budget before escalating to ring.
    """
    baseline = Simulator(
        plan,
        background_traffic=background_traffic,
        record_trace=False,
    ).run()

    if isinstance(inject, FaultPlan):
        fault_plan = inject
    elif inject:
        fault_plan = parse_inject_spec(
            inject,
            edges=plan_edges(plan),
            horizon_us=baseline.completion_time_us,
            seed=seed,
            intensity=intensity,
            window_us=plan.config.watchdog_window_us,
        )
    else:
        fault_plan = FaultPlan(seed=seed)

    policy: Optional[RecoveryPolicy]
    if isinstance(recovery, RecoveryPolicy):
        policy = recovery
    else:
        policy = make_policy(recovery or "none")

    runner = ResilientRunner(
        plan,
        fault_plan,
        policy=policy,
        record_trace=record_trace,
        background_traffic=background_traffic,
        fallback_capacity_factor=fallback_capacity_factor,
        max_replans=max_replans,
        verify=verify,
    )
    report = runner.run()
    if plan.config.collapse_microbatches and plan.n_microbatches > 1:
        # Fast-fidelity temporal collapse is never applied on the fault
        # path: sibling micro-batch timing is observable through
        # checkpoints, per-instance retries, and resume stitching.  The
        # resilient runner builds Simulators directly (no collapse),
        # so record the refusal exactly as ``simulate`` would.
        report.counters.agg_collapse_disabled = 1
        baseline.counters.agg_collapse_disabled = 1
    _publish_fault_metrics(report)
    return FaultRunOutcome(
        baseline=baseline, report=report, fault_plan=fault_plan
    )


#: The seeded chaos corpus: every (algorithm, scenario, seed) cell is
#: replayed identically for each recovery policy under test.
CHAOS_ALGORITHMS = ("ring-allreduce", "ring-allgather", "mesh-allreduce")
CHAOS_SCENARIOS = ("link-flap", "link-kill", "chaos")
CHAOS_SEEDS = (0, 1)


class ChaosCorpusError(RuntimeError):
    """A chaos-corpus cell failed with an unexpected exception.

    The worker's formatted traceback is in the message; ``rows`` holds
    the full corpus result (failed cells carry ``outcome="failed"`` and
    an ``error`` traceback string) for post-mortem inspection.
    """

    def __init__(self, message: str, rows: List[dict]) -> None:
        super().__init__(message)
        self.rows = rows


def _chaos_cell(point: dict) -> dict:
    """Run one (algorithm, scenario, seed, policy) corpus cell.

    Module-level so the parallel sweep can pickle it; each worker
    rebuilds the cluster, backend, and plan from the cell coordinates
    (compiles hit the worker's plan cache across that worker's cells).
    Only :class:`SimulationDeadlock` is an expected outcome here; every
    other exception propagates to the sweep runner as a failure.
    """
    from ..algorithms.registry import build_algorithm
    from ..core.backend import ResCCLBackend
    from ..runtime.simulator import SimulationDeadlock
    from ..topology import Cluster

    cluster = Cluster(
        nodes=point["nodes"], gpus_per_node=point["gpus_per_node"]
    )
    backend = ResCCLBackend(max_microbatches=4)
    program = build_algorithm(point["algorithm"], cluster)
    plan = backend.plan(cluster, program, point["buffer_mb"] * 1e6)
    row = {
        "algorithm": point["algorithm"],
        "scenario": point["scenario"],
        "seed": point["seed"],
        "policy": point["policy"],
        "outcome": "completed",
        "goodput_ratio": 0.0,
        "replans": 0,
        "fallbacks": 0,
    }
    try:
        outcome = run_with_faults(
            plan,
            point["scenario"],
            seed=point["seed"],
            recovery=point["policy"],
            verify=True,
        )
    except SimulationDeadlock:
        row["outcome"] = "stalled"
    else:
        row["goodput_ratio"] = outcome.goodput_ratio
        stats = outcome.report.fault_stats
        if stats is not None:
            row["replans"] = stats.replans
            row["fallbacks"] = stats.fallbacks
    return row


def run_chaos_corpus(
    policies: Sequence[str] = ("retry", "fallback", "replan"),
    algorithms: Sequence[str] = CHAOS_ALGORITHMS,
    scenarios: Sequence[str] = CHAOS_SCENARIOS,
    seeds: Sequence[int] = CHAOS_SEEDS,
    nodes: int = 2,
    gpus_per_node: int = 4,
    buffer_mb: float = 8.0,
    jobs: int = 1,
    strict: bool = True,
) -> List[dict]:
    """Replay the seeded fault corpus under the given recovery policies.

    Every surviving run is postcondition-checked by the semantic
    delivery verifier (``verify=True`` hard-fails on any violation) —
    this is the CI chaos-matrix entry point.  Runs that legitimately
    cannot survive a scenario under a weak policy (e.g. ``retry`` against
    a permanent kill) are recorded as ``stalled`` rather than failed.

    ``jobs > 1`` fans cells out over worker processes.  An unexpected
    exception in any cell (in-process or in a worker) marks that cell
    ``outcome="failed"`` with its traceback in ``error``; with
    ``strict=True`` (the default) the corpus then raises
    :class:`ChaosCorpusError` carrying the first failing cell's
    traceback — worker exceptions are never silently dropped.

    Returns one row per (algorithm, scenario, seed, policy) cell, in
    corpus order regardless of ``jobs``.
    """
    from ..experiments.base import parallel_sweep

    points = [
        {
            "algorithm": algo_name,
            "scenario": scenario,
            "seed": seed,
            "policy": policy,
            "nodes": nodes,
            "gpus_per_node": gpus_per_node,
            "buffer_mb": buffer_mb,
        }
        for algo_name in algorithms
        for scenario in scenarios
        for seed in seeds
        for policy in policies
    ]
    outcomes = parallel_sweep(_chaos_cell, points, jobs=jobs, strict=False)

    rows: List[dict] = []
    first_failure = None
    for outcome in outcomes:
        if outcome.ok:
            rows.append(outcome.value)
            continue
        point = outcome.point
        rows.append(
            {
                "algorithm": point["algorithm"],
                "scenario": point["scenario"],
                "seed": point["seed"],
                "policy": point["policy"],
                "outcome": "failed",
                "goodput_ratio": 0.0,
                "replans": 0,
                "fallbacks": 0,
                "error": outcome.error,
            }
        )
        if first_failure is None:
            first_failure = outcome
    if strict and first_failure is not None:
        cell = first_failure.point
        raise ChaosCorpusError(
            f"chaos cell ({cell['algorithm']}, {cell['scenario']}, "
            f"seed={cell['seed']}, {cell['policy']}) failed:\n"
            f"{first_failure.error}",
            rows,
        )
    return rows


__all__ = [
    "CHAOS_ALGORITHMS",
    "CHAOS_SCENARIOS",
    "CHAOS_SEEDS",
    "ChaosCorpusError",
    "FaultRunOutcome",
    "plan_edges",
    "run_chaos_corpus",
    "run_with_faults",
]

"""Chaos harness: run an execution plan under an injected fault scenario.

:func:`run_with_faults` is the one-stop entry used by the CLI
(``resccl run --inject ...``), the resilience experiment, and the
benchmarks: it measures the clean baseline first (which also yields the
horizon the fault generator spreads events over), builds a seeded
:class:`~repro.faults.plan.FaultPlan` restricted to the contention edges
the plan actually exercises, then re-runs under injection with the
requested recovery policy and ring fallback armed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from ..obs.metrics import current_registry
from ..runtime.metrics import SimReport
from ..runtime.plan import ExecutionPlan
from ..runtime.simulator import Simulator
from .plan import FaultPlan, parse_inject_spec
from .recovery import RecoveryPolicy, ResilientRunner, make_policy


def _publish_fault_metrics(report: SimReport) -> None:
    """Publish the faulted run's counters into the ambient registry."""
    registry = current_registry()
    stats = report.fault_stats
    if registry is None or stats is None:
        return
    registry.inc("fault_injected_total", stats.injected)
    registry.inc("fault_stalls_detected_total", stats.detected_stalls)
    registry.inc("fault_recovered_total", stats.recovered)
    registry.inc("fault_retries_total", stats.retries)
    registry.inc("fault_unrecovered_total", stats.unrecovered)
    registry.inc("fault_fallbacks_total", stats.fallbacks)
    registry.set("fault_downtime_us", stats.downtime_us)
    for latency in stats.recovery_latencies_us:
        registry.observe("fault_recovery_latency_us", latency)


def plan_edges(plan: ExecutionPlan) -> List[str]:
    """Contention edges the plan's task routes actually traverse."""
    edges = set()
    for task in plan.dag.tasks:
        edges.update(plan.cluster.path(task.src, task.dst).edges)
    return sorted(edges)


@dataclass
class FaultRunOutcome:
    """Baseline vs faulted run of one plan under one fault scenario."""

    baseline: SimReport
    report: SimReport
    fault_plan: FaultPlan

    @property
    def goodput_ratio(self) -> float:
        """Faulted algbw as a fraction of the clean run's (<= ~1.0)."""
        if self.baseline.algo_bandwidth <= 0.0:
            return 0.0
        return self.report.algo_bandwidth / self.baseline.algo_bandwidth

    @property
    def slowdown(self) -> float:
        """Faulted completion time over clean completion time (>= ~1.0)."""
        if self.baseline.completion_time_us <= 0.0:
            return 1.0
        return self.report.completion_time_us / self.baseline.completion_time_us


def run_with_faults(
    plan: ExecutionPlan,
    inject: Union[str, FaultPlan, None],
    seed: int = 0,
    intensity: float = 1.0,
    recovery: Union[str, RecoveryPolicy, None] = "fallback",
    record_trace: bool = False,
    background_traffic=None,
    fallback_capacity_factor: float = 0.25,
) -> FaultRunOutcome:
    """Run ``plan`` clean, then under faults, and report both.

    Args:
        plan: the compiled execution plan to stress.
        inject: a ``--inject`` spec string (``link-flap``,
            ``link-kill:count=2``, ...), a prebuilt :class:`FaultPlan`,
            or ``None``/empty for a control run with the injector armed
            on an empty schedule.
        seed: single RNG seed for schedule generation (determinism).
        intensity: scales the generated event count (cumulative prefix).
        recovery: policy name (``none``/``retry``/``fallback``) or a
            policy instance.
        record_trace: record fault/recovery :class:`TraceEvent`\\ s.
        background_traffic: forwarded to both runs.
        fallback_capacity_factor: derating applied to dead edges when the
            run falls back to a ring plan.
    """
    baseline = Simulator(
        plan,
        background_traffic=background_traffic,
        record_trace=False,
    ).run()

    if isinstance(inject, FaultPlan):
        fault_plan = inject
    elif inject:
        fault_plan = parse_inject_spec(
            inject,
            edges=plan_edges(plan),
            horizon_us=baseline.completion_time_us,
            seed=seed,
            intensity=intensity,
            window_us=plan.config.watchdog_window_us,
        )
    else:
        fault_plan = FaultPlan(seed=seed)

    policy: Optional[RecoveryPolicy]
    if isinstance(recovery, RecoveryPolicy):
        policy = recovery
    else:
        policy = make_policy(recovery or "none")

    runner = ResilientRunner(
        plan,
        fault_plan,
        policy=policy,
        record_trace=record_trace,
        background_traffic=background_traffic,
        fallback_capacity_factor=fallback_capacity_factor,
    )
    report = runner.run()
    _publish_fault_metrics(report)
    return FaultRunOutcome(
        baseline=baseline, report=report, fault_plan=fault_plan
    )


__all__ = ["FaultRunOutcome", "plan_edges", "run_with_faults"]

"""Recovery policies: what to do when the watchdog declares a stall.

Four escalation rungs, mirroring production CCL behavior:

1. **Retry with exponential backoff** (transient link failures) — starved
   flows on downed edges are aborted and re-admission is attempted at
   geometrically growing intervals; the remaining bytes are retransmitted
   when the fabric heals.
2. **Immediate re-admission after a flap** — the injector notifies the
   policy the instant a downed edge restores, so pending retries skip the
   rest of their backoff.
3. **Replan and resume** (permanent link death) — the run checkpoints its
   delivered progress, compiles the *residual collective* (only the
   undelivered instances, rerouted around dead edges) through the full
   HPDS → TB-allocation → kernel-generation pipeline, and resumes from
   the checkpoint time.  The stitched execution is proved correct by the
   semantic delivery verifier before the report is returned.
4. **Graceful degradation** (replanning infeasible, e.g. a partitioned
   topology with a modeled failover path) — the run abandons the compiled
   plan and falls back to a conservative ring algorithm on a cluster
   whose dead edges are derated to a slow failover path, trading
   bandwidth for liveness.  Without a failover path
   (``fallback_capacity_factor == 0``) a partition is unrecoverable and
   surfaces as :class:`RecoveryImpossible`.

Policies are pluggable: the simulator only calls ``bind`` /
``on_stall`` / ``on_edge_restored`` / ``on_event``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..algorithms.ring import (
    ring_allgather,
    ring_allreduce,
    ring_reducescatter,
)
from ..analysis.verify_delivery import verify_delivery, verify_stitched
from ..baselines.msccl import MSCCLBackend
from ..ir.task import Collective
from ..obs.metrics import current_registry
from ..runtime.metrics import FaultStats, SimReport, TraceEvent
from ..runtime.plan import ExecutionPlan
from ..runtime.simulator import SimulationDeadlock, Simulator
from .checkpoint import CollectiveCheckpoint
from .injector import FaultInjector
from .plan import FaultPlan
from .replan import ReplanInfeasible, ResumePlan, build_resume_plan
from .watchdog import ProgressStall

#: The policy vocabulary `make_policy` accepts (CLI ``choices=`` source).
POLICY_NAMES = ("none", "retry", "fallback", "replan")


def backoff_delay(base: float, multiplier: float, attempt: int) -> float:
    """Geometric backoff delay for the given (0-based) retry attempt.

    The one backoff curve shared by every retry rung in the tree:
    :class:`RetryBackoffPolicy` spaces flow re-admissions with it (in
    simulated microseconds) and the service worker supervisor
    (:mod:`repro.service.workers`) spaces crashed-worker job retries
    with it (in wall-clock seconds).
    """
    return base * (multiplier ** attempt)


class FallbackRequested(RuntimeError):
    """Raised through ``Simulator.run`` to demand algorithm fallback."""

    def __init__(
        self,
        dead_edges: List[str],
        at_us: float,
        stall: Optional[ProgressStall] = None,
        fault_stats: Optional[FaultStats] = None,
    ) -> None:
        super().__init__(
            f"permanent link failure on {', '.join(dead_edges)} at "
            f"t={at_us:.1f}us; falling back to ring"
        )
        self.dead_edges = dead_edges
        self.at_us = at_us
        self.stall = stall
        self.fault_stats = fault_stats


class ReplanRequested(RuntimeError):
    """Raised through ``Simulator.run`` to demand replan-and-resume.

    Carries the still-intact (stalled) simulator so the runner can
    checkpoint its delivered progress before compiling a resume plan.
    """

    def __init__(
        self,
        sim: Simulator,
        dead_edges: List[str],
        at_us: float,
        stall: Optional[ProgressStall] = None,
        fault_stats: Optional[FaultStats] = None,
    ) -> None:
        super().__init__(
            f"permanent link failure on {', '.join(dead_edges)} at "
            f"t={at_us:.1f}us; checkpointing for replan"
        )
        self.sim = sim
        self.dead_edges = dead_edges
        self.at_us = at_us
        self.stall = stall
        self.fault_stats = fault_stats


class RecoveryImpossible(SimulationDeadlock):
    """No recovery rung can complete the collective (e.g. a partition).

    A :class:`~repro.runtime.simulator.SimulationDeadlock` subclass so
    callers that already map deadlocks to a hard error (the CLI's exit
    code 2) treat an unrecoverable fault the same way instead of hanging
    or mis-reporting success.
    """


class RecoveryPolicy:
    """No-op base policy: detect, diagnose, but never intervene."""

    name = "none"

    def bind(self, sim) -> None:
        """Called once when the simulator adopts this policy."""

    def fresh(self) -> "RecoveryPolicy":
        """A clean-state clone for a follow-up (resume) simulation."""
        return self

    def on_stall(self, sim, stall: ProgressStall) -> bool:
        """React to a detected stall; True means recovery is in progress."""
        return False

    def on_edge_restored(self, sim, edge: str) -> None:
        """A downed edge came back up."""

    def on_event(self, sim, payload) -> None:
        """A scheduled ``retry`` event fired."""


@dataclass
class _PendingRetry:
    task_id: int
    mb: int
    sender: int
    edges: Tuple[str, ...]
    remaining: float
    cap: float
    stalled_since: float
    attempts: int = 0


@dataclass
class RetryBackoffPolicy(RecoveryPolicy):
    """Retry-with-backoff for transient faults, optional escalation.

    Args:
        base_us: first retry delay; defaults to a quarter of the
            watchdog window when left ``None``.
        multiplier: geometric backoff growth per failed attempt.
        max_attempts: retries before a transfer is declared unrecoverable.
        fallback: escalate permanent/unrecoverable link death to
            :class:`FallbackRequested` instead of giving up.
        replan: escalate permanent/unrecoverable link death to
            :class:`ReplanRequested` (checkpoint + residual replanning);
            takes precedence over ``fallback``, which remains the
            runner's final rung when replanning is infeasible.
    """

    base_us: Optional[float] = None
    multiplier: float = 2.0
    max_attempts: int = 6
    fallback: bool = False
    replan: bool = False

    name = "retry"

    _pending: Dict[int, _PendingRetry] = field(default_factory=dict)
    _next_id: int = 0

    def bind(self, sim) -> None:
        if self.base_us is None:
            self.base_us = max(1.0, sim.watchdog_window_us / 4.0)

    def fresh(self) -> "RetryBackoffPolicy":
        return RetryBackoffPolicy(
            base_us=self.base_us,
            multiplier=self.multiplier,
            max_attempts=self.max_attempts,
            fallback=self.fallback,
            replan=self.replan,
        )

    # ------------------------------------------------------------------

    def on_stall(self, sim, stall: ProgressStall) -> bool:
        injector = sim.injector
        dead = [
            edge for edge in stall.down_edges
            if injector is not None and injector.is_permanent(edge)
        ]
        if dead:
            self._escalate(sim, dead, stall=stall)
            return False
        down = set(stall.down_edges)
        acted = False
        for flow, task_id, mb, sender in list(sim.zero_rate_flows()):
            if not any(edge in down for edge in flow.edges):
                continue
            flow, task_id, mb, sender = sim.abort_flow(flow.flow_id)
            retry_id = self._next_id
            self._next_id += 1
            self._pending[retry_id] = _PendingRetry(
                task_id=task_id,
                mb=mb,
                sender=sender,
                edges=tuple(flow.edges),
                remaining=flow.remaining,
                cap=flow.cap,
                stalled_since=sim._last_progress_us,
            )
            if sim.fault_stats is not None:
                sim.fault_stats.retries += 1
            sim._post(sim.now + self.base_us, "retry", retry_id)
            acted = True
        return acted or bool(self._pending)

    def _escalate(self, sim, dead: List[str], stall=None) -> None:
        """Permanent/unrecoverable death: replan first, fallback second."""
        if self.replan:
            raise ReplanRequested(
                sim, dead, sim.now, stall=stall,
                fault_stats=sim.fault_stats,
            )
        if self.fallback:
            raise FallbackRequested(
                dead, sim.now, stall=stall, fault_stats=sim.fault_stats
            )

    def on_event(self, sim, retry_id: int) -> None:
        entry = self._pending.get(retry_id)
        if entry is None:
            return  # already re-admitted via on_edge_restored
        if self._edges_up(sim, entry.edges):
            self._readmit(sim, retry_id, entry)
            return
        entry.attempts += 1
        if sim.fault_stats is not None:
            sim.fault_stats.retries += 1
        if entry.attempts >= self.max_attempts:
            del self._pending[retry_id]
            down = [
                e for e in entry.edges
                if sim.network.capacity_factor(e) <= 0.0
            ]
            if down:
                self._escalate(sim, down)
            if sim.fault_stats is not None:
                sim.fault_stats.unrecovered += 1
            return
        delay = backoff_delay(self.base_us, self.multiplier, entry.attempts)
        sim._post(sim.now + delay, "retry", retry_id)

    def on_edge_restored(self, sim, edge: str) -> None:
        for retry_id, entry in list(self._pending.items()):
            if edge in entry.edges and self._edges_up(sim, entry.edges):
                self._readmit(sim, retry_id, entry)

    # ------------------------------------------------------------------

    @staticmethod
    def _edges_up(sim, edges: Tuple[str, ...]) -> bool:
        return all(sim.network.capacity_factor(e) > 0.0 for e in edges)

    def _readmit(self, sim, retry_id: int, entry: _PendingRetry) -> None:
        del self._pending[retry_id]
        task = sim.dag.task(entry.task_id)
        route = sim.cluster.path(task.src, task.dst)
        start = sim.now + route.latency_us * sim.config.protocol.latency_factor
        flow, changed = sim.network.start_flow(
            edges=route.edges, nbytes=entry.remaining, cap=entry.cap,
            now=start,
        )
        sim.register_flow(flow, changed, entry.task_id, entry.mb, entry.sender)
        if sim.fault_stats is not None:
            sim.fault_stats.recovered += 1
            sim.fault_stats.recovery_latencies_us.append(
                sim.now - entry.stalled_since
            )
        sim.record_fault_event(
            "recover:readmit", entry.stalled_since, sim.now,
            tb_index=entry.sender,
        )


def make_policy(name: str) -> Optional[RecoveryPolicy]:
    """CLI/experiment policy names -> policy instances (or None)."""
    name = (name or "none").lower()
    if name == "none":
        return None
    if name == "retry":
        return RetryBackoffPolicy(fallback=False)
    if name in ("fallback", "retry+fallback"):
        return RetryBackoffPolicy(fallback=True)
    if name in ("replan", "retry+replan"):
        # Ring fallback stays armed as the final rung for the runner to
        # use when replanning is infeasible.
        return RetryBackoffPolicy(replan=True, fallback=True)
    valid = ", ".join(POLICY_NAMES)
    raise ValueError(
        f"unknown recovery policy {name!r}; valid policies: {valid}"
    )


_RING_BUILDERS = {
    Collective.ALLREDUCE: ring_allreduce,
    Collective.ALLGATHER: ring_allgather,
    Collective.REDUCESCATTER: ring_reducescatter,
}

#: One resume segment: the resume plan and its executed task order.
ResumeSegment = Tuple[ResumePlan, List[int]]


class ResilientRunner:
    """Runs a plan under faults with replan-and-resume plus ring fallback.

    The primary plan runs with the injector armed.  On permanent link
    death the recovery policy escalates:

    * :class:`ReplanRequested` (the ``replan`` policy) — the runner
      checkpoints delivered progress, compiles a resume plan for the
      residual collective on the degraded cluster, re-arms the remaining
      fault timeline, and resumes from the checkpoint time.  A further
      death during the resume run triggers re-replanning (bounded by
      ``max_replans``).  Before reporting, the stitched
      checkpoint + resume execution is proved exactly-once by the
      semantic delivery verifier.
    * :class:`FallbackRequested` (the ``fallback`` policy, or the final
      rung when replanning is infeasible and a failover path is modeled)
      — the collective restarts as a conservative ring on a cluster whose
      dead edges are derated to ``fallback_capacity_factor`` of their
      healthy capacity, and the time burned in the failed attempt is
      charged to the final completion time.

    A partitioned topology with no failover path
    (``fallback_capacity_factor == 0``) raises
    :class:`RecoveryImpossible`.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        fault_plan: FaultPlan,
        policy: Optional[RecoveryPolicy] = None,
        record_trace: bool = False,
        background_traffic=None,
        fallback_capacity_factor: float = 0.25,
        max_replans: int = 3,
        verify: bool = True,
    ) -> None:
        self.plan = plan
        self.fault_plan = fault_plan
        self.policy = policy
        self.record_trace = record_trace
        self.background_traffic = background_traffic
        self.fallback_capacity_factor = fallback_capacity_factor
        self.max_replans = max_replans
        self.verify = verify

    def run(self) -> SimReport:
        sim = Simulator(
            self.plan,
            background_traffic=self.background_traffic,
            record_trace=self.record_trace,
            injector=FaultInjector(self.fault_plan),
            recovery=self.policy,
        )
        try:
            report = sim.run()
        except FallbackRequested as request:
            return self._run_fallback(request)
        except ReplanRequested as request:
            return self._run_replan(request)
        if self.verify and self.fault_plan.armed:
            verify_delivery(
                self.plan, order=report.completion_order
            ).raise_if_failed()
        return report

    # ------------------------------------------------------------------
    # Replan-and-resume
    # ------------------------------------------------------------------

    def _run_replan(self, request: ReplanRequested) -> SimReport:
        stats = request.fault_stats or FaultStats()
        base_checkpoint = CollectiveCheckpoint.capture(
            request.sim, request.dead_edges
        )
        checkpoint = base_checkpoint
        dead = set(request.dead_edges)
        segments: List[ResumeSegment] = []
        replan_events: List[TraceEvent] = []
        report: Optional[SimReport] = None

        while True:
            if stats.replans >= self.max_replans:
                return self._final_fallback(
                    sorted(dead), checkpoint.at_us, stats,
                    reason=f"replan budget ({self.max_replans}) exhausted",
                )
            try:
                resume = build_resume_plan(
                    self.plan,
                    checkpoint,
                    sorted(dead),
                    dead_edge_factor=self._dead_edge_factor(),
                )
            except ReplanInfeasible as exc:
                if exc.partitioned and self.fallback_capacity_factor <= 0.0:
                    raise RecoveryImpossible(
                        f"unrecoverable fault: {exc} and no failover path "
                        f"is modeled (fallback_capacity_factor=0)"
                    ) from exc
                return self._final_fallback(
                    sorted(dead), checkpoint.at_us, stats, reason=str(exc)
                )
            stats.replans += 1
            stats.recovery_latencies_us.append(
                checkpoint.at_us - request.sim._last_progress_us
            )
            replan_events.append(
                TraceEvent(
                    tb_index=-1, rank=-1, kind="recover:checkpoint",
                    start_us=checkpoint.at_us, end_us=checkpoint.at_us,
                )
            )
            residual_faults = self._residual_fault_plan(checkpoint.at_us)
            policy = self.policy.fresh() if self.policy is not None else None
            sim = Simulator(
                resume.plan,
                background_traffic=self.background_traffic,
                record_trace=self.record_trace,
                injector=FaultInjector(residual_faults),
                recovery=policy,
                start_at_us=checkpoint.at_us,
            )
            try:
                report = sim.run()
            except ReplanRequested as again:
                partial = again.sim.export_checkpoint()
                completed_ids = [tid for tid, _mb in partial["completed"]]
                segments.append((resume, completed_ids))
                delivered = [
                    (resume.metas[tid].orig_task_id, resume.metas[tid].mb)
                    for tid in completed_ids
                    if resume.metas[tid].delivers
                ]
                dead |= set(again.dead_edges)
                checkpoint = checkpoint.advanced(
                    delivered, again.at_us, sorted(dead)
                )
                self._merge_stats(stats, again.fault_stats)
                replan_events.append(
                    TraceEvent(
                        tb_index=-1, rank=-1, kind="recover:replan",
                        start_us=resume.checkpoint.at_us,
                        end_us=again.at_us,
                    )
                )
                continue
            except FallbackRequested as again:
                self._merge_stats(stats, again.fault_stats)
                return self._final_fallback(
                    sorted(dead | set(again.dead_edges)), again.at_us,
                    stats, reason="resume plan hit a further dead edge",
                )
            segments.append(
                (resume, [tid for tid, _mb in report.completion_order])
            )
            replan_events.append(
                TraceEvent(
                    tb_index=-1, rank=-1, kind="recover:replan",
                    start_us=resume.checkpoint.at_us,
                    end_us=report.completion_time_us,
                )
            )
            self._merge_stats(stats, report.fault_stats)
            break

        if self.verify:
            verify_stitched(
                self.plan,
                base_checkpoint.completed,
                [(resume.metas, order) for resume, order in segments],
            ).raise_if_failed()
        registry = current_registry()
        if registry is not None:
            registry.inc("recovery_resumes_total", len(segments))

        # Stitch: the resume simulation already ran in global time
        # (start_at_us = checkpoint time), so its completion time charges
        # the failed attempt automatically.
        report.plan_name = f"{self.plan.name}+replan"
        report.total_bytes = self.plan.total_bytes
        report.fault_stats = stats
        report.trace = sorted(
            [*report.trace, *replan_events],
            key=lambda e: (e.start_us, e.end_us),
        )
        return report

    def _dead_edge_factor(self) -> float:
        """Resume-cluster derating for dead edges (routes avoid them)."""
        if self.fallback_capacity_factor > 0.0:
            return self.fallback_capacity_factor
        return 0.05

    def _residual_fault_plan(self, at_us: float) -> FaultPlan:
        """The fault timeline still ahead of the checkpoint.

        Events at or before the checkpoint have played out: permanent
        kills live on as the resume cluster's derated dead edges, and
        elapsed transient windows are over.  Later events re-arm so a
        second death can land *during* the resume run.
        """
        return FaultPlan(
            events=[e for e in self.fault_plan.events if e.at_us > at_us],
            seed=self.fault_plan.seed,
        )

    @staticmethod
    def _merge_stats(base: FaultStats, extra: Optional[FaultStats]) -> None:
        if extra is None or extra is base:
            return
        base.detected_stalls += extra.detected_stalls
        base.recovered += extra.recovered
        base.retries += extra.retries
        base.unrecovered += extra.unrecovered
        base.downtime_us += extra.downtime_us
        base.recovery_latencies_us.extend(extra.recovery_latencies_us)

    # ------------------------------------------------------------------
    # Ring fallback (final rung)
    # ------------------------------------------------------------------

    def _run_fallback(self, request: FallbackRequested) -> SimReport:
        stats = request.fault_stats or FaultStats()
        return self._final_fallback(
            request.dead_edges, request.at_us, stats,
            reason=str(request), original=request,
        )

    def _final_fallback(
        self,
        dead_edges: Sequence[str],
        at_us: float,
        stats: FaultStats,
        reason: str = "",
        original: Optional[FallbackRequested] = None,
    ) -> SimReport:
        program = self.plan.program
        builder = _RING_BUILDERS.get(program.collective)
        if builder is None:
            if original is not None:
                raise original
            raise RecoveryImpossible(
                f"no ring fallback for collective {program.collective} "
                f"({reason})"
            )
        if self.fallback_capacity_factor <= 0.0:
            raise RecoveryImpossible(
                f"ring fallback needs a failover path but "
                f"fallback_capacity_factor=0 ({reason})"
            )
        ring = builder(
            program.nranks, name=f"{program.name}-ring-fallback"
        )
        degraded = self.plan.cluster.degraded(
            dead_edges, self.fallback_capacity_factor
        )
        backend = MSCCLBackend(
            max_microbatches=max(1, self.plan.n_microbatches)
        )
        fallback_plan = backend.plan(degraded, ring, self.plan.total_bytes)
        fallback_plan.name = f"{self.plan.name}+ring-fallback"
        report = Simulator(
            fallback_plan,
            background_traffic=self.background_traffic,
            record_trace=self.record_trace,
        ).run()
        if self.verify:
            # The ring restarts the collective from the input buffers, so
            # it is verified standalone (the abandoned partial progress is
            # discarded, not stitched).
            verify_delivery(
                fallback_plan, order=report.completion_order
            ).raise_if_failed()
        stats.fallbacks += 1
        stats.fallback_overhead_us += at_us
        stats.recovery_latencies_us.append(at_us)
        # The failed primary attempt is real elapsed time: charge it.
        report.completion_time_us += at_us
        report.fault_stats = stats
        report.trace.append(
            # Recovery event spanning the abandoned attempt.
            TraceEvent(
                tb_index=-1, rank=-1, kind="recover:fallback",
                start_us=0.0, end_us=at_us,
            )
        )
        return report


__all__ = [
    "POLICY_NAMES",
    "backoff_delay",
    "RecoveryPolicy",
    "RetryBackoffPolicy",
    "FallbackRequested",
    "ReplanRequested",
    "RecoveryImpossible",
    "ResilientRunner",
    "ResumeSegment",
    "make_policy",
]

"""Recovery policies: what to do when the watchdog declares a stall.

Three escalation rungs, mirroring production CCL behavior:

1. **Retry with exponential backoff** (transient link failures) — starved
   flows on downed edges are aborted and re-admission is attempted at
   geometrically growing intervals; the remaining bytes are retransmitted
   when the fabric heals.
2. **Immediate re-admission after a flap** — the injector notifies the
   policy the instant a downed edge restores, so pending retries skip the
   rest of their backoff.
3. **Graceful degradation** (permanent link death) — the run abandons the
   compiled plan and falls back to a conservative ring algorithm on a
   cluster whose dead edges are derated to a slow failover path
   (rerouted/TCP-class capacity), trading bandwidth for liveness.

Policies are pluggable: the simulator only calls ``bind`` /
``on_stall`` / ``on_edge_restored`` / ``on_event``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..algorithms.ring import (
    ring_allgather,
    ring_allreduce,
    ring_reducescatter,
)
from ..baselines.msccl import MSCCLBackend
from ..ir.task import Collective
from ..runtime.metrics import FaultStats, SimReport
from ..runtime.plan import ExecutionPlan
from ..runtime.simulator import Simulator
from .injector import FaultInjector
from .plan import FaultPlan
from .watchdog import ProgressStall


class FallbackRequested(RuntimeError):
    """Raised through ``Simulator.run`` to demand algorithm fallback."""

    def __init__(
        self,
        dead_edges: List[str],
        at_us: float,
        stall: Optional[ProgressStall] = None,
        fault_stats: Optional[FaultStats] = None,
    ) -> None:
        super().__init__(
            f"permanent link failure on {', '.join(dead_edges)} at "
            f"t={at_us:.1f}us; falling back to ring"
        )
        self.dead_edges = dead_edges
        self.at_us = at_us
        self.stall = stall
        self.fault_stats = fault_stats


class RecoveryPolicy:
    """No-op base policy: detect, diagnose, but never intervene."""

    name = "none"

    def bind(self, sim) -> None:
        """Called once when the simulator adopts this policy."""

    def on_stall(self, sim, stall: ProgressStall) -> bool:
        """React to a detected stall; True means recovery is in progress."""
        return False

    def on_edge_restored(self, sim, edge: str) -> None:
        """A downed edge came back up."""

    def on_event(self, sim, payload) -> None:
        """A scheduled ``retry`` event fired."""


@dataclass
class _PendingRetry:
    task_id: int
    mb: int
    sender: int
    edges: Tuple[str, ...]
    remaining: float
    cap: float
    stalled_since: float
    attempts: int = 0


@dataclass
class RetryBackoffPolicy(RecoveryPolicy):
    """Retry-with-backoff for transient faults, optional ring fallback.

    Args:
        base_us: first retry delay; defaults to a quarter of the
            watchdog window when left ``None``.
        multiplier: geometric backoff growth per failed attempt.
        max_attempts: retries before a transfer is declared unrecoverable.
        fallback: escalate permanent/unrecoverable link death to
            :class:`FallbackRequested` instead of giving up.
    """

    base_us: Optional[float] = None
    multiplier: float = 2.0
    max_attempts: int = 6
    fallback: bool = False

    name = "retry"

    _pending: Dict[int, _PendingRetry] = field(default_factory=dict)
    _next_id: int = 0

    def bind(self, sim) -> None:
        if self.base_us is None:
            self.base_us = max(1.0, sim.watchdog_window_us / 4.0)

    # ------------------------------------------------------------------

    def on_stall(self, sim, stall: ProgressStall) -> bool:
        injector = sim.injector
        dead = [
            edge for edge in stall.down_edges
            if injector is not None and injector.is_permanent(edge)
        ]
        if dead:
            if self.fallback:
                raise FallbackRequested(
                    dead, sim.now, stall=stall, fault_stats=sim.fault_stats
                )
            return False
        down = set(stall.down_edges)
        acted = False
        for flow, task_id, mb, sender in list(sim.zero_rate_flows()):
            if not any(edge in down for edge in flow.edges):
                continue
            flow, task_id, mb, sender = sim.abort_flow(flow.flow_id)
            retry_id = self._next_id
            self._next_id += 1
            self._pending[retry_id] = _PendingRetry(
                task_id=task_id,
                mb=mb,
                sender=sender,
                edges=tuple(flow.edges),
                remaining=flow.remaining,
                cap=flow.cap,
                stalled_since=sim._last_progress_us,
            )
            if sim.fault_stats is not None:
                sim.fault_stats.retries += 1
            sim._post(sim.now + self.base_us, "retry", retry_id)
            acted = True
        return acted or bool(self._pending)

    def on_event(self, sim, retry_id: int) -> None:
        entry = self._pending.get(retry_id)
        if entry is None:
            return  # already re-admitted via on_edge_restored
        if self._edges_up(sim, entry.edges):
            self._readmit(sim, retry_id, entry)
            return
        entry.attempts += 1
        if sim.fault_stats is not None:
            sim.fault_stats.retries += 1
        if entry.attempts >= self.max_attempts:
            del self._pending[retry_id]
            if self.fallback:
                raise FallbackRequested(
                    [e for e in entry.edges
                     if sim.network.capacity_factor(e) <= 0.0],
                    sim.now,
                    fault_stats=sim.fault_stats,
                )
            if sim.fault_stats is not None:
                sim.fault_stats.unrecovered += 1
            return
        delay = self.base_us * (self.multiplier ** entry.attempts)
        sim._post(sim.now + delay, "retry", retry_id)

    def on_edge_restored(self, sim, edge: str) -> None:
        for retry_id, entry in list(self._pending.items()):
            if edge in entry.edges and self._edges_up(sim, entry.edges):
                self._readmit(sim, retry_id, entry)

    # ------------------------------------------------------------------

    @staticmethod
    def _edges_up(sim, edges: Tuple[str, ...]) -> bool:
        return all(sim.network.capacity_factor(e) > 0.0 for e in edges)

    def _readmit(self, sim, retry_id: int, entry: _PendingRetry) -> None:
        del self._pending[retry_id]
        task = sim.dag.task(entry.task_id)
        route = sim.cluster.path(task.src, task.dst)
        start = sim.now + route.latency_us * sim.config.protocol.latency_factor
        flow, changed = sim.network.start_flow(
            edges=route.edges, nbytes=entry.remaining, cap=entry.cap,
            now=start,
        )
        sim.register_flow(flow, changed, entry.task_id, entry.mb, entry.sender)
        if sim.fault_stats is not None:
            sim.fault_stats.recovered += 1
            sim.fault_stats.recovery_latencies_us.append(
                sim.now - entry.stalled_since
            )
        sim.record_fault_event(
            "recover:readmit", entry.stalled_since, sim.now,
            tb_index=entry.sender,
        )


def make_policy(name: str) -> Optional[RecoveryPolicy]:
    """CLI/experiment policy names -> policy instances (or None)."""
    name = (name or "none").lower()
    if name == "none":
        return None
    if name == "retry":
        return RetryBackoffPolicy(fallback=False)
    if name in ("fallback", "retry+fallback"):
        return RetryBackoffPolicy(fallback=True)
    raise ValueError(
        f"unknown recovery policy {name!r} (none/retry/fallback)"
    )


_RING_BUILDERS = {
    Collective.ALLREDUCE: ring_allreduce,
    Collective.ALLGATHER: ring_allgather,
    Collective.REDUCESCATTER: ring_reducescatter,
}


class ResilientRunner:
    """Runs a plan under faults with automatic ring fallback.

    The primary plan runs with the injector armed; if the recovery policy
    escalates to :class:`FallbackRequested` (permanent link death), the
    collective is re-planned as a conservative ring on a cluster whose
    dead edges are derated to ``fallback_capacity_factor`` of their
    healthy capacity (the rerouted failover path), and the time burned in
    the failed attempt is charged to the final completion time.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        fault_plan: FaultPlan,
        policy: Optional[RecoveryPolicy] = None,
        record_trace: bool = False,
        background_traffic=None,
        fallback_capacity_factor: float = 0.25,
    ) -> None:
        self.plan = plan
        self.fault_plan = fault_plan
        self.policy = policy
        self.record_trace = record_trace
        self.background_traffic = background_traffic
        self.fallback_capacity_factor = fallback_capacity_factor

    def run(self) -> SimReport:
        sim = Simulator(
            self.plan,
            background_traffic=self.background_traffic,
            record_trace=self.record_trace,
            injector=FaultInjector(self.fault_plan),
            recovery=self.policy,
        )
        try:
            return sim.run()
        except FallbackRequested as request:
            return self._run_fallback(request)

    def _run_fallback(self, request: FallbackRequested) -> SimReport:
        program = self.plan.program
        builder = _RING_BUILDERS.get(program.collective)
        if builder is None:
            raise request
        ring = builder(
            program.nranks, name=f"{program.name}-ring-fallback"
        )
        degraded = self.plan.cluster.degraded(
            request.dead_edges, self.fallback_capacity_factor
        )
        backend = MSCCLBackend(
            max_microbatches=max(1, self.plan.n_microbatches)
        )
        fallback_plan = backend.plan(degraded, ring, self.plan.total_bytes)
        fallback_plan.name = f"{self.plan.name}+ring-fallback"
        report = Simulator(
            fallback_plan,
            background_traffic=self.background_traffic,
            record_trace=self.record_trace,
        ).run()
        stats = request.fault_stats or FaultStats()
        stats.fallbacks += 1
        stats.fallback_overhead_us += request.at_us
        stats.recovery_latencies_us.append(request.at_us)
        # The failed primary attempt is real elapsed time: charge it.
        report.completion_time_us += request.at_us
        report.fault_stats = stats
        report.trace.append(
            # Recovery event spanning the abandoned attempt.
            _fallback_trace_event(request.at_us)
        )
        return report


def _fallback_trace_event(at_us: float):
    from ..runtime.metrics import TraceEvent

    return TraceEvent(
        tb_index=-1, rank=-1, kind="recover:fallback",
        start_us=0.0, end_us=at_us,
    )


__all__ = [
    "RecoveryPolicy",
    "RetryBackoffPolicy",
    "FallbackRequested",
    "ResilientRunner",
    "make_policy",
]

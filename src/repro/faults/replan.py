"""Residual-collective replanning on a degraded topology.

Given a :class:`~repro.faults.checkpoint.CollectiveCheckpoint` and the
set of permanently dead edges, this module rebuilds a *resume plan* for
only the remaining demand:

1. **Residue extraction** — every ``(task, micro-batch)`` instance not in
   the checkpoint's completion set.  Completion is closed under DAG
   predecessors, so the residue is closed under successors: each chunk's
   step-chain is truncated at its last delivered hop and the remainder is
   a well-formed sub-collective.
2. **Chunk flattening** — residual instances are re-labelled into a
   synthetic chunk space (``mb * chunks_per_microbatch + chunk``) with
   steps doubled, so one :func:`~repro.ir.dag.build_dag` pass over the
   flattened transfers reconstructs exactly the intra-micro-batch hazard
   chains (RAW/WAW/WAR per slot) while keeping micro-batches independent.
   The resume plan then runs as a single-micro-batch plan.
3. **Dead-edge rerouting** — the cluster's routes are fixed per rank
   pair, so a transfer whose route crosses a dead edge is rewritten as a
   two-hop relay through an intermediate rank with live routes on both
   legs: a ``relay-in`` copy (even step slot) into relay scratch and a
   ``relay-out`` carrying the original op (odd step slot).  If some
   transfer has neither a live direct route nor any live relay, the
   surviving fabric cannot realize the residue — :class:`ReplanInfeasible`
   with ``partitioned=True``.
4. **Pipeline re-entry** — the residual DAG is built against the degraded
   cluster and handed to :func:`repro.core.compiler.compile_residual`
   (HPDS → state-based TB allocation), then lowered to TB programs: the
   same compile stack as a primary plan, minus DSL parsing/validation.

Every resume task carries a
:class:`~repro.analysis.verify_delivery.ResumeTaskMeta` record tying it
back to the original instance it serves, which is what the semantic
delivery verifier uses to prove the stitched execution exact-once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..analysis.verify_delivery import (
    DIRECT,
    RELAY_IN,
    RELAY_OUT,
    ResumeTaskMeta,
)
from ..core.compiler import compile_residual
from ..core.kernelgen import lower_to_programs
from ..ir.dag import build_dag
from ..ir.task import CommType, Transfer
from ..lang.builder import AlgoProgram
from ..obs.metrics import current_registry
from ..obs.spans import span as obs_span
from ..runtime.plan import ExecutionPlan
from ..topology import Cluster
from .checkpoint import CollectiveCheckpoint


class ReplanInfeasible(RuntimeError):
    """The residual collective cannot be realized on the live fabric."""

    def __init__(
        self,
        message: str,
        partitioned: bool = False,
        unreachable: Tuple[int, int] = (-1, -1),
    ) -> None:
        super().__init__(message)
        self.partitioned = partitioned
        self.unreachable = unreachable


@dataclass
class ResumePlan:
    """A compiled residual collective plus its semantic metadata."""

    plan: ExecutionPlan
    metas: List[ResumeTaskMeta]
    checkpoint: CollectiveCheckpoint
    dead_edges: Tuple[str, ...]
    residual_instances: int
    relay_instances: int


def _route_alive(
    cluster: Cluster, src: int, dst: int, dead: frozenset
) -> bool:
    return not any(
        edge in dead for edge in cluster.path(src, dst).edges
    )


def find_relay(
    cluster: Cluster,
    src: int,
    dst: int,
    dead: Iterable[str],
    exclude: Iterable[int] = (),
) -> Optional[int]:
    """Cheapest intermediate rank with live routes on both legs.

    Candidates are scored by summed route latency (preferring intra-node
    detours), tie-broken by rank id for determinism.  ``exclude`` drops
    ranks whose relay scratch slot for this chunk is already claimed by
    another residual instance (one scratch slot per ``(relay, chunk,
    micro-batch)``).  Returns ``None`` when no rank can bridge
    ``src -> dst`` on live edges.
    """
    dead = frozenset(dead)
    excluded = frozenset(exclude)
    best: Optional[Tuple[float, int]] = None
    for rank in range(cluster.world_size):
        if rank == src or rank == dst or rank in excluded:
            continue
        if not _route_alive(cluster, src, rank, dead):
            continue
        if not _route_alive(cluster, rank, dst, dead):
            continue
        cost = (
            cluster.path(src, rank).latency_us
            + cluster.path(rank, dst).latency_us
        )
        if best is None or (cost, rank) < best:
            best = (cost, rank)
    return best[1] if best is not None else None


def build_resume_plan(
    plan: ExecutionPlan,
    checkpoint: CollectiveCheckpoint,
    dead_edges: Sequence[str],
    dead_edge_factor: float = 0.05,
    scheduler: str = "hpds",
    nwarps: int = 16,
    indexed_schedule: bool = True,
) -> ResumePlan:
    """Compile the checkpoint's residual demand for the degraded fabric.

    Args:
        plan: the primary plan the checkpoint belongs to.
        checkpoint: delivered progress; its complement is replanned.
        dead_edges: permanently dead contention edges.  Residual routes
            never traverse them (relays detour around), so
            ``dead_edge_factor`` only derates their nominal capacity in
            the resume cluster for completeness.
        scheduler: ``"hpds"`` (default) or ``"rr"``.
        nwarps: warps per generated resume TB.
        indexed_schedule: use the compiler's indexed cold-compile path
            for the residual compile (default); the reference path gives
            bit-identical resume plans.

    Raises:
        ReplanInfeasible: the surviving topology cannot deliver some
            residual transfer (``partitioned=True`` when no relay exists).
    """
    with obs_span("recovery_replan", plan=plan.name) as sp:
        residue = checkpoint.residual_instances()
        if not residue:
            raise ReplanInfeasible(
                "nothing to replan: checkpoint shows the collective complete"
            )
        dead = frozenset(dead_edges)
        cluster = plan.cluster
        degraded = (
            cluster.degraded(sorted(dead), dead_edge_factor)
            if dead
            else cluster
        )
        stride = plan.chunks_per_microbatch
        transfers: List[Transfer] = []
        metas: List[ResumeTaskMeta] = []
        relays = 0
        # One scratch slot per (relay, chunk, micro-batch): two residual
        # instances moving the same chunk may not share a relay, or their
        # relay hops would collide on one hazard slot and the scratch
        # copy of one instance could be forwarded for the other.
        claimed_scratch: set = set()
        for task_id, mb in residue:
            task = plan.dag.task(task_id)
            flat_chunk = mb * stride + task.chunk
            # Steps doubled: direct hops land on even slots, relay exit
            # hops on odd slots, preserving every original hazard order.
            flat_step = task.step * 2
            if _route_alive(cluster, task.src, task.dst, dead):
                transfers.append(
                    Transfer(
                        src=task.src, dst=task.dst, step=flat_step,
                        chunk=flat_chunk, op=task.op,
                    )
                )
                metas.append(
                    ResumeTaskMeta(
                        orig_task_id=task_id, mb=mb, kind=DIRECT,
                        src=task.src, dst=task.dst, chunk=task.chunk,
                        op=task.op,
                    )
                )
                continue
            taken = {
                rank
                for rank, chunk, taken_mb in claimed_scratch
                if chunk == task.chunk and taken_mb == mb
            }
            relay = find_relay(
                cluster, task.src, task.dst, dead, exclude=taken
            )
            if relay is None:
                if find_relay(cluster, task.src, task.dst, dead) is not None:
                    # Bridgeable, but every candidate's scratch slot for
                    # this chunk is claimed — not a partition; the caller
                    # escalates to ring fallback instead of erroring out.
                    raise ReplanInfeasible(
                        f"residual transfer {task.src}->{task.dst} (task "
                        f"{task_id}, chunk {task.chunk}) exhausted all "
                        f"{len(taken)} collision-free relay slots"
                    )
                raise ReplanInfeasible(
                    f"residual transfer {task.src}->{task.dst} (task "
                    f"{task_id}, chunk {task.chunk}) has no live route "
                    f"or relay around dead edges {sorted(dead)}: "
                    f"topology is partitioned",
                    partitioned=True,
                    unreachable=(task.src, task.dst),
                )
            claimed_scratch.add((relay, task.chunk, mb))
            relays += 1
            transfers.append(
                Transfer(
                    src=task.src, dst=relay, step=flat_step,
                    chunk=flat_chunk, op=CommType.RECV,
                )
            )
            metas.append(
                ResumeTaskMeta(
                    orig_task_id=task_id, mb=mb, kind=RELAY_IN,
                    src=task.src, dst=relay, chunk=task.chunk,
                    op=CommType.RECV, relay_rank=relay,
                )
            )
            transfers.append(
                Transfer(
                    src=relay, dst=task.dst, step=flat_step + 1,
                    chunk=flat_chunk, op=task.op,
                )
            )
            metas.append(
                ResumeTaskMeta(
                    orig_task_id=task_id, mb=mb, kind=RELAY_OUT,
                    src=relay, dst=task.dst, chunk=task.chunk,
                    op=task.op, relay_rank=relay,
                )
            )

        header = plan.program.header
        residual_program = AlgoProgram.create(
            nranks=plan.program.nranks,
            collective=plan.program.collective,
            name=f"{plan.program.name}-residual",
            gpus_per_node=header.gpus_per_node,
            nics_per_node=header.nics_per_node,
        )
        residual_program.transfers.extend(transfers)

        dag = build_dag(transfers, degraded, fused=indexed_schedule)
        _pipeline, assignments = compile_residual(
            dag,
            scheduler=scheduler,
            pipelining_allowance=1,
            indexed=indexed_schedule,
        )
        tb_programs = lower_to_programs(assignments, 1, nwarps=nwarps)
        resume_exec = ExecutionPlan(
            name=f"{plan.name}+replan",
            cluster=degraded,
            program=residual_program,
            dag=dag,
            n_microbatches=1,
            chunk_bytes=plan.chunk_bytes,
            tb_programs=tb_programs,
            mode=plan.mode,
            config=plan.config,
            # The payload the resume plan synchronizes is the residue —
            # relay entry hops move extra wire bytes but no new payload.
            chunks_per_microbatch=max(1, len(residue)),
        )
        sp.set(
            residual=len(residue),
            relays=relays,
            tbs=len(tb_programs),
            dead_edges=len(dead),
        )
        registry = current_registry()
        if registry is not None:
            registry.inc("recovery_replans_total")
            registry.set("recovery_residual_instances", len(residue))
            registry.set("recovery_relay_instances", relays)
    return ResumePlan(
        plan=resume_exec,
        metas=metas,
        checkpoint=checkpoint,
        dead_edges=tuple(sorted(dead)),
        residual_instances=len(residue),
        relay_instances=relays,
    )


__all__ = [
    "ReplanInfeasible",
    "ResumePlan",
    "build_resume_plan",
    "find_relay",
]

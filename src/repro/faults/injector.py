"""Applies a :class:`~repro.faults.plan.FaultPlan` to a running simulator.

The injector is armed by :class:`~repro.runtime.simulator.Simulator` at
construction: it posts one ``fault`` event per scheduled application and
restoration, then mutates the fabric through the simulator's narrow
fault hooks (``apply_edge_factor`` / ``freeze_tb``).  It also answers
the watchdog's and recovery policies' questions about fabric state:
which edges are down, which are permanently dead, and whether the fault
timeline still holds a transition that could unstick a stalled run.

With an empty plan nothing is posted and nothing is consulted — the
healthy-fabric event stream is byte-identical to an injector-free run.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .plan import FaultEvent, FaultKind, FaultPlan

_INF = float("inf")


class FaultInjector:
    """Deterministically applies one fault schedule to one simulation."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        # Per-edge active deratings: edge -> {event_index: factor}.
        self._active: Dict[str, Dict[int, float]] = {}
        self._down_since: Dict[str, float] = {}
        self._permanent: Set[str] = set()
        # Active credit-delay windows: (start, end, delay).
        self._credit_windows: List[Tuple[float, float, float]] = []
        self._pending_transitions = 0
        self._pending_restores = 0

    # ------------------------------------------------------------------
    # Arming and event application
    # ------------------------------------------------------------------

    def arm(self, sim) -> None:
        """Post every scheduled fault into the simulator's event heap."""
        sim.fault_stats.injected = len(self.plan.events)
        for index, event in enumerate(self.plan.events):
            if event.kind is FaultKind.CREDIT_DELAY:
                # Credit delays are windows consulted at release time —
                # no state transition events needed.
                self._credit_windows.append(
                    (event.at_us, event.end_us, event.delay_us)
                )
                sim.record_fault_event(
                    "fault:credit-delay", event.at_us, event.end_us
                )
                continue
            sim._post(event.at_us, "fault", ("apply", index))
            self._pending_transitions += 1
            if not event.is_permanent and event.kind is not FaultKind.TB_STALL:
                sim._post(event.end_us, "fault", ("revert", index))
                self._pending_transitions += 1
                self._pending_restores += 1

    def on_event(self, sim, payload: Tuple[str, int]) -> None:
        action, index = payload
        event = self.plan.events[index]
        self._pending_transitions -= 1
        if action == "apply":
            self._apply(sim, index, event)
        else:
            self._pending_restores -= 1
            self._revert(sim, index, event)

    def _apply(self, sim, index: int, event: FaultEvent) -> None:
        if event.kind is FaultKind.TB_STALL:
            tb_index = self._resolve_tb(sim, event)
            sim.freeze_tb(tb_index, sim.now + event.duration_us)
            return
        edge = event.edge
        was_down = self._edge_factor(edge) <= 0.0
        self._active.setdefault(edge, {})[index] = event.factor
        if event.kind is FaultKind.KILL:
            self._permanent.add(edge)
        factor = self._edge_factor(edge)
        sim.apply_edge_factor(edge, factor)
        if factor <= 0.0 and not was_down:
            self._down_since[edge] = sim.now
        kind = "fault:link-down" if factor <= 0.0 else "fault:link-degrade"
        end = sim.now if event.is_permanent else event.end_us
        sim.record_fault_event(kind, sim.now, end)

    def _revert(self, sim, index: int, event: FaultEvent) -> None:
        edge = event.edge
        active = self._active.get(edge)
        if not active or index not in active:  # pragma: no cover - defensive
            return
        was_down = self._edge_factor(edge) <= 0.0
        del active[index]
        if not active:
            del self._active[edge]
        factor = self._edge_factor(edge)
        if factor <= 0.0:
            return  # another overlapping fault still holds the edge down
        # Snapshot starved flows before rates change so recovery latency
        # can be attributed to this restoration.
        starved = [
            flow for flow in sim.network.flows_on_edge(edge)
            if flow.rate <= 0.0
        ]
        sim.apply_edge_factor(edge, factor)
        sim.record_fault_event("fault:link-up", sim.now, sim.now)
        if was_down:
            down_since = self._down_since.pop(edge, sim.now)
            sim.fault_stats.downtime_us += sim.now - down_since
            for flow in starved:
                if flow.rate > 0.0:
                    since = max(down_since, flow.start_time)
                    sim.fault_stats.recovered += 1
                    sim.fault_stats.recovery_latencies_us.append(
                        sim.now - since
                    )
                    sim.record_fault_event("recover:resume", since, sim.now)
            sim.on_edge_restored(edge)

    def _resolve_tb(self, sim, event: FaultEvent) -> int:
        """Map a fault's (rank, tb_index) onto a live TB.

        Generated plans use ``rank == -1`` with a random ordinal, hitting
        an arbitrary-but-deterministic TB of the plan under test.
        """
        if event.rank >= 0:
            for tb in sim.tbs:
                if (tb.program.rank == event.rank
                        and tb.program.tb_index == event.tb_index):
                    return tb.index
        return event.tb_index % len(sim.tbs)

    def _edge_factor(self, edge: str) -> float:
        active = self._active.get(edge)
        if not active:
            return 1.0
        return min(active.values())

    # ------------------------------------------------------------------
    # State queries (watchdog / recovery)
    # ------------------------------------------------------------------

    def credit_delay(self, now: float) -> float:
        """Extra credit-return latency active at ``now`` (0 when none)."""
        for start, end, delay in self._credit_windows:
            if start <= now < end:
                return delay
        return 0.0

    def down_edges(self) -> List[str]:
        """Edges currently derated to zero capacity."""
        return sorted(
            edge for edge in self._active if self._edge_factor(edge) <= 0.0
        )

    def is_permanent(self, edge: str) -> bool:
        """True when ``edge`` was killed (no restoration scheduled)."""
        return edge in self._permanent

    def has_pending_transitions(self) -> bool:
        """True while unapplied fault-timeline transitions remain.

        A stalled run with a link-up still scheduled is *waiting*, not
        dead — the watchdog defers to the timeline before escalating.
        """
        return self._pending_transitions > 0

    def has_pending_restorations(self) -> bool:
        """True while a link-up that could unstick the run is scheduled.

        Pending *applications* (a second kill, a future degrade) can only
        make a stall worse, so the watchdog escalates through them; only
        a pending restoration justifies waiting.  This is what lets a
        permanent-death escalation fire promptly even when the fault
        timeline holds later events — e.g. a second kill that must land
        *during* the first resume plan, not be folded into it.
        """
        return self._pending_restores > 0


__all__ = ["FaultInjector"]

"""Deterministic fault schedules: what breaks, when, and for how long.

A :class:`FaultPlan` is a list of :class:`FaultEvent`\\ s in simulation
time.  Plans are built either explicitly (the builder methods) or from a
seeded generator (:meth:`FaultPlan.generate` / :func:`parse_inject_spec`)
driven by a single ``random.Random(seed)`` — the only stochastic path in
the whole subsystem, so the same seed always yields byte-identical
schedules, traces, and reports.

Fault kinds:

* ``DEGRADE`` — scale an edge's capacity by ``factor`` for a window;
* ``FLAP`` — capacity to zero for ``duration_us``, then full restore;
* ``KILL`` — capacity to zero permanently (no restore event);
* ``TB_STALL`` — freeze one thread block's control progress for a window;
* ``CREDIT_DELAY`` — delay FIFO credit returns landing inside a window.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

_INF = float("inf")


class FaultKind(enum.Enum):
    DEGRADE = "degrade"
    FLAP = "flap"
    KILL = "kill"
    TB_STALL = "tb-stall"
    CREDIT_DELAY = "credit-delay"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``duration_us`` of ``inf`` means permanent (the only valid duration
    for ``KILL``).  Link faults set ``edge``; TB stalls set ``rank`` and
    ``tb_index``; credit delays set ``delay_us``.
    """

    kind: FaultKind
    at_us: float
    edge: Optional[str] = None
    factor: float = 0.0
    duration_us: float = _INF
    rank: int = -1
    tb_index: int = -1
    delay_us: float = 0.0

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at_us}")
        if self.kind in (FaultKind.DEGRADE, FaultKind.FLAP, FaultKind.KILL):
            if not self.edge:
                raise ValueError(f"{self.kind.value} fault needs an edge")
        if self.kind is FaultKind.KILL and self.duration_us != _INF:
            raise ValueError("kill faults are permanent; use flap/degrade")

    @property
    def end_us(self) -> float:
        return self.at_us + self.duration_us

    @property
    def is_permanent(self) -> bool:
        return self.duration_us == _INF


@dataclass
class FaultPlan:
    """An ordered, deterministic schedule of faults for one run."""

    events: List[FaultEvent] = field(default_factory=list)
    seed: int = 0

    @property
    def armed(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # -- explicit builders ---------------------------------------------

    def degrade(
        self, edge: str, at_us: float, factor: float, duration_us: float = _INF
    ) -> "FaultPlan":
        self.events.append(
            FaultEvent(FaultKind.DEGRADE, at_us, edge=edge, factor=factor,
                       duration_us=duration_us)
        )
        return self

    def flap(self, edge: str, at_us: float, down_us: float) -> "FaultPlan":
        self.events.append(
            FaultEvent(FaultKind.FLAP, at_us, edge=edge, factor=0.0,
                       duration_us=down_us)
        )
        return self

    def kill(self, edge: str, at_us: float) -> "FaultPlan":
        self.events.append(
            FaultEvent(FaultKind.KILL, at_us, edge=edge, factor=0.0)
        )
        return self

    def stall_tb(
        self, rank: int, tb_index: int, at_us: float, duration_us: float
    ) -> "FaultPlan":
        self.events.append(
            FaultEvent(FaultKind.TB_STALL, at_us, rank=rank,
                       tb_index=tb_index, duration_us=duration_us)
        )
        return self

    def delay_credits(
        self, at_us: float, duration_us: float, delay_us: float
    ) -> "FaultPlan":
        self.events.append(
            FaultEvent(FaultKind.CREDIT_DELAY, at_us,
                       duration_us=duration_us, delay_us=delay_us)
        )
        return self

    def scaled_to(self, intensity: float) -> "FaultPlan":
        """Prefix of the schedule proportional to ``intensity`` in [0, 1].

        Cumulative by construction: a higher intensity keeps every event
        of a lower one and adds more, which makes degradation sweeps
        monotone by design rather than by luck.
        """
        if intensity >= 1.0:
            return FaultPlan(events=list(self.events), seed=self.seed)
        keep = int(round(max(0.0, intensity) * len(self.events)))
        ordered = sorted(self.events, key=lambda e: e.at_us)
        return FaultPlan(events=ordered[:keep], seed=self.seed)

    # -- seeded generation ---------------------------------------------

    @classmethod
    def generate(
        cls,
        kind: str,
        edges: Sequence[str],
        horizon_us: float,
        seed: int = 0,
        intensity: float = 1.0,
        window_us: float = 2000.0,
        params: Optional[Dict[str, float]] = None,
    ) -> "FaultPlan":
        """Build a seeded schedule of one named fault scenario.

        Args:
            kind: ``link-degrade`` / ``link-flap`` / ``link-kill`` /
                ``tb-stall`` / ``credit-delay`` / ``chaos``.
            edges: contention edges the target plan actually uses —
                generated link faults always hit live resources.
            horizon_us: expected clean completion time; fault times land
                in ``[0.1, 0.7] * horizon``.
            seed: the single RNG seed (``random.Random``; numpy-free).
            intensity: scales the event count (see :meth:`scaled_to`).
            window_us: the watchdog window; transient fault durations are
                sized relative to it so recovery latency stays bounded.
            params: optional overrides (``count``, ``factor``,
                ``down_us``, ``delay_us``).
        """
        params = dict(params or {})
        rng = random.Random(seed)
        edges = sorted(edges)
        if not edges:
            raise ValueError("fault generation needs at least one edge")
        plan = cls(seed=seed)
        count = int(params.get("count", 4))

        def when() -> float:
            return rng.uniform(0.1, 0.7) * horizon_us

        if kind == "link-degrade":
            factor = params.get("factor", 0.25)
            for _ in range(count):
                plan.degrade(
                    rng.choice(edges), when(), factor,
                    duration_us=rng.uniform(0.5, 1.0) * window_us,
                )
        elif kind == "link-flap":
            for _ in range(count):
                down = params.get(
                    "down_us", rng.uniform(0.25, 0.75) * window_us
                )
                plan.flap(rng.choice(edges), when(), down)
        elif kind == "link-kill":
            plan.kill(rng.choice(edges), when())
        elif kind == "tb-stall":
            for _ in range(count):
                plan.stall_tb(
                    rank=-1,  # resolved to a live TB by the injector
                    tb_index=rng.randrange(1 << 16),
                    at_us=when(),
                    duration_us=rng.uniform(0.25, 0.75) * window_us,
                )
        elif kind == "credit-delay":
            for _ in range(count):
                plan.delay_credits(
                    at_us=when(),
                    duration_us=rng.uniform(0.5, 1.0) * window_us,
                    delay_us=params.get("delay_us", 0.1 * window_us),
                )
        elif kind == "chaos":
            # A mixed storm: every transient kind, interleaved.
            for _ in range(count):
                roll = rng.random()
                if roll < 0.4:
                    plan.flap(
                        rng.choice(edges), when(),
                        rng.uniform(0.25, 0.75) * window_us,
                    )
                elif roll < 0.7:
                    plan.degrade(
                        rng.choice(edges), when(), rng.uniform(0.1, 0.5),
                        duration_us=rng.uniform(0.5, 1.0) * window_us,
                    )
                elif roll < 0.9:
                    plan.stall_tb(
                        rank=-1, tb_index=rng.randrange(1 << 16),
                        at_us=when(),
                        duration_us=rng.uniform(0.25, 0.75) * window_us,
                    )
                else:
                    plan.delay_credits(
                        at_us=when(),
                        duration_us=rng.uniform(0.5, 1.0) * window_us,
                        delay_us=0.1 * window_us,
                    )
        else:
            raise ValueError(
                f"unknown fault scenario {kind!r}; known: link-degrade, "
                f"link-flap, link-kill, tb-stall, credit-delay, chaos"
            )
        plan.events.sort(key=lambda e: e.at_us)
        return plan.scaled_to(intensity)


def parse_inject_spec(
    spec: str,
    edges: Sequence[str],
    horizon_us: float,
    seed: int = 0,
    intensity: float = 1.0,
    window_us: float = 2000.0,
) -> FaultPlan:
    """Parse a CLI ``--inject`` spec into a :class:`FaultPlan`.

    Format: ``<scenario>[:key=value,...]``, e.g. ``link-flap`` or
    ``link-flap:count=6,down_us=1500``.
    """
    name, _, raw_params = spec.partition(":")
    params: Dict[str, float] = {}
    if raw_params:
        for item in raw_params.split(","):
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"bad --inject parameter {item!r} (want key=value)"
                )
            params[key.strip()] = float(value)
    return FaultPlan.generate(
        name.strip(), edges, horizon_us, seed=seed, intensity=intensity,
        window_us=window_us, params=params,
    )


INJECT_SCENARIOS = (
    "link-degrade", "link-flap", "link-kill", "tb-stall", "credit-delay",
    "chaos",
)

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "parse_inject_spec",
    "INJECT_SCENARIOS",
]

"""Structured progress-stall diagnostics for the runtime watchdog.

The :class:`~repro.runtime.simulator.Simulator` owns the watchdog *clock*
(a periodic progress check); this module owns the watchdog *diagnosis*:
when progress stops, :func:`build_progress_stall` snapshots every
unfinished thread block (what it is waiting on and for how long) and the
fabric's flow census (which edges carry starved flows) into a
:class:`ProgressStall` that recovery policies inspect and stall
exceptions carry to the user.

Kept free of simulator imports so the runtime can import it lazily
without a package cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class TBStallInfo:
    """One unfinished thread block at stall-detection time."""

    rank: int
    tb_index: int
    label: str
    pc: int
    program_length: int
    phase: str
    wait_kind: str
    wait_us: float
    pending: str  # human-readable pending invocation (primitive + route)


@dataclass(frozen=True)
class EdgeCensus:
    """One occupied contention edge at stall-detection time."""

    edge: str
    flows: int
    zero_rate_flows: int
    effective_capacity: float
    capacity_factor: float


@dataclass
class ProgressStall:
    """Everything the watchdog knows when it declares a stall."""

    time_us: float
    window_us: float
    last_progress_us: float
    unfinished: int
    tbs: List[TBStallInfo] = field(default_factory=list)
    edges: List[EdgeCensus] = field(default_factory=list)
    #: Contention edges currently derated to zero capacity by faults.
    down_edges: List[str] = field(default_factory=list)
    #: In-flight ``(flow_id, task_id, mb, sender_tb)`` starved to rate 0.
    starved_flows: List[Tuple[int, int, int, int]] = field(default_factory=list)

    def render(self) -> str:
        """Multi-line human-readable diagnostic."""
        lines = [
            f"progress stall at t={self.time_us:.1f}us "
            f"(last progress t={self.last_progress_us:.1f}us, "
            f"window {self.window_us:.0f}us): "
            f"{self.unfinished} TB(s) unfinished"
        ]
        for tb in self.tbs[:16]:
            lines.append(
                f"  rank {tb.rank} TB{tb.tb_index} ({tb.label}) "
                f"pc={tb.pc}/{tb.program_length} phase={tb.phase} "
                f"wait={tb.wait_kind or 'none'} ({tb.wait_us:.1f}us) "
                f"pending {tb.pending}"
            )
        if len(self.tbs) > 16:
            lines.append(f"  ... and {len(self.tbs) - 16} more TB(s)")
        if self.down_edges:
            lines.append(f"  down edges: {', '.join(sorted(self.down_edges))}")
        if self.edges:
            lines.append("  edge flow census (flows/zero-rate @ capacity):")
            for census in self.edges[:12]:
                lines.append(
                    f"    {census.edge}: {census.flows}/"
                    f"{census.zero_rate_flows} @ "
                    f"{census.effective_capacity:.1f} B/us "
                    f"(factor {census.capacity_factor:g})"
                )
        return "\n".join(lines)


def build_progress_stall(sim) -> ProgressStall:
    """Snapshot a :class:`ProgressStall` from a stalled simulator."""
    tbs: List[TBStallInfo] = []
    for tb in sim.tbs:
        if tb.phase == "done":
            continue
        wait_us = sim.now - tb.wait_start if tb.blocked_on is not None else 0.0
        tbs.append(
            TBStallInfo(
                rank=tb.program.rank,
                tb_index=tb.program.tb_index,
                label=tb.program.label,
                pc=tb.pc,
                program_length=len(tb.program.invocations),
                phase=tb.phase,
                wait_kind=tb.wait_kind,
                wait_us=max(0.0, wait_us),
                pending=sim._describe_invocation(tb.current()),
            )
        )
    edges = [
        EdgeCensus(
            edge=edge,
            flows=count,
            zero_rate_flows=zero,
            effective_capacity=capacity,
            capacity_factor=sim.network.capacity_factor(edge),
        )
        for edge, (count, zero, capacity) in sorted(
            sim.network.edge_census().items()
        )
    ]
    down = [
        census.edge for census in edges if census.capacity_factor <= 0.0
    ]
    if sim.injector is not None:
        # Include dead edges that carry no flow right now.
        down = sorted(set(down) | set(sim.injector.down_edges()))
    starved = [
        (flow.flow_id, task_id, mb, sender)
        for flow, task_id, mb, sender in sim.zero_rate_flows()
    ]
    return ProgressStall(
        time_us=sim.now,
        window_us=sim.watchdog_window_us,
        last_progress_us=sim._last_progress_us,
        unfinished=sim._unfinished,
        tbs=tbs,
        edges=edges,
        down_edges=down,
        starved_flows=starved,
    )


__all__ = ["TBStallInfo", "EdgeCensus", "ProgressStall", "build_progress_stall"]

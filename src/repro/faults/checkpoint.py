"""Collective checkpoints: delivered progress frozen at stall time.

When a recovery policy escalates a permanent link death, the failed
simulation still holds real, usable progress: every ``(task, micro-batch)``
instance whose receive completed has landed its payload — applied its
copy or reduction at the destination — and can never need redoing.  A
:class:`CollectiveCheckpoint` snapshots exactly that set (plus partial
in-flight bytes, for accounting) through
:meth:`~repro.runtime.simulator.Simulator.export_checkpoint`, and derives
the two things replanning needs:

* the **residual demand** — every instance not yet completed.  The
  completion set is closed under DAG predecessors (an instance cannot
  complete before its dependencies), so its complement is closed under
  successors: the residue is a valid precedence-closed sub-collective
  whose chunk step-chains are truncated at the last delivered hop.
* the **per-rank possession state** — which chunks each rank holds and
  which reduction contributions each slot has absorbed, obtained by
  replaying the completion log through the counting-semantics engine of
  :mod:`repro.analysis.verify_delivery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..analysis.verify_delivery import State, initial_state
from ..obs.metrics import current_registry
from ..obs.spans import span as obs_span
from ..runtime.plan import ExecutionPlan

Instance = Tuple[int, int]  # (task_id, micro_batch)


@dataclass
class CollectiveCheckpoint:
    """Progress snapshot of a stalled collective execution.

    Attributes:
        plan: the primary execution plan the snapshot belongs to.
        at_us: checkpoint (stall/escalation) time; resume plans start
            their clock here.
        completed: ``(task_id, mb)`` instances in completion order — the
            executed prefix, replayable through the delivery verifier.
        inflight_bytes: bytes already streamed by flows that had not
            finished at checkpoint time, per instance.  Reporting only:
            recovery retransmits those chunks whole.
        dead_edges: the permanently dead contention edges that triggered
            the checkpoint.
    """

    plan: ExecutionPlan
    at_us: float
    completed: List[Instance]
    inflight_bytes: Dict[Instance, float] = field(default_factory=dict)
    dead_edges: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.completed_set: Set[Instance] = set(self.completed)

    @classmethod
    def capture(cls, sim, dead_edges) -> "CollectiveCheckpoint":
        """Snapshot a (stalled) simulator's delivered progress."""
        with obs_span(
            "recovery_checkpoint", plan=sim.plan.name
        ) as sp:
            raw = sim.export_checkpoint()
            checkpoint = cls(
                plan=sim.plan,
                at_us=raw["at_us"],
                completed=raw["completed"],
                inflight_bytes=raw["inflight_bytes"],
                dead_edges=tuple(sorted(dead_edges)),
            )
            sp.set(
                at_us=checkpoint.at_us,
                completed=len(checkpoint.completed),
                residual=len(checkpoint.residual_instances()),
            )
            registry = current_registry()
            if registry is not None:
                registry.inc("recovery_checkpoints_total")
                registry.set(
                    "recovery_checkpoint_progress",
                    checkpoint.progress_fraction,
                )
        return checkpoint

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def total_instances(self) -> int:
        return len(self.plan.dag) * self.plan.n_microbatches

    @property
    def progress_fraction(self) -> float:
        """Fraction of instances fully delivered before the stall."""
        total = self.total_instances
        if total <= 0:
            return 0.0
        return len(self.completed_set) / total

    @property
    def delivered_bytes(self) -> float:
        """Bytes landed by completed instances plus partial in-flight."""
        return (
            len(self.completed_set) * self.plan.chunk_bytes
            + sum(self.inflight_bytes.values())
        )

    def residual_instances(self) -> List[Instance]:
        """The precedence-closed remaining demand, in (step, id) order."""
        residue = []
        for task in self.plan.dag.tasks:
            for mb in range(self.plan.n_microbatches):
                if (task.task_id, mb) not in self.completed_set:
                    residue.append((task.task_id, mb))
        residue.sort(
            key=lambda pair: (
                self.plan.dag.task(pair[0]).step, pair[0], pair[1]
            )
        )
        return residue

    def advanced(
        self,
        newly_delivered: List[Instance],
        at_us: float,
        dead_edges,
    ) -> "CollectiveCheckpoint":
        """Fold a partial resume run's deliveries into a new checkpoint.

        Used when a *second* fault interrupts a resume plan: the next
        replan round must exclude everything either attempt delivered.
        The extended ``completed`` list is valid for residue computation
        but is no longer a primary-plan execution order — stitched
        verification replays resume segments through their own metadata
        instead.
        """
        merged = list(self.completed)
        merged.extend(
            pair for pair in newly_delivered
            if pair not in self.completed_set
        )
        return CollectiveCheckpoint(
            plan=self.plan,
            at_us=at_us,
            completed=merged,
            inflight_bytes={},
            dead_edges=tuple(sorted(set(self.dead_edges) | set(dead_edges))),
        )

    def possession(self) -> Dict[int, Dict[int, FrozenSet[int]]]:
        """Per-rank chunk possession at checkpoint time.

        Returns ``{rank: {(chunk index): frozenset(contributing ranks)}}``
        for micro-batch-0 slots (representative; micro-batches are data
        independent), derived by replaying the completion log under
        counting semantics.  A chunk is "held" when its slot is non-empty;
        the contributor set shows which partial reductions have been
        applied.
        """
        state = self._buffer_state()
        held: Dict[int, Dict[int, FrozenSet[int]]] = {}
        for (rank, chunk, mb), contributors in state.items():
            if mb != 0 or not contributors:
                continue
            held.setdefault(rank, {})[chunk] = frozenset(contributors)
        return held

    def _buffer_state(self) -> State:
        """Counting-semantics buffer state after the completed prefix."""
        program = self.plan.program
        chunks = list(range(self.plan.chunks_per_microbatch))
        mbs = list(range(self.plan.n_microbatches))
        state = initial_state(
            program.collective, program.nranks, chunks, mbs
        )
        errors: List[str] = []
        from ..analysis.verify_delivery import _apply

        for task_id, mb in self.completed:
            task = self.plan.dag.task(task_id)
            _apply(
                state,
                (task.src, task.chunk, mb),
                (task.dst, task.chunk, mb),
                task.op,
                errors,
                f"checkpoint prefix task {task_id} mb {mb}",
            )
        return state


__all__ = ["CollectiveCheckpoint", "Instance"]

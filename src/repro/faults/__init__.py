"""Fault injection, progress watchdog, and recovery for the runtime.

The subsystem is deliberately layered so the healthy path never pays
for it:

* :mod:`repro.faults.plan` — seeded, deterministic fault schedules;
* :mod:`repro.faults.injector` — applies a schedule to one simulation
  through the simulator's narrow fault hooks;
* :mod:`repro.faults.watchdog` — structured stall diagnostics
  (:class:`ProgressStall`) built when the simulator's progress watchdog
  fires;
* :mod:`repro.faults.checkpoint` — delivered-progress snapshots at
  stall time (chunk possession, applied reductions, in-flight bytes);
* :mod:`repro.faults.replan` — residual-collective replanning: the
  undelivered demand is rerouted around dead edges and re-compiled
  through the full HPDS → TB-allocation → kernelgen pipeline;
* :mod:`repro.faults.recovery` — pluggable recovery policies
  (retry/backoff, flap re-admission, replan-and-resume, ring fallback);
* :mod:`repro.faults.harness` — the chaos harness gluing it together.
"""

from .checkpoint import CollectiveCheckpoint
from .harness import (
    CHAOS_ALGORITHMS,
    CHAOS_SCENARIOS,
    CHAOS_SEEDS,
    ChaosCorpusError,
    FaultRunOutcome,
    plan_edges,
    run_chaos_corpus,
    run_with_faults,
)
from .injector import FaultInjector
from .plan import (
    INJECT_SCENARIOS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    parse_inject_spec,
)
from .recovery import (
    POLICY_NAMES,
    backoff_delay,
    FallbackRequested,
    RecoveryImpossible,
    RecoveryPolicy,
    ReplanRequested,
    ResilientRunner,
    RetryBackoffPolicy,
    make_policy,
)
from .replan import ReplanInfeasible, ResumePlan, build_resume_plan, find_relay
from .watchdog import EdgeCensus, ProgressStall, TBStallInfo, build_progress_stall

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "parse_inject_spec",
    "INJECT_SCENARIOS",
    "FaultInjector",
    "ProgressStall",
    "TBStallInfo",
    "EdgeCensus",
    "build_progress_stall",
    "CollectiveCheckpoint",
    "ReplanInfeasible",
    "ResumePlan",
    "build_resume_plan",
    "find_relay",
    "POLICY_NAMES",
    "backoff_delay",
    "RecoveryPolicy",
    "RetryBackoffPolicy",
    "FallbackRequested",
    "ReplanRequested",
    "RecoveryImpossible",
    "ResilientRunner",
    "make_policy",
    "FaultRunOutcome",
    "plan_edges",
    "run_chaos_corpus",
    "ChaosCorpusError",
    "run_with_faults",
    "CHAOS_ALGORITHMS",
    "CHAOS_SCENARIOS",
    "CHAOS_SEEDS",
]

"""Fault injection, progress watchdog, and recovery for the runtime.

The subsystem is deliberately layered so the healthy path never pays
for it:

* :mod:`repro.faults.plan` — seeded, deterministic fault schedules;
* :mod:`repro.faults.injector` — applies a schedule to one simulation
  through the simulator's narrow fault hooks;
* :mod:`repro.faults.watchdog` — structured stall diagnostics
  (:class:`ProgressStall`) built when the simulator's progress watchdog
  fires;
* :mod:`repro.faults.recovery` — pluggable recovery policies
  (retry/backoff, flap re-admission, ring fallback);
* :mod:`repro.faults.harness` — the chaos harness gluing it together.
"""

from .harness import FaultRunOutcome, plan_edges, run_with_faults
from .injector import FaultInjector
from .plan import (
    INJECT_SCENARIOS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    parse_inject_spec,
)
from .recovery import (
    FallbackRequested,
    RecoveryPolicy,
    ResilientRunner,
    RetryBackoffPolicy,
    make_policy,
)
from .watchdog import EdgeCensus, ProgressStall, TBStallInfo, build_progress_stall

__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultPlan",
    "parse_inject_spec",
    "INJECT_SCENARIOS",
    "FaultInjector",
    "ProgressStall",
    "TBStallInfo",
    "EdgeCensus",
    "build_progress_stall",
    "RecoveryPolicy",
    "RetryBackoffPolicy",
    "FallbackRequested",
    "ResilientRunner",
    "make_policy",
    "FaultRunOutcome",
    "plan_edges",
    "run_with_faults",
]

"""Plan autotuning: offline search, persistent tables, tuned serving.

Import surface is deliberately light — only the table layer loads here,
because the serving hot path (:mod:`repro.core.backend`) and the service
worker processes import it.  The search driver lives in
:mod:`repro.tuning.tuner` and is imported explicitly by the CLI and
benchmarks (it pulls in the experiments sweep machinery).
"""

from .table import (
    TUNING_FORMAT_VERSION,
    TableStats,
    TunedConfig,
    TuningTable,
    TuningTableError,
    cell_key,
    configure_tuning,
    get_table,
    make_entry,
    resolve_spec,
    spec_collective,
)

__all__ = [
    "TUNING_FORMAT_VERSION",
    "TableStats",
    "TunedConfig",
    "TuningTable",
    "TuningTableError",
    "cell_key",
    "configure_tuning",
    "get_table",
    "make_entry",
    "resolve_spec",
    "spec_collective",
]

"""The plan autotuner: two-stage search over plan-shaping knobs.

For each ``(collective, size, topology)`` cell the tuner sweeps the
plan-shaping knobs — plan source (the paper's HPDS-scheduled built-ins
vs the TACCL/TECCL synthesizers), micro-batch count, chunk size, and TB
pipelining allowance — and persists the winner in a
:class:`~repro.tuning.table.TuningTable`.

Search cost stays bounded by successive halving:

1. **Screen** every surviving candidate under the ``fast`` simulation
   fidelity (rate hysteresis + micro-batch collapse — bounded error,
   large speedup).  Candidates whose collapse was a *no-op* (single
   micro-batch, ``agg_collapse_noop``) are logged per cell: for those
   the screen silently paid exact cost, the PR 9 mesh-allreduce gotcha.
2. **Re-score** the top fraction (plus the default config) under
   ``exact`` fidelity and pick the winner, so the final ranking never
   depends on fast-fidelity error.

Before any simulation runs, the candidate grid is pruned TACCL-sketch
style: knob combinations that resolve to the same effective
``(plan source, micro-batch count, chunk, allowance)`` are deduplicated
by cheap static analysis, so most of the grid never reaches the
simulator.

Runs are resumable: cells already present in the table are skipped, and
the table is re-saved atomically after every scored cell, so an
interrupted ``resccl tune`` loses at most the in-flight cell.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..experiments.base import SweepOutcome, parallel_sweep
from ..obs.log import get_logger
from ..obs.metrics import current_registry
from ..obs.spans import span as obs_span
from ..runtime.plan import MB, plan_microbatches
from ..topology import Cluster, profile_by_name
from .table import (
    TunedConfig,
    TuningTable,
    cell_key,
    make_entry,
    resolve_spec,
)

#: The plan-source arms of the search ("scheduler choice" in NCCL-tuner
#: terms): the paper's HPDS-scheduled built-ins vs each synthesizer.
SCHEDULER_CHOICES = ("hpds", "taccl", "teccl")

#: Default knob grids.  Deliberately modest — the sketch-style dedupe
#: prunes further, and successive halving bounds what reaches ``exact``.
DEFAULT_MBS_GRID = (4, 8, 16)
DEFAULT_CHUNK_KB_GRID = (512, 1024, 2048)
DEFAULT_TB_ALLOWANCE_GRID = (None, 2)

#: Fraction of screened candidates re-scored under ``exact``.
DEFAULT_SURVIVOR_FRACTION = 0.25
MIN_SURVIVORS = 3


@dataclass(frozen=True)
class Cell:
    """One tuning cell: a collective at a size on a topology."""

    collective: str
    buffer_mb: float
    nodes: int
    gpus: int
    profile: str = "A100"

    @property
    def buffer_bytes(self) -> int:
        return int(round(self.buffer_mb * MB))

    def cluster(self) -> Cluster:
        return Cluster(
            nodes=self.nodes,
            gpus_per_node=self.gpus,
            profile=profile_by_name(self.profile),
        )

    def label(self) -> str:
        return (
            f"{self.collective}/{self.buffer_mb:g}MB/"
            f"{self.nodes}x{self.gpus}/{self.profile}"
        )

    def to_dict(self) -> dict:
        return {
            "collective": self.collective,
            "buffer_mb": self.buffer_mb,
            "nodes": self.nodes,
            "gpus": self.gpus,
            "profile": self.profile,
        }


def default_config(collective: str) -> TunedConfig:
    """The untuned baseline: the reference ring at stock knobs.

    This is what degraded mode serves and what a request that names no
    preference effectively gets — the NCCL-style conservative default.
    """
    return TunedConfig(algorithm=f"ring-{collective}")


def candidate_space(
    cell: Cell,
    cluster: Optional[Cluster] = None,
    schedulers: Sequence[str] = SCHEDULER_CHOICES,
    mbs_grid: Sequence[int] = DEFAULT_MBS_GRID,
    chunk_kb_grid: Sequence[int] = DEFAULT_CHUNK_KB_GRID,
    tb_allowance_grid: Sequence[Optional[int]] = DEFAULT_TB_ALLOWANCE_GRID,
) -> List[TunedConfig]:
    """The deduplicated candidate grid for one cell, default first.

    The sketch-style prune: for every plan source the program is built
    once (no compile, no simulation) and each knob combination is
    reduced to its *effective* ``(n_microbatches, chunk, allowance)``
    via :func:`plan_microbatches`; combinations that collapse onto an
    already-seen effective plan shape are dropped before any simulation
    is spent on them.
    """
    cluster = cluster or cell.cluster()
    specs: List[str] = []
    for choice in schedulers:
        if choice == "hpds":
            if cluster.nodes >= 2:
                specs.append(f"hm-{cell.collective}")
            specs.append(f"mesh-{cell.collective}")
            specs.append(f"ring-{cell.collective}")
        else:
            specs.append(f"{choice}:{cell.collective}")

    candidates: List[TunedConfig] = [default_config(cell.collective)]
    seen: Dict[Tuple, int] = {}
    nchunks_by_spec: Dict[str, int] = {}

    def effective_shape(config: TunedConfig) -> Optional[Tuple]:
        nchunks = nchunks_by_spec.get(config.algorithm)
        if nchunks is None:
            try:
                program = resolve_spec(config.algorithm, cluster)
            except ValueError:
                return None  # spec invalid on this topology: pruned
            nchunks = program.nchunks
            nchunks_by_spec[config.algorithm] = nchunks
        n_mb, chunk_bytes = plan_microbatches(
            cell.buffer_bytes,
            nchunks,
            target_chunk_bytes=config.chunk_kb * 1024.0,
            max_microbatches=config.max_microbatches,
        )
        allowance = (
            n_mb if config.tb_allowance is None
            else max(1, min(config.tb_allowance, n_mb))
        )
        return (config.algorithm, n_mb, round(chunk_bytes, 6), allowance)

    shape = effective_shape(candidates[0])
    if shape is not None:
        seen[shape] = 0
    for spec in specs:
        for mbs in mbs_grid:
            for chunk_kb in chunk_kb_grid:
                for allowance in tb_allowance_grid:
                    config = TunedConfig(
                        algorithm=spec,
                        max_microbatches=mbs,
                        chunk_kb=chunk_kb,
                        tb_allowance=allowance,
                    )
                    shape = effective_shape(config)
                    if shape is None or shape in seen:
                        continue
                    seen[shape] = len(candidates)
                    candidates.append(config)
    return candidates


# ----------------------------------------------------------------------
# Scoring (runs in parallel_sweep workers — module-level, picklable)
# ----------------------------------------------------------------------


def _score_point(point: dict) -> dict:
    """Plan + simulate one candidate; the sweep worker target."""
    import dataclasses as _dc

    from ..core import ResCCLBackend
    from ..runtime import simulate

    cell = Cell(**point["cell"])
    config = TunedConfig.from_dict(point["config"])
    cluster = cell.cluster()
    program = resolve_spec(config.algorithm, cluster)
    backend = ResCCLBackend(
        scheduler=config.scheduler,
        max_microbatches=config.max_microbatches,
        target_chunk_kb=config.chunk_kb,
        tb_allowance=config.tb_allowance,
        use_tuning=False,  # scoring must never consult an installed table
    )
    plan = backend.plan(cluster, program, float(cell.buffer_bytes))
    if point["fidelity"] != "exact":
        plan = _dc.replace(
            plan, config=plan.config.with_fidelity(point["fidelity"])
        )
    report = simulate(plan)
    return {
        "completion_time_us": report.completion_time_us,
        "algo_bandwidth_gbps": report.algo_bandwidth_gbps,
        "n_microbatches": plan.n_microbatches,
        "collapse_noop": report.counters.agg_collapse_noop,
        "runs_collapsed": report.counters.agg_runs_collapsed,
    }


# ----------------------------------------------------------------------
# The tuner driver
# ----------------------------------------------------------------------


@dataclass
class CellResult:
    """Outcome of tuning (or skipping) one cell."""

    cell: Cell
    status: str  # "scored" | "skipped" | "failed"
    entry: Optional[dict] = None
    candidates: int = 0
    screened: int = 0
    exact_scored: int = 0
    #: Summed per-point simulation cost (stable under parallelism) and
    #: stage wall-clock, for the with/without-screen comparison.
    screen_cost_s: float = 0.0
    exact_cost_s: float = 0.0
    wall_s: float = 0.0
    collapse_noops: int = 0
    error: str = ""

    @property
    def search_cost_s(self) -> float:
        return self.screen_cost_s + self.exact_cost_s

    @property
    def improvement(self) -> float:
        """Fractional completion-time win of tuned over default."""
        if self.entry is None or self.entry["default_us"] <= 0:
            return 0.0
        return 1.0 - self.entry["tuned_us"] / self.entry["default_us"]


@dataclass
class TuneReport:
    """Everything one ``tune()`` run did, plus the resulting table."""

    table: TuningTable
    results: List[CellResult] = field(default_factory=list)

    @property
    def scored(self) -> List[CellResult]:
        return [r for r in self.results if r.status == "scored"]

    @property
    def skipped(self) -> List[CellResult]:
        return [r for r in self.results if r.status == "skipped"]

    @property
    def search_cost_s(self) -> float:
        return sum(r.search_cost_s for r in self.results)


def _rank(outcomes: Sequence[SweepOutcome]) -> List[int]:
    """Candidate indices ordered best-first; failures rank last."""
    def sort_key(outcome: SweepOutcome):
        if not outcome.ok:
            return (math.inf, outcome.index)
        return (outcome.value["completion_time_us"], outcome.index)

    return [o.index for o in sorted(outcomes, key=sort_key)]


def tune(
    cells: Sequence[Cell],
    table_path,
    jobs: Optional[int] = None,
    schedulers: Sequence[str] = SCHEDULER_CHOICES,
    mbs_grid: Sequence[int] = DEFAULT_MBS_GRID,
    chunk_kb_grid: Sequence[int] = DEFAULT_CHUNK_KB_GRID,
    tb_allowance_grid: Sequence[Optional[int]] = DEFAULT_TB_ALLOWANCE_GRID,
    screen_fidelity: Optional[str] = "fast",
    survivor_fraction: float = DEFAULT_SURVIVOR_FRACTION,
    force: bool = False,
) -> TuneReport:
    """Tune every cell and persist winners to ``table_path``.

    Args:
        screen_fidelity: ``"fast"`` runs the two-stage search (screen
            then exact re-score of survivors); ``None`` or ``"exact"``
            scores the *whole* grid under exact fidelity in one stage
            (the expensive reference the benchmark compares against).
        force: re-score cells already present in the table instead of
            skipping them (the resumability default).
    """
    logger = get_logger("tuner")
    table = TuningTable.load(table_path)
    report = TuneReport(table=table)
    registry = current_registry()
    two_stage = screen_fidelity not in (None, "exact")

    for cell in cells:
        cluster = cell.cluster()
        key = cell_key(cell.collective, cell.buffer_bytes, cluster.fingerprint())
        if key in table.entries and not force:
            logger.info("tune-cell-skipped", cell=cell.label())
            if registry is not None:
                registry.inc("tuning_cells_skipped_total")
            report.results.append(CellResult(cell=cell, status="skipped",
                                             entry=table.entries[key]))
            continue

        started = time.perf_counter()
        with obs_span("tune-cell", cell=cell.label()):
            result = _tune_cell(
                cell, cluster, jobs=jobs, schedulers=schedulers,
                mbs_grid=mbs_grid, chunk_kb_grid=chunk_kb_grid,
                tb_allowance_grid=tb_allowance_grid,
                screen_fidelity=screen_fidelity if two_stage else None,
                survivor_fraction=survivor_fraction, logger=logger,
            )
        result.wall_s = time.perf_counter() - started
        report.results.append(result)
        if result.status != "scored":
            logger.warning(
                "tune-cell-failed", cell=cell.label(), error=result.error
            )
            continue
        if registry is not None:
            registry.inc("tuning_cells_scored_total")
            registry.inc("tuning_candidates_screened_total", result.screened)
            registry.inc("tuning_candidates_exact_total", result.exact_scored)
        table.put(result.entry)
        # Atomic per-cell save: an interrupted run resumes from here.
        table.save(table_path)
        logger.info(
            "tune-cell-done",
            cell=cell.label(),
            winner=result.entry["config"]["algorithm"],
            tuned_us=round(result.entry["tuned_us"], 1),
            default_us=round(result.entry["default_us"], 1),
            improvement=round(result.improvement, 4),
            wall_s=round(result.wall_s, 2),
        )
    return report


def _tune_cell(
    cell: Cell,
    cluster: Cluster,
    jobs: Optional[int],
    schedulers: Sequence[str],
    mbs_grid: Sequence[int],
    chunk_kb_grid: Sequence[int],
    tb_allowance_grid: Sequence[Optional[int]],
    screen_fidelity: Optional[str],
    survivor_fraction: float,
    logger,
) -> CellResult:
    candidates = candidate_space(
        cell, cluster, schedulers=schedulers, mbs_grid=mbs_grid,
        chunk_kb_grid=chunk_kb_grid, tb_allowance_grid=tb_allowance_grid,
    )
    result = CellResult(cell=cell, status="failed", candidates=len(candidates))
    logger.info(
        "tune-cell-start",
        cell=cell.label(),
        candidates=len(candidates),
        screen=screen_fidelity or "exact-only",
    )

    def points(indices: Sequence[int], fidelity: str) -> List[dict]:
        return [
            {
                "cell": cell.to_dict(),
                "config": candidates[i].to_dict(),
                "fidelity": fidelity,
            }
            for i in indices
        ]

    exact_indices = list(range(len(candidates)))
    if screen_fidelity is not None:
        screened = parallel_sweep(
            _score_point,
            points(exact_indices, screen_fidelity),
            jobs=jobs,
            strict=False,
        )
        result.screened = len(screened)
        result.screen_cost_s = sum(o.wall_s for o in screened)
        result.collapse_noops = sum(
            o.value["collapse_noop"] for o in screened if o.ok
        )
        # The PR 9 gotcha, surfaced per cell: a no-op collapse means the
        # screen paid exact cost for those candidates (single micro-batch
        # plans have nothing to fold).
        logger.info(
            "tune-screen-done",
            cell=cell.label(),
            screened=len(screened),
            failures=sum(1 for o in screened if not o.ok),
            collapse_noops=result.collapse_noops,
            cost_s=round(result.screen_cost_s, 2),
        )
        keep = max(
            MIN_SURVIVORS,
            int(math.ceil(len(candidates) * survivor_fraction)),
        )
        ranked = _rank(screened)
        survivors = ranked[:keep]
        if 0 not in survivors:  # the default always reaches exact scoring
            survivors.append(0)
        exact_indices = sorted(survivors)

    exact = parallel_sweep(
        _score_point, points(exact_indices, "exact"), jobs=jobs, strict=False
    )
    result.exact_scored = len(exact)
    result.exact_cost_s = sum(o.wall_s for o in exact)
    by_candidate = {
        exact_indices[o.index]: o for o in exact
    }
    default_outcome = by_candidate.get(0)
    winners = [
        (o.value["completion_time_us"], index)
        for index, o in sorted(by_candidate.items())
        if o.ok
    ]
    if not winners or default_outcome is None or not default_outcome.ok:
        failures = [o.error for o in exact if not o.ok]
        result.error = failures[0] if failures else "no candidate scored"
        return result
    tuned_us, winner_index = min(winners)
    result.entry = make_entry(
        collective=cell.collective,
        buffer_bytes=cell.buffer_bytes,
        cluster=cluster,
        config=candidates[winner_index],
        tuned_us=tuned_us,
        default_us=default_outcome.value["completion_time_us"],
        default_algorithm=candidates[0].algorithm,
    )
    result.status = "scored"
    return result


__all__ = [
    "Cell",
    "CellResult",
    "DEFAULT_CHUNK_KB_GRID",
    "DEFAULT_MBS_GRID",
    "DEFAULT_SURVIVOR_FRACTION",
    "DEFAULT_TB_ALLOWANCE_GRID",
    "SCHEDULER_CHOICES",
    "TuneReport",
    "candidate_space",
    "default_config",
    "tune",
]

"""Persistent, content-addressed tuning tables.

A tuning table maps ``(collective, buffer size, topology fingerprint)``
*cells* to the winning plan-shaping configuration the autotuner found
for that cell (:mod:`repro.tuning.tuner`).  Serving consults the table
at request time — :meth:`repro.core.backend.ResCCLBackend.plan` resolves
a tuned cell to the winning plan with no search on the hot path.

The table follows the same persistence discipline as the compiled-plan
cache (:mod:`repro.core.plancache`):

* **Keys** are SHA-256 content hashes over the cell identity plus
  :data:`TUNING_FORMAT_VERSION`, so a format bump makes every old cell
  invisible rather than corrupt.
* **Writes** are atomic (tmp file + ``os.replace``) and deterministic:
  the JSON serialization is sorted, carries no wall clocks, and is
  therefore byte-identical for the same corpus + seed.
* **Damage** is quarantined as a silent miss: an unreadable,
  unparseable, or version-mismatched table file is moved aside to
  ``<path>.corrupt`` and an empty table is served; an individual entry
  failing its embedded key self-check is dropped.  Both are counted in
  ``tuning_table_corrupt_total``.

Lookups publish ``tuning_table_{hits,misses}_total`` to the ambient
metrics registry.  The module-level :func:`get_table` /
:func:`configure_tuning` pair mirrors ``plancache.get_cache()`` — the
``RESCCL_TUNING_TABLE`` environment variable arms the table in worker
processes that never parse CLI flags.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from ..algorithms import available_algorithms, build_algorithm
from ..ir.task import parse_collective
from ..obs.metrics import current_registry
from ..topology import Cluster, profile_by_name

#: Bump whenever the entry schema (or anything its meaning depends on)
#: changes shape — old tables are then quarantined as silent misses.
TUNING_FORMAT_VERSION = 1


class TuningTableError(RuntimeError):
    """A tuning table unusable for serving (missing/mismatched)."""


@dataclass(frozen=True)
class TunedConfig:
    """The winning plan-shaping knobs for one cell.

    ``algorithm`` selects the plan *source* — a built-in registry name
    (the paper's HPDS-scheduled algorithms) or a ``taccl:``/``teccl:``
    synthesizer spec.  All sources compile under the ``scheduler``
    compile scheduler (``hpds`` unless the ablation ``rr`` ever wins).
    """

    algorithm: str
    scheduler: str = "hpds"
    max_microbatches: int = 16
    chunk_kb: int = 1024
    #: Pipelining allowance cap handed to TB allocation; ``None`` keeps
    #: the default (the plan's own micro-batch count).
    tb_allowance: Optional[int] = None

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "TunedConfig":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


def cell_key(collective: str, buffer_bytes: int, topology: str) -> str:
    """Content-hash identity of one tuning cell.

    The collective is case-folded so ``Collective.ALLGATHER.value``
    (``"Allgather"``) and the CLI spelling (``"allgather"``) address the
    same cell.
    """
    payload = "\x00".join(
        (
            f"v{TUNING_FORMAT_VERSION}",
            "cell",
            collective.lower(),
            str(int(buffer_bytes)),
            topology,
        )
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def make_entry(
    collective: str,
    buffer_bytes: int,
    cluster: Cluster,
    config: TunedConfig,
    tuned_us: float,
    default_us: float,
    default_algorithm: str,
) -> dict:
    """One self-checking table entry (JSON-safe, wall-clock free)."""
    topology = cluster.fingerprint()
    return {
        "key": cell_key(collective, buffer_bytes, topology),
        "collective": collective,
        "buffer_bytes": int(buffer_bytes),
        "topology": topology,
        "cluster": {
            "nodes": cluster.nodes,
            "gpus_per_node": cluster.gpus_per_node,
            "profile": cluster.profile.name,
        },
        "config": config.to_dict(),
        "tuned_us": tuned_us,
        "default_us": default_us,
        "default_algorithm": default_algorithm,
    }


@dataclass
class TableStats:
    """Lookup/damage accounting for one :class:`TuningTable`."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    dropped_entries: int = 0

    def summary(self) -> str:
        text = f"tuning table: {self.hits} hit(s), {self.misses} miss(es)"
        if self.corrupt or self.dropped_entries:
            text += (
                f" [{self.corrupt} quarantined file(s), "
                f"{self.dropped_entries} dropped entr(ies)]"
            )
        return text


class TuningTable:
    """In-memory view of one persistent tuning table file."""

    def __init__(self, path: Union[str, Path, None] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.entries: Dict[str, dict] = {}
        self.stats = TableStats()
        #: Resolved AlgoPrograms per (spec, topology) so a table hit on
        #: the serving hot path does not rebuild the program each call.
        self._programs: Dict[Tuple[str, str], object] = {}

    def __len__(self) -> int:
        return len(self.entries)

    # -- lookup ---------------------------------------------------------

    def lookup(
        self, collective: str, buffer_bytes: float, cluster: Cluster
    ) -> Optional[TunedConfig]:
        """The winning config for a cell, or ``None`` (silent miss)."""
        entry = self.entries.get(
            cell_key(collective, int(round(buffer_bytes)), cluster.fingerprint())
        )
        registry = current_registry()
        if entry is None:
            self.stats.misses += 1
            if registry is not None:
                registry.inc("tuning_table_misses_total")
            return None
        self.stats.hits += 1
        if registry is not None:
            registry.inc("tuning_table_hits_total")
        return TunedConfig.from_dict(entry["config"])

    def lookup_key(
        self, collective: str, buffer_bytes: float, cluster: Cluster
    ) -> Optional[str]:
        """The cell key when tuned, without touching hit/miss counters.

        This is the coalescing identity the service daemon folds into
        :func:`~repro.service.protocol.request_fingerprint`: requests
        that resolve to the same tuned cell share one compile.
        """
        key = cell_key(
            collective, int(round(buffer_bytes)), cluster.fingerprint()
        )
        return key if key in self.entries else None

    def resolve_program(self, config: TunedConfig, cluster: Cluster):
        """The winning :class:`AlgoProgram`, memoized per topology."""
        cache_key = (config.algorithm, cluster.fingerprint())
        program = self._programs.get(cache_key)
        if program is None:
            program = resolve_spec(config.algorithm, cluster)
            self._programs[cache_key] = program
        return program

    # -- mutation + persistence ----------------------------------------

    def put(self, entry: dict) -> None:
        self.entries[entry["key"]] = entry

    def save(self, path: Union[str, Path, None] = None) -> Path:
        """Atomically persist the table (sorted keys, no wall clocks)."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("tuning table has no path to save to")
        payload = {
            "version": TUNING_FORMAT_VERSION,
            "entries": {
                key: self.entries[key] for key in sorted(self.entries)
            },
        }
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, target)
        self.path = target
        return target

    def _quarantine(self, path: Path) -> None:
        """Move a damaged table aside as ``<path>.corrupt`` and count."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            pass
        self.stats.corrupt += 1
        registry = current_registry()
        if registry is not None:
            registry.inc("tuning_table_corrupt_total")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TuningTable":
        """Load a table; damage degrades to an empty table (silent miss).

        Mirrors the plan cache's disk-tier discipline: an unreadable or
        unparseable file, a version mismatch, or a payload that is not
        the expected shape quarantines the whole file to
        ``<path>.corrupt``; an individual entry whose embedded key does
        not match its content is dropped.  Either way lookups simply
        miss — a broken table never breaks serving.
        """
        table = cls(path)
        source = Path(path)
        try:
            raw = source.read_text(encoding="utf-8")
        except FileNotFoundError:
            return table
        except OSError:
            table._quarantine(source)
            return table
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            table._quarantine(source)
            return table
        if (
            not isinstance(payload, dict)
            or payload.get("version") != TUNING_FORMAT_VERSION
            or not isinstance(payload.get("entries"), dict)
        ):
            table._quarantine(source)
            return table
        registry = current_registry()
        for key, entry in payload["entries"].items():
            if not _entry_ok(key, entry):
                table.stats.dropped_entries += 1
                if registry is not None:
                    registry.inc("tuning_table_corrupt_total")
                continue
            table.entries[key] = entry
        return table

    def prewarm_entries(self) -> list:
        """Manifest-shaped prewarm jobs, one per tuned cell.

        Each is ``{"key": cell key, "payload": compile-op payload}`` —
        the exact shape the daemon's boot prewarm replays — compiling
        the *winning* plan source under the winning scheduler, so a
        restarted daemon serves every tuned cell warm from the first
        request.  Ordered by key for a deterministic boot sequence.
        """
        jobs = []
        for key in sorted(self.entries):
            entry = self.entries[key]
            config = entry["config"]
            jobs.append({
                "key": key,
                "payload": {
                    "op": "compile",
                    "algorithm": config["algorithm"],
                    "source": None,
                    "nodes": entry["cluster"]["nodes"],
                    "gpus": entry["cluster"]["gpus_per_node"],
                    "profile": entry["cluster"]["profile"],
                    "scheduler": config["scheduler"],
                    "buffer_mb": entry["buffer_bytes"] / float(1 << 20),
                    "mbs": config["max_microbatches"],
                    "degraded": False,
                },
            })
        return jobs

    # -- serving validation --------------------------------------------

    def mismatched_entries(self) -> list:
        """Entries whose recorded topology no longer matches reality.

        Each entry embeds the cluster shape it was tuned on *and* the
        full topology fingerprint.  Rebuilding the cluster from the
        shape and comparing fingerprints catches a table produced under
        different hardware constants (profile change, capacity edit) —
        serving such a table would silently hand out stale winners.
        """
        bad = []
        for entry in self.entries.values():
            shape = entry["cluster"]
            try:
                cluster = Cluster(
                    nodes=shape["nodes"],
                    gpus_per_node=shape["gpus_per_node"],
                    profile=profile_by_name(shape["profile"]),
                )
            except (KeyError, TypeError, ValueError):
                bad.append(entry)
                continue
            if cluster.fingerprint() != entry["topology"]:
                bad.append(entry)
        return bad


def _entry_ok(key: str, entry: object) -> bool:
    """Entry self-check: shape + embedded content-addressed key."""
    if not isinstance(entry, dict):
        return False
    required = ("key", "collective", "buffer_bytes", "topology", "config",
                "cluster")
    if any(field not in entry for field in required):
        return False
    if not isinstance(entry["config"], dict):
        return False
    if entry["key"] != key:
        return False
    try:
        expected = cell_key(
            entry["collective"], entry["buffer_bytes"], entry["topology"]
        )
    except (TypeError, ValueError):
        return False
    return expected == key


# ----------------------------------------------------------------------
# Spec resolution (shared by the tuner and the serving hot path)
# ----------------------------------------------------------------------


def resolve_spec(spec: str, cluster: Cluster):
    """Algorithm spec -> elaborated program (registry name or synth)."""
    if ":" in spec:
        from ..synth import TACCLSynthesizer, TECCLSynthesizer

        synth_name, _, coll_name = spec.partition(":")
        synthesizers = {"taccl": TACCLSynthesizer, "teccl": TECCLSynthesizer}
        builder = synthesizers.get(synth_name.lower())
        if builder is None:
            raise ValueError(f"unknown synthesizer {synth_name!r}")
        return builder().synthesize(cluster, parse_collective(coll_name))
    return build_algorithm(spec, cluster)


def spec_collective(spec: str) -> Optional[str]:
    """The collective a spec implements, from its name alone.

    Registry names end in their collective (``hm-allreduce``), synth
    specs carry it after the colon.  Returns ``None`` for anything
    unrecognizable (inline sources, file paths) — those simply never
    participate in tuning.
    """
    if not spec:
        return None
    if ":" in spec:
        name = spec.partition(":")[2]
    elif spec in available_algorithms():
        name = spec.rsplit("-", 1)[-1]
    else:
        return None
    try:
        return parse_collective(name).value.lower()
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Process-wide installed table (what ResCCLBackend and workers consult)
# ----------------------------------------------------------------------

_installed: Optional[TuningTable] = None
_resolved_env = False


def get_table() -> Optional[TuningTable]:
    """The installed tuning table, or ``None`` (tuning disabled).

    ``RESCCL_TUNING_TABLE`` arms the table on first use — the path by
    which service worker processes (which never parse CLI flags)
    inherit the daemon's ``--tuning-table``.
    """
    global _installed, _resolved_env
    if _installed is None and not _resolved_env:
        _resolved_env = True
        env_path = os.environ.get("RESCCL_TUNING_TABLE")
        if env_path:
            _installed = TuningTable.load(env_path)
    return _installed


def configure_tuning(
    table: Union[str, Path, TuningTable, None],
) -> Optional[TuningTable]:
    """Install (or clear, with ``None``) the process-wide tuning table."""
    global _installed, _resolved_env
    _resolved_env = True
    if table is None:
        _installed = None
    elif isinstance(table, TuningTable):
        _installed = table
    else:
        _installed = TuningTable.load(table)
    return _installed


__all__ = [
    "TUNING_FORMAT_VERSION",
    "TunedConfig",
    "TuningTable",
    "TuningTableError",
    "TableStats",
    "cell_key",
    "configure_tuning",
    "get_table",
    "make_entry",
    "resolve_spec",
    "spec_collective",
]

"""Parallelism configuration and communication-volume arithmetic.

Following the paper's Table 2: GPT-3 uses tensor parallelism (TP=8,
one node per TP group) with data parallelism across nodes; T5 uses pure
data parallelism (DP=16).  This module computes, for a given model and
parallel layout, the collective calls one training iteration issues and
their buffer sizes — the inputs the Megatron timing model feeds to a
communication backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .models import ModelConfig

#: Bytes per element for bf16/fp16 activations and gradients.
BYTES_PER_ELEMENT = 2


@dataclass(frozen=True)
class ParallelConfig:
    """Distributed layout of one training job.

    Attributes:
        tp: tensor-parallel group size (GPUs splitting each layer).
        dp: data-parallel replica count.
        batch_size: global batch size in samples.
        microbatch_size: samples per micro-batch (pipeline granularity).
    """

    tp: int
    dp: int
    batch_size: int
    microbatch_size: int = 1

    def __post_init__(self) -> None:
        if self.tp < 1 or self.dp < 1:
            raise ValueError("tp and dp must be >= 1")
        if self.batch_size < self.dp:
            raise ValueError(
                f"batch size {self.batch_size} smaller than dp {self.dp}"
            )
        if self.microbatch_size < 1:
            raise ValueError("microbatch_size must be >= 1")

    @property
    def world_size(self) -> int:
        return self.tp * self.dp

    @property
    def samples_per_replica(self) -> int:
        return self.batch_size // self.dp

    @property
    def microbatches_per_replica(self) -> int:
        return max(
            1, self.samples_per_replica // self.microbatch_size
        )


def tp_allreduce_bytes(model: ModelConfig, parallel: ParallelConfig) -> float:
    """Payload of one tensor-parallel activation AllReduce.

    Megatron's row/column-parallel layers AllReduce a
    (microbatch, seq, hidden) activation tensor.
    """
    return (
        parallel.microbatch_size
        * model.seq_len
        * model.hidden
        * BYTES_PER_ELEMENT
    )


def tp_allreduce_count(model: ModelConfig, parallel: ParallelConfig) -> int:
    """TP AllReduces per iteration: 2 forward + 2 backward per layer,
    repeated for every micro-batch the replica processes."""
    if parallel.tp == 1:
        return 0
    return 4 * model.layers * parallel.microbatches_per_replica


def dp_allreduce_bytes(model: ModelConfig, parallel: ParallelConfig) -> float:
    """Payload of the data-parallel gradient AllReduce (per TP shard)."""
    if parallel.dp == 1:
        return 0.0
    return model.params / parallel.tp * BYTES_PER_ELEMENT


@dataclass(frozen=True)
class CommDemand:
    """One class of collective calls an iteration issues."""

    scope: str  # "tp" (intra-node group) or "dp" (cross-node group)
    count: int
    nbytes: float


def iteration_demands(
    model: ModelConfig, parallel: ParallelConfig
) -> List[CommDemand]:
    """All collective traffic of one training iteration."""
    demands: List[CommDemand] = []
    tp_count = tp_allreduce_count(model, parallel)
    if tp_count:
        demands.append(
            CommDemand(
                scope="tp",
                count=tp_count,
                nbytes=tp_allreduce_bytes(model, parallel),
            )
        )
    dp_bytes = dp_allreduce_bytes(model, parallel)
    if dp_bytes:
        demands.append(CommDemand(scope="dp", count=1, nbytes=dp_bytes))
    return demands


__all__ = [
    "BYTES_PER_ELEMENT",
    "ParallelConfig",
    "CommDemand",
    "tp_allreduce_bytes",
    "tp_allreduce_count",
    "dp_allreduce_bytes",
    "iteration_demands",
]

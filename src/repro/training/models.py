"""Transformer model configurations for the end-to-end experiments.

The paper's section 5.5 trains GPT-3 variants (6.7B-45B, tensor
parallelism 8) and T5 variants (220M-3B, data parallelism 16) under
Megatron-LM.  These configs carry exactly what the timing model needs:
parameter count, layer count, hidden size, and sequence length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ModelConfig:
    """A transformer LM sized for the throughput model.

    Attributes:
        name: display name ("GPT-3 6.7B").
        family: "gpt3" or "t5".
        params: total parameter count.
        layers: transformer layer count.
        hidden: model (hidden) dimension.
        seq_len: training sequence length.
    """

    name: str
    family: str
    params: float
    layers: int
    hidden: int
    seq_len: int

    @property
    def params_billion(self) -> float:
        return self.params / 1e9

    def flops_per_token(self) -> float:
        """Training FLOPs per token: the standard 6 * params estimate."""
        return 6.0 * self.params


def _gpt3(name: str, params_b: float, layers: int, hidden: int) -> ModelConfig:
    return ModelConfig(
        name=name,
        family="gpt3",
        params=params_b * 1e9,
        layers=layers,
        hidden=hidden,
        seq_len=2048,
    )


def _t5(name: str, params_m: float, layers: int, hidden: int) -> ModelConfig:
    return ModelConfig(
        name=name,
        family="t5",
        params=params_m * 1e6,
        layers=layers,
        hidden=hidden,
        seq_len=512,
    )


GPT3_MODELS: List[ModelConfig] = [
    _gpt3("GPT-3 6.7B", 6.7, 32, 4096),
    _gpt3("GPT-3 13B", 13.0, 40, 5120),
    _gpt3("GPT-3 22B", 22.0, 48, 6144),
    _gpt3("GPT-3 44B", 44.0, 64, 7424),
]

T5_MODELS: List[ModelConfig] = [
    _t5("T5 220M", 220.0, 12, 768),
    _t5("T5 770M", 770.0, 24, 1024),
    _t5("T5 3B", 3000.0, 24, 2048),
]

_ALL: Dict[str, ModelConfig] = {
    m.name: m for m in GPT3_MODELS + T5_MODELS
}


def model_by_name(name: str) -> ModelConfig:
    """Look up a built-in model config by display name."""
    try:
        return _ALL[name]
    except KeyError:
        known = ", ".join(sorted(_ALL))
        raise ValueError(f"unknown model {name!r}; known: {known}") from None


__all__ = ["ModelConfig", "GPT3_MODELS", "T5_MODELS", "model_by_name"]

"""Megatron-LM-style end-to-end training throughput model.

Iteration time = compute + non-overlapped communication, with every
communication term measured by *executing the collective on the chosen
backend* in the discrete-event runtime:

* tensor-parallel activation AllReduces run on the TP group (one server,
  NVSwitch only) and sit on the critical path — Megatron's TP collectives
  block the matmuls around them;
* the data-parallel gradient AllReduce runs on the full cluster and
  partially overlaps the backward pass (``dp_overlap``).

Compute time comes from the standard ``6 * params * tokens`` FLOPs
estimate against the A100's peak throughput at a fixed model FLOPs
utilization.  Swapping the communication backend (NCCL / MSCCL / ResCCL)
is the experiment of Figure 13: the compute term is identical, so
throughput differences isolate the communication stack.

The paper reports a plain relink suffices to put ResCCL under Megatron;
here the backend is likewise a constructor argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

from ..algorithms import (
    hm_allgather,
    hm_allreduce,
    hm_reducescatter,
    mesh_allgather,
    mesh_allreduce,
    mesh_reducescatter,
)
from ..baselines import MSCCLBackend, NCCLBackend
from ..core import ResCCLBackend
from ..ir.task import Collective
from ..lang.builder import AlgoProgram
from ..runtime.simulator import simulate
from ..topology import Cluster, single_node
from .models import ModelConfig
from .parallelism import ParallelConfig, iteration_demands

#: A100 peak bf16 tensor throughput, FLOPs per microsecond.
A100_PEAK_FLOPS_PER_US = 312e12 / 1e6


def expert_program(cluster: Cluster, collective: Collective) -> AlgoProgram:
    """The expert algorithm a custom backend runs on this cluster shape."""
    if cluster.nodes == 1:
        builders = {
            Collective.ALLGATHER: mesh_allgather,
            Collective.REDUCESCATTER: mesh_reducescatter,
            Collective.ALLREDUCE: mesh_allreduce,
        }
        return builders[collective](cluster.world_size)
    builders = {
        Collective.ALLGATHER: hm_allgather,
        Collective.REDUCESCATTER: hm_reducescatter,
        Collective.ALLREDUCE: hm_allreduce,
    }
    return builders[collective](cluster.nodes, cluster.gpus_per_node)


Backend = Union[NCCLBackend, MSCCLBackend, ResCCLBackend]


def collective_time_us(
    backend: Backend,
    cluster: Cluster,
    collective: Collective,
    nbytes: float,
) -> float:
    """Measured completion time of one collective call on a backend."""
    if isinstance(backend, NCCLBackend):
        plan = backend.plan(cluster, collective, nbytes)
    else:
        program = expert_program(cluster, collective)
        plan = backend.plan(cluster, program, nbytes)
    return simulate(plan).completion_time_us


@dataclass
class IterationBreakdown:
    """Timing decomposition of one training iteration (microseconds)."""

    compute_us: float
    tp_comm_us: float
    dp_comm_us: float
    dp_exposed_us: float

    @property
    def total_us(self) -> float:
        return self.compute_us + self.tp_comm_us + self.dp_exposed_us

    @property
    def comm_fraction(self) -> float:
        """Share of iteration time spent in exposed communication."""
        if self.total_us <= 0:
            return 0.0
        return (self.tp_comm_us + self.dp_exposed_us) / self.total_us


@dataclass
class MegatronSimulator:
    """End-to-end trainer model parameterized by the CCL backend.

    Args:
        cluster: the full training cluster.
        backend: communication backend under test.
        mfu: model FLOPs utilization of the compute phase.
        dp_overlap: fraction of the gradient AllReduce hidden behind the
            backward pass (Megatron does not overlap gradient
            all-reduce unless ``--overlap-grad-reduce`` is set, so the
            default exposes it fully).
    """

    cluster: Cluster
    backend: Backend
    mfu: float = 0.5
    dp_overlap: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.mfu <= 1.0:
            raise ValueError(f"mfu must be in (0, 1], got {self.mfu}")
        if not 0.0 <= self.dp_overlap <= 1.0:
            raise ValueError(
                f"dp_overlap must be in [0, 1], got {self.dp_overlap}"
            )
        self._comm_cache: Dict[Tuple[str, float], float] = {}

    # ------------------------------------------------------------------

    def _tp_cluster(self, parallel: ParallelConfig) -> Cluster:
        if parallel.tp > self.cluster.gpus_per_node:
            raise ValueError(
                f"TP group of {parallel.tp} exceeds one server "
                f"({self.cluster.gpus_per_node} GPUs)"
            )
        return single_node(parallel.tp, profile=self.cluster.profile)

    def _comm_time(self, scope: str, parallel: ParallelConfig, nbytes: float) -> float:
        key = (scope + str(parallel.tp), nbytes)
        cached = self._comm_cache.get(key)
        if cached is not None:
            return cached
        cluster = (
            self._tp_cluster(parallel) if scope == "tp" else self.cluster
        )
        value = collective_time_us(
            self.backend, cluster, Collective.ALLREDUCE, nbytes
        )
        self._comm_cache[key] = value
        return value

    # ------------------------------------------------------------------

    def iteration(
        self, model: ModelConfig, parallel: ParallelConfig
    ) -> IterationBreakdown:
        """Timing breakdown of one iteration of ``model`` at this layout."""
        if parallel.world_size != self.cluster.world_size:
            raise ValueError(
                f"layout needs {parallel.world_size} GPUs, cluster has "
                f"{self.cluster.world_size}"
            )
        tokens = parallel.batch_size * model.seq_len
        compute_us = model.flops_per_token() * tokens / (
            self.cluster.world_size * A100_PEAK_FLOPS_PER_US * self.mfu
        )
        tp_comm_us = 0.0
        dp_comm_us = 0.0
        for demand in iteration_demands(model, parallel):
            per_call = self._comm_time(demand.scope, parallel, demand.nbytes)
            if demand.scope == "tp":
                tp_comm_us += demand.count * per_call
            else:
                dp_comm_us += demand.count * per_call
        dp_exposed_us = dp_comm_us * (1.0 - self.dp_overlap)
        return IterationBreakdown(
            compute_us=compute_us,
            tp_comm_us=tp_comm_us,
            dp_comm_us=dp_comm_us,
            dp_exposed_us=dp_exposed_us,
        )

    def throughput(
        self, model: ModelConfig, parallel: ParallelConfig
    ) -> float:
        """Training throughput in samples per second."""
        breakdown = self.iteration(model, parallel)
        return parallel.batch_size / (breakdown.total_us / 1e6)


__all__ = [
    "A100_PEAK_FLOPS_PER_US",
    "expert_program",
    "collective_time_us",
    "IterationBreakdown",
    "MegatronSimulator",
]

"""End-to-end Megatron-style training throughput model."""

from .megatron import (
    IterationBreakdown,
    MegatronSimulator,
    collective_time_us,
    expert_program,
)
from .models import GPT3_MODELS, T5_MODELS, ModelConfig, model_by_name
from .parallelism import (
    CommDemand,
    ParallelConfig,
    dp_allreduce_bytes,
    iteration_demands,
    tp_allreduce_bytes,
    tp_allreduce_count,
)

__all__ = [
    "MegatronSimulator",
    "IterationBreakdown",
    "collective_time_us",
    "expert_program",
    "ModelConfig",
    "GPT3_MODELS",
    "T5_MODELS",
    "model_by_name",
    "ParallelConfig",
    "CommDemand",
    "tp_allreduce_bytes",
    "tp_allreduce_count",
    "dp_allreduce_bytes",
    "iteration_demands",
]

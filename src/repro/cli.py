"""Command-line interface for the ResCCL reproduction.

Subcommands::

    resccl algos                         # list built-in algorithms
    resccl verify ALGO [options]         # parse/validate/verify a program
    resccl compile ALGO [--rank R]       # show phases + generated kernel
    resccl run ALGO [--backend B]        # simulate one collective call
    resccl compare ALGO [options]        # all three backends side by side
    resccl trace ALGO [options]          # ASCII Gantt / Chrome trace
    resccl profile ALGO [options]        # spans + critical-path breakdown
    resccl tune [options]                # autotune plans into a table

``ALGO`` is either a built-in algorithm name (see ``resccl algos``), a
synthesizer spec (``taccl:allreduce`` / ``teccl:allgather``), or a path
to a textual ResCCLang file.  The cluster defaults to the paper's
2-server x 8-GPU A100 testbed; override with ``--nodes/--gpus/--profile``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

import inspect

from .algorithms import available_algorithms, build_algorithm
from .analysis import format_table
from .baselines import MSCCLBackend, NCCLBackend
from .core import ResCCLBackend, ResCCLCompiler
from .core import plancache
from .experiments import available_experiments, run_experiment
from .faults import INJECT_SCENARIOS, POLICY_NAMES, run_with_faults
from .ir.task import parse_collective
from .lang import AlgoProgram, parse_program, validate_program
from .analysis import (
    ascii_gantt,
    attribute,
    to_chrome_trace,
    validate_chrome_trace,
    verify_delivery,
    write_chrome_trace,
)
from .obs import observe
from .runtime import MB, SimulationDeadlock, simulate, verify_collective
from .synth import (
    TACCLSynthesizer,
    TECCLSynthesizer,
    read_msccl_xml,
    write_msccl_xml,
)
from .topology import Cluster, profile_by_name


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=2, help="server count")
    parser.add_argument(
        "--gpus", type=int, default=8, help="GPUs per server"
    )
    parser.add_argument(
        "--profile", default="A100", help="GPU profile (A100 or V100)"
    )


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--inject", default=None, metavar="SPEC",
        help="fault scenario to inject "
        f"({'/'.join(INJECT_SCENARIOS)}[:key=value,...])",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-schedule RNG seed")
    parser.add_argument(
        "--recovery", default="fallback",
        choices=list(POLICY_NAMES),
        help="recovery policy when faults are injected",
    )
    parser.add_argument(
        "--failover-factor", type=float, default=0.25,
        help="capacity retained by dead edges in a fallback/resume "
        "cluster; 0 means no failover path, so a partitioned topology "
        "makes recovery impossible (exit code 2)",
    )


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir", nargs="?", const="auto", default=None, metavar="DIR",
        help="persist compiled plans on disk; without a DIR argument uses "
        "$XDG_CACHE_HOME/resccl (~/.cache/resccl)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the compiled-plan cache entirely",
    )


def _configure_cache(args: argparse.Namespace) -> None:
    """Apply ``--cache-dir``/``--no-cache`` to the process-wide plan cache."""
    if getattr(args, "no_cache", False):
        plancache.configure(enabled=False)
    elif getattr(args, "cache_dir", None) is not None:
        plancache.configure(cache_dir=args.cache_dir)


def _add_tuning_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--tuning-table", default=None, metavar="PATH",
        help="serve tuned plans from this 'resccl tune' table; cells it "
        "covers replace the requested plan source and knobs with the "
        "tuned winners (docs/performance.md#autotuning)",
    )


def _configure_tuning(args: argparse.Namespace) -> None:
    """Install ``--tuning-table`` as the process-wide tuning table."""
    path = getattr(args, "tuning_table", None)
    if path is None:
        return
    if not Path(path).is_file():
        raise SystemExit(f"error: tuning table not found: {path}")
    from .tuning.table import configure_tuning

    configure_tuning(path)


def _cluster_from(args: argparse.Namespace) -> Cluster:
    return Cluster(
        nodes=args.nodes,
        gpus_per_node=args.gpus,
        profile=profile_by_name(args.profile),
    )


_DEFAULT_SHAPE = (2, 8)  # the paper's testbed; see _add_cluster_args


def _fit_cluster(
    args: argparse.Namespace, cluster: Cluster, program: AlgoProgram
) -> Cluster:
    """Refit the *default* cluster to a program of a different world size.

    DSL files pin their rank count; when the user did not choose a
    cluster shape explicitly, size the testbed to the program instead of
    failing validation with a world-size mismatch.
    """
    if program.nranks == cluster.world_size:
        return cluster
    if (args.nodes, args.gpus) != _DEFAULT_SHAPE:
        return cluster  # explicit shape: let validation report the mismatch
    gpus_per_node = min(program.header.gpus_per_node, program.nranks)
    if gpus_per_node < 1 or program.nranks % gpus_per_node != 0:
        gpus_per_node = program.nranks
    return Cluster(
        nodes=program.nranks // gpus_per_node,
        gpus_per_node=gpus_per_node,
        profile=profile_by_name(args.profile),
    )


def _resolve_algorithm(spec: str, cluster: Cluster) -> AlgoProgram:
    """Name, synthesizer spec, or DSL file path -> elaborated program."""
    if spec in available_algorithms():
        return build_algorithm(spec, cluster)
    if ":" in spec:
        synth_name, _, coll_name = spec.partition(":")
        synthesizers = {"taccl": TACCLSynthesizer, "teccl": TECCLSynthesizer}
        if synth_name.lower() in synthesizers:
            collective = parse_collective(coll_name)
            return synthesizers[synth_name.lower()]().synthesize(
                cluster, collective
            )
    path = Path(spec)
    if path.exists():
        if path.suffix == ".xml":
            return read_msccl_xml(str(path))
        return parse_program(path.read_text())
    raise SystemExit(
        f"error: {spec!r} is not a built-in algorithm, a synthesizer spec "
        f"(taccl:/teccl:<collective>), or a readable file.\n"
        f"Built-ins: {', '.join(available_algorithms())}"
    )


def _make_backend(name: str, max_microbatches: int):
    name = name.lower()
    if name == "resccl":
        return ResCCLBackend(max_microbatches=max_microbatches)
    if name == "msccl":
        return MSCCLBackend(max_microbatches=max_microbatches)
    if name == "nccl":
        return NCCLBackend(max_microbatches=max_microbatches)
    raise SystemExit(f"error: unknown backend {name!r} (resccl/msccl/nccl)")


def _simulate(backend, cluster, program, buffer_bytes):
    if isinstance(backend, NCCLBackend):
        plan = backend.plan(cluster, program.collective, buffer_bytes)
    else:
        plan = backend.plan(cluster, program, buffer_bytes)
    return simulate(plan)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_algos(args: argparse.Namespace) -> int:
    del args
    for name in available_algorithms():
        print(name)
    print("taccl:<collective>  (synthesized)")
    print("teccl:<collective>  (synthesized)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    print(f"program: {program!r}")
    report = validate_program(program, cluster)
    if not report.ok:
        print("static validation FAILED:")
        for issue in report.issues[:20]:
            print(f"  - {issue}")
        return 1
    print("static validation: ok")
    result = verify_collective(program)
    if not result.ok:
        print("collective semantics FAILED:")
        for error in result.errors[:20]:
            print(f"  - {error}")
        return 1
    print(f"collective semantics: ok ({program.collective.value} "
          "postcondition established)")
    plan = ResCCLBackend(max_microbatches=4).plan(cluster, program, 4 * MB)
    delivery = verify_delivery(plan)
    if not delivery.ok:
        print("chunk-level delivery FAILED:")
        for error in delivery.errors[:20]:
            print(f"  - {error}")
        return 1
    print(f"chunk-level delivery: ok ({delivery.summary()})")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    compiled = ResCCLCompiler(
        scheduler=args.scheduler,
        indexed_schedule=not args.reference_schedule,
    ).compile(program, cluster)
    print(f"compiled {program.name!r} for {cluster}")
    for phase, micros in compiled.phase_times_us.items():
        print(f"  {phase:<11} {micros / 1000.0:9.2f} ms")
    print(
        f"pipeline: {compiled.pipeline.task_count} tasks in "
        f"{compiled.pipeline.depth} sub-pipelines; "
        f"{compiled.tb_count()} thread blocks"
    )
    if args.kernel:
        print()
        print(compiled.kernel_source(args.rank, n_microbatches=args.mbs))
    return 0


def _add_fidelity_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sim-fidelity", default="exact", choices=["exact", "fast"],
        help="simulation fidelity preset (see docs/performance.md): "
        "'exact' is bit-reproducible across every solver/queue "
        "configuration; 'fast' trades a bounded completion-time error "
        "(rate hysteresis + micro-batch collapse) for wall-clock speed",
    )


def _apply_fidelity(plan, args: argparse.Namespace):
    """The plan with ``--sim-fidelity`` applied to its sim config."""
    preset = getattr(args, "sim_fidelity", "exact")
    if preset == "exact":
        return plan
    return dataclasses.replace(plan, config=plan.config.with_fidelity(preset))


def _print_deadlock(exc: SimulationDeadlock) -> None:
    print("simulation deadlocked:", file=sys.stderr)
    print(str(exc), file=sys.stderr)


def cmd_run(args: argparse.Namespace) -> int:
    _configure_cache(args)
    _configure_tuning(args)
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    cluster = _fit_cluster(args, cluster, program)
    backend = _make_backend(args.backend, args.mbs)
    if isinstance(backend, NCCLBackend):
        plan = backend.plan(cluster, program.collective, args.buffer_mb * MB)
    else:
        plan = backend.plan(cluster, program, args.buffer_mb * MB)
    plan = _apply_fidelity(plan, args)
    try:
        if args.inject:
            try:
                outcome = run_with_faults(
                    plan,
                    args.inject,
                    seed=args.seed,
                    intensity=args.fault_intensity,
                    recovery=args.recovery,
                    record_trace=True,
                    fallback_capacity_factor=args.failover_factor,
                )
            except ValueError as exc:
                raise SystemExit(f"error: {exc}") from None
            report = outcome.report
            print(report.summary())
            stats = report.fault_stats
            if stats is not None:
                print(stats.summary())
            print(
                f"goodput vs clean run: {outcome.goodput_ratio:.1%} "
                f"(clean {outcome.baseline.completion_time_us / 1e3:.2f} ms, "
                f"faulted {report.completion_time_us / 1e3:.2f} ms)"
            )
            recovery_events = [
                event for event in report.trace
                if event.kind.startswith(("fault:", "detect:", "recover:"))
            ]
            for event in recovery_events[:20]:
                print(
                    f"  {event.kind:<20} "
                    f"[{event.start_us / 1e3:.3f}, {event.end_us / 1e3:.3f}] ms"
                )
            if len(recovery_events) > 20:
                print(f"  ... and {len(recovery_events) - 20} more event(s)")
        else:
            report = simulate(plan)
            print(report.summary())
    except SimulationDeadlock as exc:
        _print_deadlock(exc)
        return 2
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    out = Path(args.output)
    if out.suffix == ".xml":
        write_msccl_xml(program, str(out))
        print(f"wrote MSCCL-XML: {out} ({len(program)} transfers)")
    else:
        out.write_text(program.to_source())
        print(f"wrote ResCCLang: {out} ({len(program)} transfers)")
    return 0


def _parse_ranks(args: argparse.Namespace) -> Optional[List[int]]:
    """The rank filter of ``trace``/``profile``: ``--ranks`` or ``--rank``.

    Returns ``None`` for "all ranks".  Both renderers (Gantt and Chrome
    export) receive the same list, so they always agree on the filter.
    """
    ranks_arg = getattr(args, "ranks", None)
    if ranks_arg:
        try:
            parsed = sorted(
                {int(tok) for tok in ranks_arg.split(",") if tok.strip()}
            )
        except ValueError:
            raise SystemExit(
                "error: --ranks wants a comma-separated list of rank "
                f"numbers, got {ranks_arg!r}"
            ) from None
        if any(r < 0 for r in parsed):
            return None  # an explicit -1 means "all"
        return parsed or None
    rank = getattr(args, "rank", None)
    if rank is None or rank < 0:
        return None
    return [rank]


def _traced_report(plan, args: argparse.Namespace):
    """Simulate with tracing on, under fault injection when requested."""
    if getattr(args, "inject", None):
        try:
            outcome = run_with_faults(
                plan,
                args.inject,
                seed=args.seed,
                recovery=args.recovery,
                record_trace=True,
                fallback_capacity_factor=getattr(
                    args, "failover_factor", 0.25
                ),
            )
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
        return outcome.report
    return simulate(plan, record_trace=True)


def cmd_trace(args: argparse.Namespace) -> int:
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    backend = _make_backend(args.backend, args.mbs)
    if isinstance(backend, NCCLBackend):
        plan = backend.plan(cluster, program.collective, args.buffer_mb * MB)
    else:
        plan = backend.plan(cluster, program, args.buffer_mb * MB)
    plan = _apply_fidelity(plan, args)
    try:
        report = _traced_report(plan, args)
    except SimulationDeadlock as exc:
        _print_deadlock(exc)
        return 2
    print(report.summary())
    print()
    ranks = _parse_ranks(args)
    print(ascii_gantt(report, width=args.width, ranks=ranks))
    if args.output:
        write_chrome_trace(report, args.output, ranks=ranks)
        print(f"\nChrome trace written to {args.output} "
              "(load in chrome://tracing or Perfetto)")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    _configure_cache(args)
    _configure_tuning(args)
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    cluster = _fit_cluster(args, cluster, program)
    backend = _make_backend(args.backend, args.mbs)
    ranks = _parse_ranks(args)
    try:
        with observe() as obs:
            if isinstance(backend, NCCLBackend):
                plan = backend.plan(
                    cluster, program.collective, args.buffer_mb * MB
                )
            else:
                plan = backend.plan(cluster, program, args.buffer_mb * MB)
            plan = _apply_fidelity(plan, args)
            report = _traced_report(plan, args)
    except SimulationDeadlock as exc:
        _print_deadlock(exc)
        return 2
    print(report.summary())
    if report.fault_stats is not None:
        print(report.fault_stats.summary())
    print(report.counters.summary())
    print(plancache.get_cache().stats.summary())
    print()
    print("pipeline spans (wall clock):")
    print(obs.tracer.render())
    print()
    print(attribute(report, dag=plan.dag).render())
    print()
    print("metrics:")
    print(obs.registry.render(limit=args.metrics_limit))
    if args.output:
        trace = to_chrome_trace(
            report,
            ranks=ranks,
            spans=obs.tracer.to_chrome_events(),
            include_counters=True,
        )
        validate_chrome_trace(trace)
        Path(args.output).write_text(json.dumps(trace))
        print(f"\nunified trace written to {args.output} "
              "(load in Perfetto or chrome://tracing)")
    if args.metrics_out:
        out = Path(args.metrics_out)
        if out.suffix == ".prom":
            out.write_text(obs.registry.to_prometheus())
        else:
            out.write_text(json.dumps(obs.registry.to_json(), indent=2))
        print(f"metrics written to {out}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.list:
        for name in available_experiments():
            print(name)
        return 0
    if not args.name:
        raise SystemExit(
            "error: give an experiment id or --list; known: "
            + ", ".join(available_experiments())
        )
    _configure_cache(args)
    from .experiments import REGISTRY

    params = {}
    runner = REGISTRY.get(args.name)
    if runner is not None:
        accepted = inspect.signature(runner).parameters
        if "seed" in accepted:
            params["seed"] = args.seed
        if args.recovery and "policies" in accepted:
            params["policies"] = tuple(args.recovery)
        if args.scenario and "scenario" in accepted:
            params["scenario"] = args.scenario
        if "jobs" in accepted:
            params["jobs"] = (
                args.jobs if args.jobs is not None else (os.cpu_count() or 1)
            )
    result = run_experiment(args.name, **params)
    print(result.render())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    _configure_cache(args)
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    cluster = _fit_cluster(args, cluster, program)
    rows = []
    baseline: Optional[float] = None
    for name in ("NCCL", "MSCCL", "ResCCL"):
        backend = _make_backend(name, args.mbs)
        try:
            report = _simulate(backend, cluster, program, args.buffer_mb * MB)
        except SimulationDeadlock as exc:
            print(f"backend {name}:", file=sys.stderr)
            _print_deadlock(exc)
            return 2
        if baseline is None:
            baseline = report.algo_bandwidth
        rows.append(
            [
                name,
                f"{report.algo_bandwidth_gbps:.1f}",
                f"{report.completion_time_us / 1000.0:.2f}",
                f"{report.algo_bandwidth / baseline:.2f}x",
                str(report.max_tbs_per_rank()),
                f"{report.avg_idle_fraction():.1%}",
            ]
        )
    print(f"{program.name} on {cluster}, {args.buffer_mb} MB:\n")
    print(
        format_table(
            ["backend", "algbw GB/s", "time ms", "vs NCCL", "TBs/rank",
             "TB idle"],
            rows,
        )
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceConfig, ServiceDaemon

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        default_deadline_ms=args.default_deadline_ms,
        hang_timeout_s=args.hang_timeout,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown,
        cache_dir=args.cache_dir,
        trace_sample=args.trace_sample,
        journal_dir=args.journal_dir,
        drain_grace_ms=args.drain_grace_ms,
        prewarm_limit=args.prewarm_limit,
        tuning_table=args.tuning_table,
    )
    return ServiceDaemon(config).run_forever()


def cmd_tune(args: argparse.Namespace) -> int:
    from .tuning.tuner import Cell, tune

    _configure_cache(args)
    collectives = [c.strip() for c in args.collectives.split(",") if c.strip()]
    try:
        sizes = [float(s) for s in args.sizes_mb.split(",") if s.strip()]
    except ValueError:
        raise SystemExit(
            f"error: --sizes-mb wants comma-separated numbers, "
            f"got {args.sizes_mb!r}"
        ) from None
    if not collectives or not sizes:
        raise SystemExit("error: need at least one collective and one size")
    schedulers = tuple(
        s.strip() for s in args.schedulers.split(",") if s.strip()
    )
    cells = [
        Cell(
            collective=collective,
            buffer_mb=size,
            nodes=args.nodes,
            gpus=args.gpus,
            profile=args.profile,
        )
        for collective in collectives
        for size in sizes
    ]
    table_path = Path(
        args.table
        if args.table
        else plancache.default_cache_dir() / "tuning_table.json"
    )
    report = tune(
        cells,
        table_path,
        jobs=args.jobs,
        schedulers=schedulers,
        screen_fidelity=args.screen,
        force=args.force,
    )
    rows = []
    failed = 0
    for result in report.results:
        if result.entry is not None:
            winner = result.entry["config"]["algorithm"]
            tuned_ms = f"{result.entry['tuned_us'] / 1e3:.2f}"
            default_ms = f"{result.entry['default_us'] / 1e3:.2f}"
            win = f"{result.improvement:+.1%}"
        else:
            failed += 1
            winner, tuned_ms, default_ms, win = "-", "-", "-", "-"
        rows.append([
            result.cell.label(), result.status, winner, tuned_ms,
            default_ms, win, str(result.candidates),
            f"{result.wall_s:.1f}",
        ])
    print(
        format_table(
            ["cell", "status", "winner", "tuned ms", "default ms",
             "vs default", "cands", "wall s"],
            rows,
        )
    )
    print(
        f"\ntable: {table_path} ({len(report.table)} cell(s); "
        f"{len(report.scored)} scored, {len(report.skipped)} skipped, "
        f"{failed} failed; search cost {report.search_cost_s:.1f}s)"
    )
    return 1 if failed else 0


def cmd_trace_request(args: argparse.Namespace) -> int:
    from .analysis import request_trace_to_chrome, validate_chrome_trace
    from .service import ServiceClient, ServiceError
    from .service.tracing import render_trace

    with ServiceClient(args.host, args.port) as client:
        try:
            trace = client.request_trace(args.trace_id)
        except ServiceError as exc:
            if exc.status == 404:
                print(
                    f"trace {args.trace_id!r} not retained: it was never "
                    "sampled, or the flight recorder evicted it "
                    "(see /debug/requests for what is retained)",
                    file=sys.stderr,
                )
            else:
                print(f"trace fetch failed: {exc}", file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"cannot reach daemon at {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 1
    print(render_trace(trace))
    if args.output:
        chrome = request_trace_to_chrome(trace)
        validate_chrome_trace(chrome)
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(chrome, fh, indent=1)
        print(f"\nPerfetto trace written to {args.output} "
              f"({len(chrome['traceEvents'])} events)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="resccl",
        description="ResCCL reproduction: compile, verify, and simulate "
        "collective communication algorithms.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algos", help="list built-in algorithms")

    p_verify = sub.add_parser("verify", help="validate + verify a program")
    p_verify.add_argument("algorithm")
    _add_cluster_args(p_verify)

    p_compile = sub.add_parser("compile", help="compile and inspect")
    p_compile.add_argument("algorithm")
    p_compile.add_argument("--scheduler", default="hpds", choices=["hpds", "rr"])
    p_compile.add_argument(
        "--reference-schedule", action="store_true",
        help="use the reference (unindexed) compile path; outputs are "
        "bit-identical to the default indexed path, only slower")
    p_compile.add_argument("--kernel", action="store_true",
                           help="print the generated kernel listing")
    p_compile.add_argument("--rank", type=int, default=0)
    p_compile.add_argument("--mbs", type=int, default=8,
                           help="micro-batches in the kernel listing")
    _add_cluster_args(p_compile)

    p_run = sub.add_parser("run", help="simulate one collective call")
    p_run.add_argument("algorithm")
    p_run.add_argument("--backend", default="resccl")
    p_run.add_argument("--buffer-mb", type=int, default=256)
    p_run.add_argument("--mbs", type=int, default=16,
                       help="micro-batch cap")
    p_run.add_argument(
        "--inject", default=None, metavar="SPEC",
        help="fault scenario to inject "
        f"({'/'.join(INJECT_SCENARIOS)}[:key=value,...])",
    )
    p_run.add_argument("--seed", type=int, default=0,
                       help="fault-schedule RNG seed")
    p_run.add_argument("--fault-intensity", type=float, default=1.0,
                       help="fraction of the fault schedule to apply [0,1]")
    p_run.add_argument(
        "--recovery", default="fallback", choices=list(POLICY_NAMES),
        help="recovery policy when faults are injected",
    )
    p_run.add_argument(
        "--failover-factor", type=float, default=0.25,
        help="capacity retained by dead edges in a fallback/resume "
        "cluster; 0 means no failover path, so a partitioned topology "
        "makes recovery impossible (exit code 2)",
    )
    _add_fidelity_arg(p_run)
    _add_cache_args(p_run)
    _add_tuning_arg(p_run)
    _add_cluster_args(p_run)

    p_cmp = sub.add_parser("compare", help="all three backends side by side")
    p_cmp.add_argument("algorithm")
    p_cmp.add_argument("--buffer-mb", type=int, default=256)
    p_cmp.add_argument("--mbs", type=int, default=16)
    _add_cache_args(p_cmp)
    _add_cluster_args(p_cmp)

    p_export = sub.add_parser(
        "export",
        help="write an algorithm as ResCCLang text or MSCCL-XML",
    )
    p_export.add_argument("algorithm")
    p_export.add_argument("output",
                          help=".rescclang or .xml destination path")
    _add_cluster_args(p_export)

    p_trace = sub.add_parser(
        "trace", help="execution timeline (ASCII Gantt / Chrome trace)"
    )
    p_trace.add_argument("algorithm")
    p_trace.add_argument("--backend", default="resccl")
    p_trace.add_argument("--buffer-mb", type=int, default=64)
    p_trace.add_argument("--mbs", type=int, default=8)
    p_trace.add_argument("--rank", type=int, default=0,
                         help="rank whose TBs to chart (-1 for all)")
    p_trace.add_argument("--ranks", default=None, metavar="R1,R2,...",
                         help="comma-separated rank filter "
                         "(overrides --rank)")
    p_trace.add_argument("--width", type=int, default=100)
    p_trace.add_argument("--output", help="write Chrome trace JSON here")
    _add_fidelity_arg(p_trace)
    _add_fault_args(p_trace)
    _add_cluster_args(p_trace)

    p_prof = sub.add_parser(
        "profile",
        help="pipeline spans, critical-path attribution, unified trace",
    )
    p_prof.add_argument("algorithm")
    p_prof.add_argument("--backend", default="resccl")
    p_prof.add_argument("--buffer-mb", type=int, default=64)
    p_prof.add_argument("--mbs", type=int, default=8)
    p_prof.add_argument("--ranks", default=None, metavar="R1,R2,...",
                        help="rank filter for the exported trace lanes")
    p_prof.add_argument("--output",
                        help="write the unified Perfetto/Chrome trace here")
    p_prof.add_argument("--metrics-out",
                        help="write metrics here (.prom for Prometheus "
                        "text format, anything else for JSON)")
    p_prof.add_argument("--metrics-limit", type=int, default=12,
                        help="metric series shown inline (0 = all)")
    _add_fidelity_arg(p_prof)
    _add_fault_args(p_prof)
    _add_cache_args(p_prof)
    _add_tuning_arg(p_prof)
    _add_cluster_args(p_prof)

    p_serve = sub.add_parser(
        "serve",
        help="run the compile/simulate service daemon (see docs/service.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="listen port (0 = ephemeral)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="compile/simulate worker processes")
    p_serve.add_argument("--queue-depth", type=int, default=32,
                         help="admission queue bound; beyond it requests "
                         "are shed with HTTP 429")
    p_serve.add_argument("--default-deadline-ms", type=float, default=30000,
                         help="deadline budget for requests that send none")
    p_serve.add_argument("--hang-timeout", type=float, default=10.0,
                         help="seconds without a worker heartbeat before "
                         "it is killed and respawned")
    p_serve.add_argument("--breaker-threshold", type=int, default=3,
                         help="consecutive primary timeouts that trip the "
                         "degraded-mode circuit breaker")
    p_serve.add_argument("--breaker-cooldown", type=float, default=5.0,
                         help="seconds the breaker stays open before "
                         "probing the primary path again")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="shared on-disk plan-cache tier for the "
                         "worker processes")
    p_serve.add_argument("--trace-sample", type=float, default=1.0,
                         metavar="RATE",
                         help="fraction of requests given full span traces "
                         "(1.0 = every request, 0.0625 = every 16th, "
                         "0 = correlation ids only)")
    p_serve.add_argument("--journal-dir", default=None, metavar="DIR",
                         help="arm the crash-only lifecycle: write-ahead "
                         "request journal (replayed on boot), cache-prewarm "
                         "manifest, and persisted flight-recorder errors")
    p_serve.add_argument("--drain-grace-ms", type=float, default=10000,
                         help="budget for draining in-flight requests on "
                         "SIGTERM before shutdown (a second signal aborts "
                         "the drain)")
    p_serve.add_argument("--prewarm-limit", type=int, default=32,
                         help="hot plan-cache keys persisted on drain and "
                         "compiled before /readyz flips green on the next "
                         "boot (0 disables prewarm)")
    p_serve.add_argument("--tuning-table", default=None, metavar="PATH",
                         help="serve tuned plans from this 'resccl tune' "
                         "table; its cells are prewarmed before /readyz "
                         "and a table whose topology fingerprints do not "
                         "match this build fails startup (exit 2)")

    p_tune = sub.add_parser(
        "tune",
        help="search plan-shaping knobs per (collective, size, topology) "
        "cell and persist the winners as a tuning table",
    )
    p_tune.add_argument(
        "--collectives", default="allreduce,allgather,reducescatter",
        metavar="C1,C2,...",
        help="collectives to tune (comma-separated)",
    )
    p_tune.add_argument(
        "--sizes-mb", default="32,64", metavar="S1,S2,...",
        help="buffer sizes in MB (comma-separated; one cell per "
        "collective x size)",
    )
    p_tune.add_argument(
        "--table", default=None, metavar="PATH",
        help="tuning-table file to create/extend (default: "
        "tuning_table.json in the plan-cache directory); already-tuned "
        "cells are skipped, so interrupted runs resume",
    )
    p_tune.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the candidate sweep "
        "(default: one per CPU core)",
    )
    p_tune.add_argument(
        "--schedulers", default="hpds,taccl,teccl", metavar="S1,S2,...",
        help="plan sources to search: 'hpds' sweeps the built-in "
        "HPDS-scheduled family, 'taccl'/'teccl' add synthesized plans",
    )
    p_tune.add_argument(
        "--screen", default="fast", choices=["fast", "exact"],
        help="first-stage fidelity: 'fast' screens the whole grid "
        "cheaply and re-scores survivors exactly (successive halving); "
        "'exact' scores everything exactly in one stage",
    )
    p_tune.add_argument(
        "--force", action="store_true",
        help="re-tune cells already present in the table",
    )
    _add_cache_args(p_tune)
    _add_cluster_args(p_tune)

    p_treq = sub.add_parser(
        "trace-request",
        help="fetch one stitched request trace from a running daemon",
    )
    p_treq.add_argument("trace_id",
                        help="trace id from a reply body, X-Trace-Id "
                        "header, /metrics exemplar, or /debug/requests")
    p_treq.add_argument("--host", default="127.0.0.1")
    p_treq.add_argument("--port", type=int, default=8642)
    p_treq.add_argument("--output", metavar="PATH",
                        help="also write the trace as Perfetto/Chrome "
                        "JSON here")

    p_exp = sub.add_parser(
        "experiment", help="reproduce one of the paper's tables/figures"
    )
    p_exp.add_argument("name", nargs="?", help="experiment id (see --list)")
    p_exp.add_argument("--list", action="store_true",
                       help="list available experiments")
    p_exp.add_argument("--seed", type=int, default=0,
                       help="RNG seed for seeded experiments")
    p_exp.add_argument(
        "--recovery", action="append", choices=list(POLICY_NAMES),
        metavar="POLICY", default=None,
        help="recovery policies to sweep (repeatable; experiments that "
        f"take none ignore it; one of {'/'.join(POLICY_NAMES)})",
    )
    p_exp.add_argument(
        "--scenario", default=None, metavar="SPEC",
        help="fault scenario for resilience experiments "
        f"({'/'.join(INJECT_SCENARIOS)})",
    )
    p_exp.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for sweep experiments that support it "
        "(default: one per CPU core)",
    )
    _add_cache_args(p_exp)

    return parser


_COMMANDS = {
    "algos": cmd_algos,
    "verify": cmd_verify,
    "compile": cmd_compile,
    "run": cmd_run,
    "compare": cmd_compare,
    "export": cmd_export,
    "trace": cmd_trace,
    "profile": cmd_profile,
    "experiment": cmd_experiment,
    "serve": cmd_serve,
    "trace-request": cmd_trace_request,
    "tune": cmd_tune,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

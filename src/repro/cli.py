"""Command-line interface for the ResCCL reproduction.

Subcommands::

    resccl algos                         # list built-in algorithms
    resccl verify ALGO [options]         # parse/validate/verify a program
    resccl compile ALGO [--rank R]       # show phases + generated kernel
    resccl run ALGO [--backend B]        # simulate one collective call
    resccl compare ALGO [options]        # all three backends side by side

``ALGO`` is either a built-in algorithm name (see ``resccl algos``), a
synthesizer spec (``taccl:allreduce`` / ``teccl:allgather``), or a path
to a textual ResCCLang file.  The cluster defaults to the paper's
2-server x 8-GPU A100 testbed; override with ``--nodes/--gpus/--profile``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from .algorithms import available_algorithms, build_algorithm
from .analysis import format_table
from .baselines import MSCCLBackend, NCCLBackend
from .core import ResCCLBackend, ResCCLCompiler
from .experiments import available_experiments, run_experiment
from .ir.task import parse_collective
from .lang import AlgoProgram, parse_program, validate_program
from .analysis import ascii_gantt, write_chrome_trace
from .runtime import MB, simulate, verify_collective
from .synth import (
    TACCLSynthesizer,
    TECCLSynthesizer,
    read_msccl_xml,
    write_msccl_xml,
)
from .topology import Cluster, profile_by_name


def _add_cluster_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=2, help="server count")
    parser.add_argument(
        "--gpus", type=int, default=8, help="GPUs per server"
    )
    parser.add_argument(
        "--profile", default="A100", help="GPU profile (A100 or V100)"
    )


def _cluster_from(args: argparse.Namespace) -> Cluster:
    return Cluster(
        nodes=args.nodes,
        gpus_per_node=args.gpus,
        profile=profile_by_name(args.profile),
    )


def _resolve_algorithm(spec: str, cluster: Cluster) -> AlgoProgram:
    """Name, synthesizer spec, or DSL file path -> elaborated program."""
    if spec in available_algorithms():
        return build_algorithm(spec, cluster)
    if ":" in spec:
        synth_name, _, coll_name = spec.partition(":")
        synthesizers = {"taccl": TACCLSynthesizer, "teccl": TECCLSynthesizer}
        if synth_name.lower() in synthesizers:
            collective = parse_collective(coll_name)
            return synthesizers[synth_name.lower()]().synthesize(
                cluster, collective
            )
    path = Path(spec)
    if path.exists():
        if path.suffix == ".xml":
            return read_msccl_xml(str(path))
        return parse_program(path.read_text())
    raise SystemExit(
        f"error: {spec!r} is not a built-in algorithm, a synthesizer spec "
        f"(taccl:/teccl:<collective>), or a readable file.\n"
        f"Built-ins: {', '.join(available_algorithms())}"
    )


def _make_backend(name: str, max_microbatches: int):
    name = name.lower()
    if name == "resccl":
        return ResCCLBackend(max_microbatches=max_microbatches)
    if name == "msccl":
        return MSCCLBackend(max_microbatches=max_microbatches)
    if name == "nccl":
        return NCCLBackend(max_microbatches=max_microbatches)
    raise SystemExit(f"error: unknown backend {name!r} (resccl/msccl/nccl)")


def _simulate(backend, cluster, program, buffer_bytes):
    if isinstance(backend, NCCLBackend):
        plan = backend.plan(cluster, program.collective, buffer_bytes)
    else:
        plan = backend.plan(cluster, program, buffer_bytes)
    return simulate(plan)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_algos(args: argparse.Namespace) -> int:
    del args
    for name in available_algorithms():
        print(name)
    print("taccl:<collective>  (synthesized)")
    print("teccl:<collective>  (synthesized)")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    print(f"program: {program!r}")
    report = validate_program(program, cluster)
    if not report.ok:
        print("static validation FAILED:")
        for issue in report.issues[:20]:
            print(f"  - {issue}")
        return 1
    print("static validation: ok")
    result = verify_collective(program)
    if not result.ok:
        print("collective semantics FAILED:")
        for error in result.errors[:20]:
            print(f"  - {error}")
        return 1
    print(f"collective semantics: ok ({program.collective.value} "
          "postcondition established)")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    compiled = ResCCLCompiler(scheduler=args.scheduler).compile(
        program, cluster
    )
    print(f"compiled {program.name!r} for {cluster}")
    for phase, micros in compiled.phase_times_us.items():
        print(f"  {phase:<11} {micros / 1000.0:9.2f} ms")
    print(
        f"pipeline: {compiled.pipeline.task_count} tasks in "
        f"{compiled.pipeline.depth} sub-pipelines; "
        f"{compiled.tb_count()} thread blocks"
    )
    if args.kernel:
        print()
        print(compiled.kernel_source(args.rank, n_microbatches=args.mbs))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    backend = _make_backend(args.backend, args.mbs)
    report = _simulate(backend, cluster, program, args.buffer_mb * MB)
    print(report.summary())
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    out = Path(args.output)
    if out.suffix == ".xml":
        write_msccl_xml(program, str(out))
        print(f"wrote MSCCL-XML: {out} ({len(program)} transfers)")
    else:
        out.write_text(program.to_source())
        print(f"wrote ResCCLang: {out} ({len(program)} transfers)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    backend = _make_backend(args.backend, args.mbs)
    if isinstance(backend, NCCLBackend):
        plan = backend.plan(cluster, program.collective, args.buffer_mb * MB)
    else:
        plan = backend.plan(cluster, program, args.buffer_mb * MB)
    report = simulate(plan, record_trace=True)
    print(report.summary())
    print()
    ranks = None if args.rank is None or args.rank < 0 else [args.rank]
    print(ascii_gantt(report, width=args.width, ranks=ranks))
    if args.output:
        write_chrome_trace(report, args.output)
        print(f"\nChrome trace written to {args.output} "
              "(load in chrome://tracing or Perfetto)")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.list:
        for name in available_experiments():
            print(name)
        return 0
    if not args.name:
        raise SystemExit(
            "error: give an experiment id or --list; known: "
            + ", ".join(available_experiments())
        )
    result = run_experiment(args.name)
    print(result.render())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    cluster = _cluster_from(args)
    program = _resolve_algorithm(args.algorithm, cluster)
    rows = []
    baseline: Optional[float] = None
    for name in ("NCCL", "MSCCL", "ResCCL"):
        backend = _make_backend(name, args.mbs)
        report = _simulate(backend, cluster, program, args.buffer_mb * MB)
        if baseline is None:
            baseline = report.algo_bandwidth
        rows.append(
            [
                name,
                f"{report.algo_bandwidth_gbps:.1f}",
                f"{report.completion_time_us / 1000.0:.2f}",
                f"{report.algo_bandwidth / baseline:.2f}x",
                str(report.max_tbs_per_rank()),
                f"{report.avg_idle_fraction():.1%}",
            ]
        )
    print(f"{program.name} on {cluster}, {args.buffer_mb} MB:\n")
    print(
        format_table(
            ["backend", "algbw GB/s", "time ms", "vs NCCL", "TBs/rank",
             "TB idle"],
            rows,
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="resccl",
        description="ResCCL reproduction: compile, verify, and simulate "
        "collective communication algorithms.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("algos", help="list built-in algorithms")

    p_verify = sub.add_parser("verify", help="validate + verify a program")
    p_verify.add_argument("algorithm")
    _add_cluster_args(p_verify)

    p_compile = sub.add_parser("compile", help="compile and inspect")
    p_compile.add_argument("algorithm")
    p_compile.add_argument("--scheduler", default="hpds", choices=["hpds", "rr"])
    p_compile.add_argument("--kernel", action="store_true",
                           help="print the generated kernel listing")
    p_compile.add_argument("--rank", type=int, default=0)
    p_compile.add_argument("--mbs", type=int, default=8,
                           help="micro-batches in the kernel listing")
    _add_cluster_args(p_compile)

    p_run = sub.add_parser("run", help="simulate one collective call")
    p_run.add_argument("algorithm")
    p_run.add_argument("--backend", default="resccl")
    p_run.add_argument("--buffer-mb", type=int, default=256)
    p_run.add_argument("--mbs", type=int, default=16,
                       help="micro-batch cap")
    _add_cluster_args(p_run)

    p_cmp = sub.add_parser("compare", help="all three backends side by side")
    p_cmp.add_argument("algorithm")
    p_cmp.add_argument("--buffer-mb", type=int, default=256)
    p_cmp.add_argument("--mbs", type=int, default=16)
    _add_cluster_args(p_cmp)

    p_export = sub.add_parser(
        "export",
        help="write an algorithm as ResCCLang text or MSCCL-XML",
    )
    p_export.add_argument("algorithm")
    p_export.add_argument("output",
                          help=".rescclang or .xml destination path")
    _add_cluster_args(p_export)

    p_trace = sub.add_parser(
        "trace", help="execution timeline (ASCII Gantt / Chrome trace)"
    )
    p_trace.add_argument("algorithm")
    p_trace.add_argument("--backend", default="resccl")
    p_trace.add_argument("--buffer-mb", type=int, default=64)
    p_trace.add_argument("--mbs", type=int, default=8)
    p_trace.add_argument("--rank", type=int, default=0,
                         help="rank whose TBs to chart (-1 for all)")
    p_trace.add_argument("--width", type=int, default=100)
    p_trace.add_argument("--output", help="write Chrome trace JSON here")
    _add_cluster_args(p_trace)

    p_exp = sub.add_parser(
        "experiment", help="reproduce one of the paper's tables/figures"
    )
    p_exp.add_argument("name", nargs="?", help="experiment id (see --list)")
    p_exp.add_argument("--list", action="store_true",
                       help="list available experiments")

    return parser


_COMMANDS = {
    "algos": cmd_algos,
    "verify": cmd_verify,
    "compile": cmd_compile,
    "run": cmd_run,
    "compare": cmd_compare,
    "export": cmd_export,
    "trace": cmd_trace,
    "experiment": cmd_experiment,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

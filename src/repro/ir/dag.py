"""Global dependency analysis: transfers -> dependency DAG.

Section 4.1: ResCCL performs a global dependency analysis on the input
algorithm, generating a DAG whose nodes are transmission tasks and whose
edges are *data dependencies*.  Tasks touching the same buffer slot —
the (rank, chunkId) pair — in different steps are ordered by classic
hazard rules (read-after-write, write-after-read, write-after-write).
Tasks sharing a bottleneck link carry a *communication dependency*, which
is not an edge (it does not force an order, it forbids concurrency) and is
therefore kept as per-link groupings for the scheduler.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from ..topology import Cluster
from .task import Transfer, TransmissionTask


class CyclicDependencyError(ValueError):
    """Raised when an algorithm's data dependencies contain a cycle.

    A cyclic algorithm would deadlock on real hardware (section 4.1 notes
    the absence of cycles is what makes the analysis a DAG).
    """


@dataclass
class _SlotState:
    """Hazard-tracking state for one (rank, chunk) buffer slot."""

    last_writers: List[int] = field(default_factory=list)
    readers_since_write: List[int] = field(default_factory=list)


class DependencyDAG:
    """The task-level dependency DAG ``G_A = (V_T, E)`` of section 3.

    Attributes:
        tasks: all transmission tasks, indexed by ``task_id``.
        preds: ``task_id -> set of task_ids it depends on``.
        succs: ``task_id -> set of task_ids depending on it``.
        chunk_tasks: per-chunk sub-DAG membership ``G[C]`` used by HPDS.
        link_tasks: per-link groupings encoding communication dependencies.
    """

    def __init__(self, tasks: Sequence[TransmissionTask]) -> None:
        self.tasks: List[TransmissionTask] = list(tasks)
        self.preds: Dict[int, Set[int]] = {t.task_id: set() for t in self.tasks}
        self.succs: Dict[int, Set[int]] = {t.task_id: set() for t in self.tasks}
        self.chunk_tasks: Dict[int, List[int]] = defaultdict(list)
        self.link_tasks: Dict[str, List[int]] = defaultdict(list)
        for task in self.tasks:
            self.chunk_tasks[task.chunk].append(task.task_id)
            self.link_tasks[task.link].append(task.task_id)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def task(self, task_id: int) -> TransmissionTask:
        """Look up a task by id."""
        return self.tasks[task_id]

    def add_edge(self, producer: int, consumer: int) -> None:
        """Record that ``consumer`` depends on data produced by ``producer``."""
        if producer == consumer:
            return
        self.preds[consumer].add(producer)
        self.succs[producer].add(consumer)

    @property
    def edge_count(self) -> int:
        return sum(len(s) for s in self.succs.values())

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate (producer, consumer) data-dependency pairs."""
        for producer, consumers in self.succs.items():
            for consumer in consumers:
                yield producer, consumer

    def roots(self) -> List[int]:
        """Tasks with no data dependencies — immediately schedulable."""
        return [t.task_id for t in self.tasks if not self.preds[t.task_id]]

    def comm_conflicts(self, task_id: int) -> List[int]:
        """Other tasks that share this task's bottleneck link."""
        link = self.tasks[task_id].link
        return [t for t in self.link_tasks[link] if t != task_id]

    # ------------------------------------------------------------------

    def topological_order(self) -> List[int]:
        """Kahn topological order; raises on cyclic dependencies."""
        indegree = {tid: len(p) for tid, p in self.preds.items()}
        frontier = [tid for tid, deg in indegree.items() if deg == 0]
        order: List[int] = []
        while frontier:
            tid = frontier.pop()
            order.append(tid)
            for succ in self.succs[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self.tasks):
            stuck = sorted(tid for tid, deg in indegree.items() if deg > 0)
            raise CyclicDependencyError(
                f"data-dependency cycle involving tasks {stuck[:8]}"
                + ("..." if len(stuck) > 8 else "")
            )
        return order

    def is_acyclic(self) -> bool:
        """True when the data dependencies form a DAG."""
        try:
            self.topological_order()
        except CyclicDependencyError:
            return False
        return True

    def critical_path_length(self) -> int:
        """Longest dependency chain, in tasks (a lower bound on steps)."""
        depth: Dict[int, int] = {}
        for tid in self.topological_order():
            preds = self.preds[tid]
            depth[tid] = 1 + max((depth[p] for p in preds), default=0)
        return max(depth.values(), default=0)

    def to_networkx(self) -> "nx.DiGraph":
        """Export as a networkx DiGraph (nodes carry their task objects)."""
        graph = nx.DiGraph()
        for task in self.tasks:
            graph.add_node(task.task_id, task=task)
        graph.add_edges_from(self.edges())
        return graph


def _slot_accesses(
    task: TransmissionTask,
) -> List[Tuple[Tuple[int, int], bool]]:
    """Buffer slots a task touches: ((rank, chunk), is_write) pairs.

    The source rank reads its copy of the chunk.  A ``recv`` destination
    overwrites its slot; an ``rrc`` destination reads and writes it (the
    write subsumes the read for hazard purposes).
    """
    reads_src = ((task.src, task.chunk), False)
    writes_dst = ((task.dst, task.chunk), True)
    return [reads_src, writes_dst]


def build_dag(transfers: Sequence[Transfer], cluster: Cluster) -> DependencyDAG:
    """Construct the dependency DAG for an algorithm on a cluster.

    Tasks get dense ids in input order.  Data-dependency edges follow the
    hazard rules per buffer slot, ordered by the DSL ``step`` value;
    accesses sharing a step are considered concurrent and get no edge.
    """
    tasks = [
        TransmissionTask(
            task_id=index,
            transfer=transfer,
            link=cluster.link_name(transfer.src, transfer.dst),
            intra_node=cluster.same_node(transfer.src, transfer.dst),
        )
        for index, transfer in enumerate(transfers)
    ]
    dag = DependencyDAG(tasks)

    # Group accesses by slot, then by step, and apply hazard rules between
    # consecutive step groups.
    per_slot: Dict[Tuple[int, int], Dict[int, List[Tuple[int, bool]]]] = (
        defaultdict(lambda: defaultdict(list))
    )
    for task in tasks:
        for slot, is_write in _slot_accesses(task):
            per_slot[slot][task.step].append((task.task_id, is_write))

    for slot, by_step in per_slot.items():
        state = _SlotState()
        for step in sorted(by_step):
            group = by_step[step]
            writes = [tid for tid, w in group if w]
            reads = [tid for tid, w in group if not w]
            for tid in writes:
                for producer in state.last_writers:
                    dag.add_edge(producer, tid)  # write-after-write
                for reader in state.readers_since_write:
                    dag.add_edge(reader, tid)  # write-after-read
            for tid in reads:
                for producer in state.last_writers:
                    dag.add_edge(producer, tid)  # read-after-write
            if writes:
                state.last_writers = writes
                state.readers_since_write = list(reads)
            else:
                state.readers_since_write.extend(reads)

    return dag


__all__ = ["DependencyDAG", "CyclicDependencyError", "build_dag"]

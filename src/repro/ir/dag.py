"""Global dependency analysis: transfers -> dependency DAG.

Section 4.1: ResCCL performs a global dependency analysis on the input
algorithm, generating a DAG whose nodes are transmission tasks and whose
edges are *data dependencies*.  Tasks touching the same buffer slot —
the (rank, chunkId) pair — in different steps are ordered by classic
hazard rules (read-after-write, write-after-read, write-after-write).
Tasks sharing a bottleneck link carry a *communication dependency*, which
is not an edge (it does not force an order, it forbids concurrency) and is
therefore kept as per-link groupings for the scheduler.

The analysis is on the cold-compile critical path (see
``docs/performance.md``), so :func:`build_dag` defaults to a fused
single-pass construction over pre-sorted step buckets; the original
two-level grouping is preserved behind ``fused=False`` as the golden
reference.  Both emit the exact same ``add_edge`` sequence, so the DAGs
are indistinguishable — including set iteration order downstream.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx as nx

from ..topology import Cluster
from .task import Transfer, TransmissionTask


class CyclicDependencyError(ValueError):
    """Raised when an algorithm's data dependencies contain a cycle.

    A cyclic algorithm would deadlock on real hardware (section 4.1 notes
    the absence of cycles is what makes the analysis a DAG).
    """


@dataclass
class _SlotState:
    """Hazard-tracking state for one (rank, chunk) buffer slot."""

    last_writers: List[int] = field(default_factory=list)
    readers_since_write: List[int] = field(default_factory=list)


class DependencyDAG:
    """The task-level dependency DAG ``G_A = (V_T, E)`` of section 3.

    Attributes:
        tasks: all transmission tasks, indexed by ``task_id``.
        preds: ``task_id -> set of task_ids it depends on``.
        succs: ``task_id -> set of task_ids depending on it``.
        chunk_tasks: per-chunk sub-DAG membership ``G[C]`` used by HPDS.
        link_tasks: per-link groupings encoding communication dependencies.
    """

    def __init__(self, tasks: Sequence[TransmissionTask]) -> None:
        self.tasks: List[TransmissionTask] = list(tasks)
        self.preds: Dict[int, Set[int]] = {t.task_id: set() for t in self.tasks}
        self.succs: Dict[int, Set[int]] = {t.task_id: set() for t in self.tasks}
        self.chunk_tasks: Dict[int, List[int]] = defaultdict(list)
        self.link_tasks: Dict[str, List[int]] = defaultdict(list)
        self._topo_cache: List[int] = []
        self._topo_valid = False
        for task in self.tasks:
            # .transfer holds the plain fields; going through it once
            # skips the delegating-property calls on this hot path.
            self.chunk_tasks[task.transfer.chunk].append(task.task_id)
            self.link_tasks[task.link].append(task.task_id)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def task(self, task_id: int) -> TransmissionTask:
        """Look up a task by id."""
        return self.tasks[task_id]

    def add_edge(self, producer: int, consumer: int) -> None:
        """Record that ``consumer`` depends on data produced by ``producer``."""
        if producer == consumer:
            return
        self.preds[consumer].add(producer)
        self.succs[producer].add(consumer)
        self._topo_valid = False

    @property
    def edge_count(self) -> int:
        return sum(len(s) for s in self.succs.values())

    def edges(self) -> Iterable[Tuple[int, int]]:
        """Iterate (producer, consumer) data-dependency pairs."""
        for producer, consumers in self.succs.items():
            for consumer in consumers:
                yield producer, consumer

    def roots(self) -> List[int]:
        """Tasks with no data dependencies — immediately schedulable."""
        return [t.task_id for t in self.tasks if not self.preds[t.task_id]]

    def comm_conflicts(self, task_id: int) -> List[int]:
        """Other tasks that share this task's bottleneck link."""
        link = self.tasks[task_id].link
        return [t for t in self.link_tasks[link] if t != task_id]

    # ------------------------------------------------------------------

    def topological_order(self) -> List[int]:
        """Kahn topological order; raises on cyclic dependencies.

        Degrees live in a dense array indexed by task id (ids are dense
        by construction — ``task()`` is a list lookup), and the order is
        cached until the next ``add_edge``, so the compiler's repeated
        consumers (cycle check, height pass, critical path) pay for one
        traversal.  The visit sequence is identical to the historical
        dict-based Kahn: same ascending-id initial frontier, same LIFO
        pops, same successor-set iteration order.
        """
        if self._topo_valid:
            return list(self._topo_cache)
        n = len(self.tasks)
        indegree = [0] * n
        for tid, preds in self.preds.items():
            indegree[tid] = len(preds)
        frontier = [tid for tid in range(n) if indegree[tid] == 0]
        order: List[int] = []
        while frontier:
            tid = frontier.pop()
            order.append(tid)
            for succ in self.succs[tid]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    frontier.append(succ)
        if len(order) != n:
            stuck = sorted(
                tid for tid in range(n) if indegree[tid] > 0
            )
            raise CyclicDependencyError(
                f"data-dependency cycle involving tasks {stuck[:8]}"
                + ("..." if len(stuck) > 8 else "")
            )
        self._topo_cache = order
        self._topo_valid = True
        return list(order)

    def is_acyclic(self) -> bool:
        """True when the data dependencies form a DAG."""
        try:
            self.topological_order()
        except CyclicDependencyError:
            return False
        return True

    def critical_path_length(self) -> int:
        """Longest dependency chain, in tasks (a lower bound on steps)."""
        depth: Dict[int, int] = {}
        for tid in self.topological_order():
            preds = self.preds[tid]
            depth[tid] = 1 + max((depth[p] for p in preds), default=0)
        return max(depth.values(), default=0)

    def to_networkx(self) -> "nx.DiGraph":
        """Export as a networkx DiGraph (nodes carry their task objects)."""
        import networkx as nx  # deferred: only this export needs it

        graph = nx.DiGraph()
        for task in self.tasks:
            graph.add_node(task.task_id, task=task)
        graph.add_edges_from(self.edges())
        return graph


def _slot_accesses(
    task: TransmissionTask,
) -> List[Tuple[Tuple[int, int], bool]]:
    """Buffer slots a task touches: ((rank, chunk), is_write) pairs.

    The source rank reads its copy of the chunk.  A ``recv`` destination
    overwrites its slot; an ``rrc`` destination reads and writes it (the
    write subsumes the read for hazard purposes).
    """
    reads_src = ((task.src, task.chunk), False)
    writes_dst = ((task.dst, task.chunk), True)
    return [reads_src, writes_dst]


def _hazard_edges_reference(
    dag: DependencyDAG, tasks: Sequence[TransmissionTask]
) -> None:
    """Two-level grouping (slot, then step dict) — the golden reference."""
    per_slot: Dict[Tuple[int, int], Dict[int, List[Tuple[int, bool]]]] = (
        defaultdict(lambda: defaultdict(list))
    )
    for task in tasks:
        for slot, is_write in _slot_accesses(task):
            per_slot[slot][task.step].append((task.task_id, is_write))

    for slot, by_step in per_slot.items():
        state = _SlotState()
        for step in sorted(by_step):
            group = by_step[step]
            writes = [tid for tid, w in group if w]
            reads = [tid for tid, w in group if not w]
            for tid in writes:
                for producer in state.last_writers:
                    dag.add_edge(producer, tid)  # write-after-write
                for reader in state.readers_since_write:
                    dag.add_edge(reader, tid)  # write-after-read
            for tid in reads:
                for producer in state.last_writers:
                    dag.add_edge(producer, tid)  # read-after-write
            if writes:
                state.last_writers = writes
                state.readers_since_write = list(reads)
            else:
                state.readers_since_write.extend(reads)


def _hazard_edges_fused(
    dag: DependencyDAG, tasks: Sequence[TransmissionTask]
) -> None:
    """Single-pass hazard analysis over flat, pre-sorted step buckets.

    One dict keyed by slot holds a flat ``(step, task_id, is_write)``
    list per slot, appended in task order.  Steps are usually emitted
    monotonically per slot, so the per-slot stable sort is a no-op check
    most of the time; the hazard sweep then walks equal-step runs in
    place.  The ``add_edge`` sequence — slots in first-touch order, steps
    ascending, writes before reads, accesses in task order within a step
    — matches :func:`_hazard_edges_reference` exactly.
    """
    per_slot: Dict[Tuple[int, int], List[Tuple[int, int, bool]]] = {}
    unsorted_slots = set()
    for task in tasks:
        tr = task.transfer  # plain fields; skips delegating properties
        step = tr.step
        tid = task.task_id
        chunk = tr.chunk
        read_slot = (tr.src, chunk)
        write_slot = (tr.dst, chunk)
        bucket = per_slot.get(read_slot)
        if bucket is None:
            per_slot[read_slot] = [(step, tid, False)]
        else:
            if step < bucket[-1][0]:
                unsorted_slots.add(read_slot)
            bucket.append((step, tid, False))
        bucket = per_slot.get(write_slot)
        if bucket is None:
            per_slot[write_slot] = [(step, tid, True)]
        else:
            if step < bucket[-1][0]:
                unsorted_slots.add(write_slot)
            bucket.append((step, tid, True))

    add_edge = dag.add_edge
    for slot, accesses in per_slot.items():
        # Stable sort by step keeps task order inside each step run —
        # the same order the reference's per-step append lists hold.
        # Most slots are appended in step order (flagged at insertion),
        # so the sort rarely runs.
        if slot in unsorted_slots:
            accesses.sort(key=lambda a: a[0])
        last_writers: List[int] = []
        readers_since_write: List[int] = []
        i = 0
        total = len(accesses)
        while i < total:
            step, tid, is_write = accesses[i]
            j = i + 1
            if j == total or accesses[j][0] != step:
                # Single-access run — the overwhelmingly common case;
                # skip the slice + listcomp machinery.
                if is_write:
                    for producer in last_writers:
                        add_edge(producer, tid)  # write-after-write
                    for reader in readers_since_write:
                        add_edge(reader, tid)  # write-after-read
                    last_writers = [tid]
                    readers_since_write = []
                else:
                    for producer in last_writers:
                        add_edge(producer, tid)  # read-after-write
                    readers_since_write.append(tid)
                i = j
                continue
            while j < total and accesses[j][0] == step:
                j += 1
            writes = [t for _, t, w in accesses[i:j] if w]
            reads = [t for _, t, w in accesses[i:j] if not w]
            for tid in writes:
                for producer in last_writers:
                    add_edge(producer, tid)  # write-after-write
                for reader in readers_since_write:
                    add_edge(reader, tid)  # write-after-read
            for tid in reads:
                for producer in last_writers:
                    add_edge(producer, tid)  # read-after-write
            if writes:
                last_writers = writes
                readers_since_write = list(reads)
            else:
                readers_since_write.extend(reads)
            i = j


def build_dag(
    transfers: Sequence[Transfer],
    cluster: Cluster,
    *,
    fused: bool = True,
) -> DependencyDAG:
    """Construct the dependency DAG for an algorithm on a cluster.

    Tasks get dense ids in input order.  Data-dependency edges follow the
    hazard rules per buffer slot, ordered by the DSL ``step`` value;
    accesses sharing a step are considered concurrent and get no edge.

    ``fused=True`` (default) runs the single-pass hazard analysis;
    ``fused=False`` runs the original two-level grouping kept as the
    golden reference.  The two produce identical DAGs — same edges,
    added in the same order (``tests/test_ir_dag.py``).
    """
    # Collectives reuse a small set of (src, dst) pairs across thousands
    # of transfers; resolving each pair's link name and locality once
    # keeps task construction linear in the transfer count.
    pair_cache: Dict[Tuple[int, int], Tuple[str, bool]] = {}
    tasks: List[TransmissionTask] = []
    for index, transfer in enumerate(transfers):
        pair = (transfer.src, transfer.dst)
        resolved = pair_cache.get(pair)
        if resolved is None:
            resolved = pair_cache[pair] = (
                cluster.link_name(*pair),
                cluster.same_node(*pair),
            )
        tasks.append(
            TransmissionTask(
                task_id=index,
                transfer=transfer,
                link=resolved[0],
                intra_node=resolved[1],
            )
        )
    dag = DependencyDAG(tasks)
    if fused:
        _hazard_edges_fused(dag, tasks)
    else:
        _hazard_edges_reference(dag, tasks)
    return dag


__all__ = ["DependencyDAG", "CyclicDependencyError", "build_dag"]

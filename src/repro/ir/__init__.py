"""Intermediate representation: transfers, tasks, primitives, dependency DAG."""

from .dag import CyclicDependencyError, DependencyDAG, build_dag
from .primitives import PrimKind, Primitive, translate_task, translate_tasks
from .task import (
    Collective,
    CommType,
    Transfer,
    TransmissionTask,
    chunk_count,
    parse_collective,
    parse_comm_type,
)

__all__ = [
    "Collective",
    "CommType",
    "Transfer",
    "TransmissionTask",
    "chunk_count",
    "parse_collective",
    "parse_comm_type",
    "PrimKind",
    "Primitive",
    "translate_task",
    "translate_tasks",
    "DependencyDAG",
    "CyclicDependencyError",
    "build_dag",
]

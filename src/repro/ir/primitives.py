"""Communication primitives: what a thread block actually executes.

Section 4.3 ("Task-to-primitive translation") maps every transmission task
to a pair of primitives — a ``send`` on the source rank and a ``recv`` or
``recvReduceCopy`` on the destination rank.  The runtime executes
primitives; the scheduler reasons about tasks.  This module defines the
primitive records and the task-to-primitive translation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from .task import CommType, TransmissionTask


class PrimKind(enum.Enum):
    """The primitive vocabulary the ResCCL runtime extends from NCCL."""

    SEND = "send"
    RECV = "recv"
    RECV_REDUCE_COPY = "recvReduceCopy"


@dataclass(frozen=True)
class Primitive:
    """One side of a transmission task, bound to the rank that runs it.

    Attributes:
        kind: which primitive the TB executes.
        task_id: the transmission task this primitive belongs to.
        rank: the GPU that executes the primitive.
        peer: the GPU on the other side of the transfer.
        chunk: global chunk id being moved.
        step: the originating DSL step (kept for diagnostics).
    """

    kind: PrimKind
    task_id: int
    rank: int
    peer: int
    chunk: int
    step: int

    @property
    def is_sender(self) -> bool:
        return self.kind is PrimKind.SEND

    def __repr__(self) -> str:
        return (
            f"{self.kind.value}(task={self.task_id}, rank={self.rank}, "
            f"peer={self.peer}, chunk={self.chunk})"
        )


def translate_task(task: TransmissionTask) -> Tuple[Primitive, Primitive]:
    """Map one transmission task to its (send, receive-side) primitive pair.

    The mapping is one-to-one (section 4.3): the source rank runs ``send``;
    the destination runs ``recv`` for copy semantics or ``recvReduceCopy``
    for reduce semantics.
    """
    send = Primitive(
        kind=PrimKind.SEND,
        task_id=task.task_id,
        rank=task.src,
        peer=task.dst,
        chunk=task.chunk,
        step=task.step,
    )
    recv_kind = (
        PrimKind.RECV_REDUCE_COPY if task.op is CommType.RRC else PrimKind.RECV
    )
    recv = Primitive(
        kind=recv_kind,
        task_id=task.task_id,
        rank=task.dst,
        peer=task.src,
        chunk=task.chunk,
        step=task.step,
    )
    return send, recv


def translate_tasks(tasks: List[TransmissionTask]) -> List[Primitive]:
    """Translate a task list into the flat global primitive set ``R``."""
    primitives: List[Primitive] = []
    for task in tasks:
        send, recv = translate_task(task)
        primitives.append(send)
        primitives.append(recv)
    return primitives


__all__ = ["PrimKind", "Primitive", "translate_task", "translate_tasks"]

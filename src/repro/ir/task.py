"""Transmission-task intermediate representation.

Section 3 of the paper abstracts any communication algorithm as a set of
transmission tasks ``t(e, d)``: a chunk transfer between GPU peers, carrying
the link it occupies and its dependencies on other tasks.  This module
defines the :class:`Transfer` record produced by ResCCLang and the
:class:`TransmissionTask` node used by the dependency DAG and scheduler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

class CommType(enum.Enum):
    """The ResCCLang ``commType`` terminal (Figure 14 BNF).

    ``RECV`` is a plain copy into the destination buffer slot; ``RRC``
    (receive-reduce-copy) combines the incoming data with what the
    destination already holds, which is how ReduceScatter-style phases
    accumulate partial sums.
    """

    RECV = "recv"
    RRC = "rrc"


class Collective(enum.Enum):
    """The ResCCLang ``opType`` terminal: which collective the program is."""

    ALLGATHER = "Allgather"
    ALLREDUCE = "Allreduce"
    REDUCESCATTER = "Reducescatter"


@dataclass(frozen=True)
class Transfer:
    """One ResCCLang ``transfer(...)`` call.

    A transfer uniquely identifies a transmission task: source and
    destination ranks, the logical step that orders it relative to other
    actions on the same buffer slots, the global chunk id it moves, and
    whether the destination copies (``recv``) or reduces (``rrc``).
    """

    src: int
    dst: int
    step: int
    chunk: int
    op: CommType

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"transfer from rank {self.src} to itself")
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"negative rank in transfer {self!r}")
        if self.step < 0:
            raise ValueError(f"negative step in transfer {self!r}")
        if self.chunk < 0:
            raise ValueError(f"negative chunk id in transfer {self!r}")


@dataclass
class TransmissionTask:
    """A scheduled unit: one chunk transfer between one GPU pair.

    Attributes:
        task_id: dense index of this task within its program.
        transfer: the originating DSL transfer.
        link: identifier of the bottleneck resource the transfer occupies
            (``Cluster.link_name``); tasks sharing a ``link`` have a
            *communication dependency* and must not run concurrently.
        intra_node: whether the transfer stays inside one server.
    """

    task_id: int
    transfer: Transfer
    link: str
    intra_node: bool

    @property
    def src(self) -> int:
        return self.transfer.src

    @property
    def dst(self) -> int:
        return self.transfer.dst

    @property
    def step(self) -> int:
        return self.transfer.step

    @property
    def chunk(self) -> int:
        return self.transfer.chunk

    @property
    def op(self) -> CommType:
        return self.transfer.op

    def __repr__(self) -> str:
        return (
            f"Task#{self.task_id}(r{self.src}->r{self.dst}, step={self.step}, "
            f"chunk={self.chunk}, {self.op.value}, link={self.link})"
        )


def parse_comm_type(text: str) -> CommType:
    """Parse a ``commType`` terminal, accepting the paper's spellings."""
    normalized = text.strip().strip('"').lower()
    for member in CommType:
        if member.value == normalized:
            return member
    raise ValueError(f"unknown commType {text!r}; expected 'recv' or 'rrc'")


def parse_collective(text: str) -> Collective:
    """Parse an ``opType`` terminal, accepting the paper's spellings."""
    normalized = text.strip().strip('"').lower()
    for member in Collective:
        if member.value.lower() == normalized:
            return member
    known = ", ".join(m.value for m in Collective)
    raise ValueError(f"unknown opType {text!r}; expected one of: {known}")


def chunk_count(collective: Collective, nranks: int) -> int:
    """Number of chunks a rank's buffer is partitioned into.

    ResCCLang fixes the number of chunks per rank to the total number of
    ranks (section 4.2), so each (rank, chunkId) pair addresses a unique
    slot of the global buffer.
    """
    del collective  # every collective uses the same partitioning rule
    return nranks


__all__ = [
    "CommType",
    "Collective",
    "Transfer",
    "TransmissionTask",
    "parse_comm_type",
    "parse_collective",
    "chunk_count",
]

"""ResCCL reproduction: resource-efficient scheduling for collective communication.

A full-system reproduction of *ResCCL: Resource-Efficient Scheduling for
Collective Communication* (SIGCOMM '25) in pure Python.  The real system
executes CUDA kernels on A100/V100 clusters; this library substitutes a
calibrated discrete-event fabric/GPU model (see DESIGN.md) and rebuilds
everything above it:

* :mod:`repro.lang` — ResCCLang, the algorithm DSL (builder + parser);
* :mod:`repro.ir` — transmission tasks, primitives, the dependency DAG;
* :mod:`repro.core` — the ResCCL backend: HPDS scheduling, state-based
  TB allocation, lightweight kernel generation;
* :mod:`repro.baselines` — NCCL-like and MSCCL-like backends;
* :mod:`repro.algorithms` — ring / tree / mesh / hierarchical-mesh
  expert algorithms;
* :mod:`repro.synth` — TACCL and TECCL synthesizer stand-ins;
* :mod:`repro.runtime` — the discrete-event runtime and correctness
  engine;
* :mod:`repro.training` — the Megatron-style end-to-end trainer model;
* :mod:`repro.topology` / :mod:`repro.analysis` — cluster models and
  result aggregation.

Quickstart::

    from repro import ResCCLBackend, multi_node, simulate
    from repro.algorithms import hm_allreduce
    from repro.runtime import MB

    cluster = multi_node(2, 8)
    backend = ResCCLBackend()
    plan = backend.plan(cluster, hm_allreduce(2, 8), 256 * MB)
    print(simulate(plan).summary())
"""

from .baselines import MSCCLBackend, NCCLBackend
from .core import ResCCLBackend, ResCCLCompiler
from .ir import Collective, CommType, Transfer
from .lang import AlgoProgram, parse_program, validate_program
from .runtime import MB, ExecMode, SimConfig, simulate, verify_collective
from .topology import Cluster, multi_node, single_node

__version__ = "1.0.0"

__all__ = [
    "ResCCLBackend",
    "ResCCLCompiler",
    "NCCLBackend",
    "MSCCLBackend",
    "AlgoProgram",
    "parse_program",
    "validate_program",
    "Collective",
    "CommType",
    "Transfer",
    "Cluster",
    "single_node",
    "multi_node",
    "simulate",
    "verify_collective",
    "SimConfig",
    "ExecMode",
    "MB",
    "__version__",
]

"""Standard ring collective algorithms.

These are the vendor-standard algorithms NCCL ships (section 2.1): each
rank talks only to its ring neighbours, giving bandwidth-optimal transfer
volume at the cost of a latency term linear in the rank count.  The
AllGather formulation matches the paper's Figure 5(a) ResCCLang example.
"""

from __future__ import annotations

from ..ir.task import Collective, CommType
from ..lang.builder import AlgoProgram


def ring_allgather(nranks: int, name: str = "ring-allgather") -> AlgoProgram:
    """Ring AllGather: chunk ``c`` travels ``c -> c+1 -> ... -> c-1``.

    At step ``s`` every rank ``r`` forwards chunk ``(r - s) mod N`` to its
    successor — exactly the Figure 5(a) program.  After ``N - 1`` steps all
    ranks hold every chunk.
    """
    program = AlgoProgram.create(nranks, Collective.ALLGATHER, name=name)
    for rank in range(nranks):
        peer = (rank + 1) % nranks
        for step in range(nranks - 1):
            chunk = (rank - step) % nranks
            program.transfer(rank, peer, step, chunk, CommType.RECV)
    return program


def ring_reducescatter(
    nranks: int, name: str = "ring-reducescatter"
) -> AlgoProgram:
    """Ring ReduceScatter: rank ``r`` ends with chunk ``r`` fully reduced.

    Chunk ``c`` starts its accumulation at rank ``(c + 1) mod N`` and rides
    the ring for ``N - 1`` reduce hops, arriving fully reduced at rank
    ``c``.  At step ``s`` rank ``r`` sends chunk ``(r - s - 1) mod N``.
    """
    program = AlgoProgram.create(nranks, Collective.REDUCESCATTER, name=name)
    for rank in range(nranks):
        peer = (rank + 1) % nranks
        for step in range(nranks - 1):
            chunk = (rank - step - 1) % nranks
            program.transfer(rank, peer, step, chunk, CommType.RRC)
    return program


def ring_allreduce(nranks: int, name: str = "ring-allreduce") -> AlgoProgram:
    """Ring AllReduce: ReduceScatter followed by AllGather on the ring.

    The paper implements AllReduce as "AllGather combined with its reverse
    operation" (section 5.2); this is that composition.  Steps ``0..N-2``
    reduce-scatter, steps ``N-1..2N-3`` all-gather the reduced chunks.
    """
    program = AlgoProgram.create(nranks, Collective.ALLREDUCE, name=name)
    for rank in range(nranks):
        peer = (rank + 1) % nranks
        for step in range(nranks - 1):
            chunk = (rank - step - 1) % nranks
            program.transfer(rank, peer, step, chunk, CommType.RRC)
    offset = nranks - 1
    for rank in range(nranks):
        peer = (rank + 1) % nranks
        for step in range(nranks - 1):
            chunk = (rank - step) % nranks
            program.transfer(rank, peer, offset + step, chunk, CommType.RECV)
    # Stage boundaries: ReduceScatter half | AllGather half.
    program.stage_starts = [0, offset]
    return program


__all__ = ["ring_allgather", "ring_reducescatter", "ring_allreduce"]

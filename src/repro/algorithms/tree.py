"""Double binary tree AllReduce (NCCL's latency-optimized algorithm).

NCCL 2.4 introduced double binary trees: two complementary trees each
carry half of the chunks, so every rank is an interior node in at most one
tree and link load stays balanced.  Each chunk is reduced leaf-to-root and
then broadcast root-to-leaves.

We build heap-shaped trees over two rank permutations — the identity and
its reversal — and route even chunks through tree 0, odd chunks through
tree 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.task import Collective, CommType
from ..lang.builder import AlgoProgram


def _heap_tree(ranks: Sequence[int]) -> Dict[int, Optional[int]]:
    """Heap-shaped binary tree: maps rank -> parent rank (root -> None)."""
    parents: Dict[int, Optional[int]] = {}
    for position, rank in enumerate(ranks):
        if position == 0:
            parents[rank] = None
        else:
            parents[rank] = ranks[(position - 1) // 2]
    return parents


def _depths(parents: Dict[int, Optional[int]]) -> Dict[int, int]:
    depths: Dict[int, int] = {}

    def depth_of(rank: int) -> int:
        if rank in depths:
            return depths[rank]
        parent = parents[rank]
        value = 0 if parent is None else depth_of(parent) + 1
        depths[rank] = value
        return value

    for rank in parents:
        depth_of(rank)
    return depths


def _children(parents: Dict[int, Optional[int]]) -> Dict[int, List[int]]:
    children: Dict[int, List[int]] = {rank: [] for rank in parents}
    for rank, parent in parents.items():
        if parent is not None:
            children[parent].append(rank)
    return children


def _reduce_send_steps(parents: Dict[int, Optional[int]]) -> Dict[int, int]:
    """Step at which each non-root rank reduces into its parent.

    Two constraints: a rank sends only after every child's contribution
    has landed (step strictly greater than each child's send step), and
    siblings must write into the shared parent slot at *distinct* steps —
    two concurrent reductions into one buffer slot would race.
    """
    children = _children(parents)
    steps: Dict[int, int] = {}

    def assign(rank: int) -> int:
        kids = children[rank]
        kid_steps = [assign(kid) for kid in kids]
        # Serialize siblings writing into this rank's slot.
        floor = -1
        for kid, _ in sorted(zip(kids, kid_steps), key=lambda pair: pair[1]):
            steps[kid] = max(steps[kid], floor + 1)
            floor = steps[kid]
        own = floor + 1  # after all children have been folded in
        steps[rank] = own
        return own

    roots = [rank for rank, parent in parents.items() if parent is None]
    for root in roots:
        assign(root)
    return steps


def double_binary_tree_allreduce(
    nranks: int, name: str = "double-binary-tree-allreduce"
) -> AlgoProgram:
    """AllReduce over two complementary binary trees.

    For each chunk: every non-root rank reduces into its parent at a step
    chosen so children precede parents and siblings never write the parent
    slot concurrently; the reduced chunk is then broadcast down, the edge
    into ``child`` firing at step ``B + depth(child)`` where ``B`` is one
    past the last reduce step.
    """
    if nranks < 2:
        raise ValueError(f"tree allreduce needs >= 2 ranks, got {nranks}")
    program = AlgoProgram.create(nranks, Collective.ALLREDUCE, name=name)
    permutations = (
        list(range(nranks)),
        list(range(nranks - 1, -1, -1)),
    )
    trees: List[
        Tuple[Dict[int, Optional[int]], Dict[int, int], Dict[int, int], int]
    ] = []
    for ranks in permutations:
        parents = _heap_tree(ranks)
        depths = _depths(parents)
        send_steps = _reduce_send_steps(parents)
        broadcast_base = max(send_steps.values()) + 1
        trees.append((parents, depths, send_steps, broadcast_base))

    for chunk in range(nranks):
        parents, depths, send_steps, broadcast_base = trees[chunk % len(trees)]
        # Reduce phase: leaf-to-root accumulation.
        for rank, parent in parents.items():
            if parent is None:
                continue
            program.transfer(rank, parent, send_steps[rank], chunk, CommType.RRC)
        # Broadcast phase: root-to-leaf distribution of the reduced chunk.
        for rank, parent in parents.items():
            if parent is None:
                continue
            step = broadcast_base + depths[rank]
            program.transfer(parent, rank, step, chunk, CommType.RECV)
    return program


__all__ = ["double_binary_tree_allreduce"]

"""Hierarchical-mesh (HM) expert algorithms from the paper's Appendix A.

These are the expert-designed algorithms the paper evaluates in section
5.2: intra-server phases use the NVSwitch full mesh (direct sends between
every local GPU pair), inter-server phases use rings over "ring-aligned"
peers — ranks with the same local index on consecutive servers, which
share NIC resources in a balanced way.

``hm_allreduce`` follows the Figure 16 ResCCLang listing exactly,
generalized from the 4x8 example to any (nodes, gpus-per-node) shape.
"""

from __future__ import annotations

from ..ir.task import Collective, CommType
from ..lang.builder import AlgoProgram


def _check_shape(nnodes: int, gpus_per_node: int) -> None:
    if nnodes < 2:
        raise ValueError(f"HM algorithms need >= 2 nodes, got {nnodes}")
    if gpus_per_node < 2:
        raise ValueError(
            f"HM algorithms need >= 2 GPUs per node, got {gpus_per_node}"
        )


def hm_allgather(
    nnodes: int, gpus_per_node: int, name: str = "hm-allgather"
) -> AlgoProgram:
    """HM AllGather (Appendix A): two broadcast stages.

    *Broadcast 1*: every GPU full-mesh-broadcasts its own chunk to local
    peers (one step — the sends go to distinct peers over distinct NVLink
    pairs) and simultaneously forwards chunks around the inter-node ring of
    ring-aligned peers.

    *Broadcast 2*: chunks received from remote ring peers are re-broadcast
    full-mesh to local GPUs.
    """
    _check_shape(nnodes, gpus_per_node)
    nranks = nnodes * gpus_per_node
    program = AlgoProgram.create(
        nranks,
        Collective.ALLGATHER,
        name=name,
        gpus_per_node=gpus_per_node,
    )
    # Broadcast 1 (intra): each rank sends its own chunk to every local peer.
    for node in range(nnodes):
        for local in range(gpus_per_node):
            src = node * gpus_per_node + local
            for offset in range(gpus_per_node - 1):
                dst = node * gpus_per_node + (local + offset + 1) % gpus_per_node
                program.transfer(src, dst, 0, src, CommType.RECV)
    # Broadcast 1 (inter): ring over ring-aligned peers.  At ring step b,
    # rank x forwards chunk (x - b*G) mod N to the same-local-index rank on
    # the next node; for b = 0 that is its own chunk.
    for src in range(nranks):
        dst = (src + gpus_per_node) % nranks
        for b in range(nnodes - 1):
            chunk = (src - b * gpus_per_node) % nranks
            program.transfer(src, dst, b, chunk, CommType.RECV)
    # Broadcast 2: re-broadcast remote chunks locally.  Rank x received
    # chunk (x - (b+1)*G) mod N at inter step b, and fans it out to every
    # local peer at step (nnodes - 1) + b.
    for node in range(nnodes):
        for local in range(gpus_per_node):
            src = node * gpus_per_node + local
            for b in range(nnodes - 1):
                chunk = (src - (b + 1) * gpus_per_node) % nranks
                step = (nnodes - 1) + b
                for offset in range(gpus_per_node - 1):
                    dst = (
                        node * gpus_per_node
                        + (local + offset + 1) % gpus_per_node
                    )
                    program.transfer(src, dst, step, chunk, CommType.RECV)
    # Stage boundaries: Broadcast 1 (intra mesh + inter ring) | Broadcast 2.
    program.stage_starts = [0, nnodes - 1]
    return program


def hm_reducescatter(
    nnodes: int, gpus_per_node: int, name: str = "hm-reducescatter"
) -> AlgoProgram:
    """HM ReduceScatter: intra full-mesh reduce, then inter-ring reduce.

    *Intra-ReduceScatter*: for every node-group ``b`` of chunks, each GPU
    sends its contribution for chunk ``(dst + b*G) mod N`` directly to the
    local GPU whose index matches the chunk.

    *Inter-ReduceScatter*: partial sums ride the ring of ring-aligned
    peers; chunk ``c`` accumulates node-by-node and lands fully reduced on
    rank ``c``.
    """
    _check_shape(nnodes, gpus_per_node)
    nranks = nnodes * gpus_per_node
    program = AlgoProgram.create(
        nranks,
        Collective.REDUCESCATTER,
        name=name,
        gpus_per_node=gpus_per_node,
    )
    _emit_intra_reducescatter(program, nnodes, gpus_per_node, base_step=0)
    # Inter-ReduceScatter: at ring step b, rank x (node n, local r) sends
    # chunk ((n - b - 1) mod nnodes)*G + r to its ring successor; the final
    # hop delivers chunk c to rank c.
    base = nnodes * (gpus_per_node - 1)
    for node in range(nnodes):
        for local in range(gpus_per_node):
            src = node * gpus_per_node + local
            dst = (src + gpus_per_node) % nranks
            for b in range(nnodes - 1):
                chunk = ((node - b - 1) % nnodes) * gpus_per_node + local
                program.transfer(src, dst, base + b, chunk, CommType.RRC)
    # Stage boundaries: intra-ReduceScatter | inter-ReduceScatter.
    program.stage_starts = [0, base]
    return program


def _emit_intra_reducescatter(
    program: AlgoProgram, nnodes: int, gpus_per_node: int, base_step: int
) -> None:
    """Figure 16 lines 5-12: full-mesh intra-node ReduceScatter."""
    nranks = nnodes * gpus_per_node
    for node in range(nnodes):
        for local in range(gpus_per_node):
            src = node * gpus_per_node + local
            for b in range(nnodes):
                for offset in range(gpus_per_node - 1):
                    dst = (
                        node * gpus_per_node
                        + (local + offset + 1) % gpus_per_node
                    )
                    step = base_step + b * (gpus_per_node - 1) + offset
                    chunk = (dst + b * gpus_per_node) % nranks
                    program.transfer(src, dst, step, chunk, CommType.RRC)


def hm_allreduce(
    nnodes: int, gpus_per_node: int, name: str = "hm-allreduce"
) -> AlgoProgram:
    """HM AllReduce — the exact Figure 16 program, shape-generalized.

    Four stages: intra-node full-mesh ReduceScatter, inter-node ring
    ReduceScatter, inter-node ring AllGather, intra-node full-mesh
    AllGather.
    """
    _check_shape(nnodes, gpus_per_node)
    nranks = nnodes * gpus_per_node
    program = AlgoProgram.create(
        nranks,
        Collective.ALLREDUCE,
        name=name,
        gpus_per_node=gpus_per_node,
    )
    # Stage 1 (Figure 16 lines 5-12): intra-node ReduceScatter.
    _emit_intra_reducescatter(program, nnodes, gpus_per_node, base_step=0)
    # Stage 2 (lines 13-19): inter-node ring ReduceScatter.
    for node in range(nnodes):
        for local in range(gpus_per_node):
            src = node * gpus_per_node + local
            dst = (src + gpus_per_node) % nranks
            for b in range(nnodes - 1):
                step = nnodes * (gpus_per_node - 1) + b
                chunk = (src + nranks - b * gpus_per_node) % nranks
                program.transfer(src, dst, step, chunk, CommType.RRC)
    # Stage 3 (lines 20-27): inter-node ring AllGather.
    for node in range(nnodes):
        for local in range(gpus_per_node):
            src = node * gpus_per_node + local
            dst = (src + gpus_per_node) % nranks
            for b in range(nnodes - 1):
                step = nnodes * (gpus_per_node - 1) + nnodes - 1 + b
                chunk = (
                    src + nranks - (b + nnodes - 1) * gpus_per_node
                ) % nranks
                program.transfer(src, dst, step, chunk, CommType.RECV)
    # Stage 4 (lines 28-35): intra-node full-mesh AllGather.
    for node in range(nnodes):
        for local in range(gpus_per_node):
            src = node * gpus_per_node + local
            for b in range(nnodes):
                step = nnodes * (gpus_per_node - 1) + 2 * nnodes - 2 + b
                chunk = (src + b * gpus_per_node) % nranks
                for offset in range(gpus_per_node - 1):
                    dst = (
                        node * gpus_per_node
                        + (local + offset + 1) % gpus_per_node
                    )
                    program.transfer(src, dst, step, chunk, CommType.RECV)
    # Stage boundaries (Appendix A): intra-RS | inter-RS | inter-AG | intra-AG.
    program.stage_starts = [
        0,
        nnodes * (gpus_per_node - 1),
        nnodes * (gpus_per_node - 1) + nnodes - 1,
        nnodes * (gpus_per_node - 1) + 2 * nnodes - 2,
    ]
    return program


__all__ = ["hm_allgather", "hm_reducescatter", "hm_allreduce"]

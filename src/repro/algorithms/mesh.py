"""Single-node full-mesh collectives over NVSwitch.

Inside one server every GPU pair has a direct NVSwitch path, so the
expert-designed single-node algorithms are one-hop full meshes — the
"custom single-node AllReduce" of the paper's Figure 2 motivation
experiment, and the intra-node building block of the Appendix A
hierarchical algorithms.
"""

from __future__ import annotations

from ..ir.task import Collective, CommType
from ..lang.builder import AlgoProgram


def _check_size(nranks: int) -> None:
    if nranks < 2:
        raise ValueError(f"mesh algorithms need >= 2 ranks, got {nranks}")


def mesh_allgather(nranks: int, name: str = "mesh-allgather") -> AlgoProgram:
    """One-hop AllGather: every rank sends its chunk to every peer.

    All sends share step 0 — they go to distinct destinations over
    distinct NVSwitch paths and write distinct buffer slots.
    """
    _check_size(nranks)
    program = AlgoProgram.create(nranks, Collective.ALLGATHER, name=name)
    for src in range(nranks):
        for offset in range(nranks - 1):
            dst = (src + offset + 1) % nranks
            program.transfer(src, dst, 0, src, CommType.RECV)
    return program


def mesh_reducescatter(
    nranks: int, name: str = "mesh-reducescatter"
) -> AlgoProgram:
    """One-hop ReduceScatter: contributions converge on each chunk's owner.

    Writes into one destination slot are serialized across steps
    ``0..nranks-2`` (reductions into the same buffer cannot race), but
    different destinations proceed in parallel at every step.
    """
    _check_size(nranks)
    program = AlgoProgram.create(nranks, Collective.REDUCESCATTER, name=name)
    for src in range(nranks):
        for offset in range(nranks - 1):
            dst = (src + offset + 1) % nranks
            program.transfer(src, dst, offset, dst, CommType.RRC)
    return program


def mesh_allreduce(nranks: int, name: str = "mesh-allreduce") -> AlgoProgram:
    """Full-mesh AllReduce: one-hop ReduceScatter then one-hop AllGather.

    This is the expert-designed single-node AllReduce of the Figure 2
    motivation experiment.
    """
    _check_size(nranks)
    program = AlgoProgram.create(nranks, Collective.ALLREDUCE, name=name)
    for src in range(nranks):
        for offset in range(nranks - 1):
            dst = (src + offset + 1) % nranks
            program.transfer(src, dst, offset, dst, CommType.RRC)
    gather_step = nranks - 1
    for src in range(nranks):
        for offset in range(nranks - 1):
            dst = (src + offset + 1) % nranks
            program.transfer(src, dst, gather_step, src, CommType.RECV)
    program.stage_starts = [0, gather_step]
    return program


__all__ = ["mesh_allgather", "mesh_reducescatter", "mesh_allreduce"]

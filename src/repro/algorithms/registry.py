"""Name-based registry of built-in algorithm generators.

Maps the names used throughout the benchmarks and examples to builder
functions.  Generators take the cluster shape and return an
:class:`~repro.lang.builder.AlgoProgram`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..lang.builder import AlgoProgram
from ..topology import Cluster
from .hierarchical import hm_allgather, hm_allreduce, hm_reducescatter
from .mesh import mesh_allgather, mesh_allreduce, mesh_reducescatter
from .ring import ring_allgather, ring_allreduce, ring_reducescatter
from .tree import double_binary_tree_allreduce

AlgorithmFactory = Callable[[Cluster], AlgoProgram]


def _for_cluster(builder: Callable[..., AlgoProgram], hierarchical: bool):
    def factory(cluster: Cluster) -> AlgoProgram:
        if hierarchical:
            if cluster.nodes < 2:
                raise ValueError(
                    "hierarchical-mesh algorithms need a multi-node cluster"
                )
            return builder(cluster.nodes, cluster.gpus_per_node)
        return builder(cluster.world_size)

    return factory


_REGISTRY: Dict[str, AlgorithmFactory] = {
    "ring-allgather": _for_cluster(ring_allgather, hierarchical=False),
    "ring-reducescatter": _for_cluster(ring_reducescatter, hierarchical=False),
    "ring-allreduce": _for_cluster(ring_allreduce, hierarchical=False),
    "tree-allreduce": _for_cluster(
        double_binary_tree_allreduce, hierarchical=False
    ),
    "mesh-allgather": _for_cluster(mesh_allgather, hierarchical=False),
    "mesh-reducescatter": _for_cluster(mesh_reducescatter, hierarchical=False),
    "mesh-allreduce": _for_cluster(mesh_allreduce, hierarchical=False),
    "hm-allgather": _for_cluster(hm_allgather, hierarchical=True),
    "hm-reducescatter": _for_cluster(hm_reducescatter, hierarchical=True),
    "hm-allreduce": _for_cluster(hm_allreduce, hierarchical=True),
}


def available_algorithms() -> List[str]:
    """Names accepted by :func:`build_algorithm`."""
    return sorted(_REGISTRY)


def build_algorithm(name: str, cluster: Cluster) -> AlgoProgram:
    """Instantiate a built-in algorithm for a cluster shape."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_algorithms())
        raise ValueError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory(cluster)


__all__ = ["build_algorithm", "available_algorithms", "AlgorithmFactory"]

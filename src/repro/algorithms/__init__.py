"""Built-in collective algorithms: ring, double binary tree, hierarchical mesh."""

from .hierarchical import hm_allgather, hm_allreduce, hm_reducescatter
from .mesh import mesh_allgather, mesh_allreduce, mesh_reducescatter
from .registry import AlgorithmFactory, available_algorithms, build_algorithm
from .ring import ring_allgather, ring_allreduce, ring_reducescatter
from .tree import double_binary_tree_allreduce

__all__ = [
    "ring_allgather",
    "ring_reducescatter",
    "ring_allreduce",
    "double_binary_tree_allreduce",
    "mesh_allgather",
    "mesh_reducescatter",
    "mesh_allreduce",
    "hm_allgather",
    "hm_reducescatter",
    "hm_allreduce",
    "build_algorithm",
    "available_algorithms",
    "AlgorithmFactory",
]

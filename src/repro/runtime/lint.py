"""Static progress analysis of execution plans (a deadlock linter).

The runtime detects deadlocks dynamically (the event queue drains with
blocked TBs), but a plan can be proven free of ordering deadlocks
*statically*: build the wait-for graph over invocation completions and
check it is acyclic.

Completion-ordering constraints in the credit-buffered execution model:

* **TB serialization** — a thread block completes its invocations in
  program order;
* **transfer coupling** — a receive completes no earlier than its
  sender's stream (the send completion precedes, or coincides with, the
  receive completion);
* **data dependencies** — a task's send waits for its DAG predecessors'
  receive completions (same micro-batch).

Credits are excluded: with ``fifo_depth >= 1`` a credit is always
reclaimable once the matching receive can complete, so credit waits
cannot create cycles that the above edges do not already contain.  A
cycle in this graph therefore implies a guaranteed deadlock; acyclicity
implies the plan always makes progress.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .plan import ExecutionPlan, Side


@dataclass
class LintResult:
    """Outcome of statically linting one execution plan."""

    ok: bool
    issues: List[str] = field(default_factory=list)
    node_count: int = 0
    edge_count: int = 0

    def raise_if_failed(self) -> None:
        if not self.ok:
            preview = "\n  - ".join(self.issues[:10])
            raise ValueError(
                f"plan fails static progress analysis:\n  - {preview}"
            )


def lint_plan(plan: ExecutionPlan, microbatches: int = 2) -> LintResult:
    """Prove a plan deadlock-free over its first ``microbatches`` batches.

    Deadlock cycles, when present, already appear within one or two
    micro-batches (task-level and algorithm-level orderings repeat the
    same per-batch structure), so linting a prefix keeps the graph small
    while catching real ordering bugs.  Returns the wait-for graph's
    size for reporting.
    """
    plan.validate()
    n_mb = min(microbatches, plan.n_microbatches)

    # Node = completion of (task, mb, side); dense integer ids.
    index: Dict[Tuple[int, int, Side], int] = {}

    def node(task_id: int, mb: int, side: Side) -> int:
        key = (task_id, mb, side)
        found = index.get(key)
        if found is None:
            found = index[key] = len(index)
        return found

    edges: List[Tuple[int, int]] = []

    # TB serialization: completion order follows program order.
    for tb in plan.tb_programs:
        previous = None
        for inv in tb.invocations:
            if inv.mb >= n_mb:
                continue
            current = node(inv.task_id, inv.mb, inv.side)
            if previous is not None:
                edges.append((previous, current))
            previous = current

    for task in plan.dag.tasks:
        for mb in range(n_mb):
            send = node(task.task_id, mb, Side.SEND)
            recv = node(task.task_id, mb, Side.RECV)
            # Transfer coupling.
            edges.append((send, recv))
            # Data dependencies gate the send (and the receive, but the
            # send edge subsumes it through the coupling edge).
            for producer in plan.dag.preds[task.task_id]:
                edges.append((node(producer, mb, Side.RECV), send))

    # Kahn's algorithm over the wait-for graph.
    indegree = [0] * len(index)
    adjacency: List[List[int]] = [[] for _ in range(len(index))]
    for src, dst in edges:
        adjacency[src].append(dst)
        indegree[dst] += 1
    queue = deque(i for i, deg in enumerate(indegree) if deg == 0)
    visited = 0
    while queue:
        current = queue.popleft()
        visited += 1
        for nxt in adjacency[current]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                queue.append(nxt)

    issues: List[str] = []
    if visited != len(index):
        stuck = [key for key, i in index.items() if indegree[i] > 0]
        stuck.sort(key=lambda k: (k[0], k[1], k[2].value))
        preview = ", ".join(
            f"task {t} mb {mb} {side.value}" for t, mb, side in stuck[:6]
        )
        issues.append(
            f"wait-for cycle involving {len(stuck)} invocation(s): {preview}"
            + ("..." if len(stuck) > 6 else "")
        )
    return LintResult(
        ok=not issues,
        issues=issues,
        node_count=len(index),
        edge_count=len(edges),
    )


__all__ = ["lint_plan", "LintResult"]

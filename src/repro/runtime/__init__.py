"""Discrete-event runtime: flows, plans, simulator, symbolic semantics."""

from .flows import Flow, FlowNetwork
from .memory import (
    SemanticsError,
    VerificationResult,
    execute_sequential,
    execute_symbolic,
    initial_state,
    verify_collective,
    verify_completion_order,
)
from .metrics import FaultStats, LinkStats, SimCounters, SimReport, TBStats
from .plan import (
    MB,
    ExecMode,
    ExecutionPlan,
    Invocation,
    Protocol,
    Side,
    SimConfig,
    TBProgram,
    plan_microbatches,
)
from .lint import LintResult, lint_plan
from .simulator import SimulationDeadlock, SimulationStall, Simulator, simulate

__all__ = [
    "Flow",
    "FlowNetwork",
    "SimCounters",
    "SimReport",
    "TBStats",
    "LinkStats",
    "FaultStats",
    "MB",
    "Side",
    "ExecMode",
    "Protocol",
    "Invocation",
    "TBProgram",
    "SimConfig",
    "ExecutionPlan",
    "plan_microbatches",
    "Simulator",
    "SimulationDeadlock",
    "SimulationStall",
    "simulate",
    "lint_plan",
    "LintResult",
    "verify_collective",
    "verify_completion_order",
    "execute_symbolic",
    "execute_sequential",
    "initial_state",
    "VerificationResult",
    "SemanticsError",
]

"""Symbolic buffer-state engine: verifies collective correctness.

Timing aside, an algorithm is *correct* when executing its transfers in
step order establishes the collective's postcondition.  This engine
tracks, for every (rank, chunk) buffer slot, the set of ranks whose
contribution has been folded into that slot:

* ``recv`` overwrites the destination slot with the source slot;
* ``rrc`` (receive-reduce-copy) unions the source slot into the
  destination slot.

Initial state and postcondition depend on the collective:

* AllGather — rank ``r`` starts holding only chunk ``r`` (contribution
  ``{r}``); afterwards every rank holds every chunk ``c`` with
  contribution ``{c}``.
* AllReduce — every rank starts with contribution ``{r}`` in every chunk;
  afterwards every slot holds all ranks.
* ReduceScatter — same start; afterwards rank ``r``'s chunk ``r`` holds
  all ranks.

Every backend must preserve the program's data dependencies, so a single
symbolic check of the program certifies all of them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

from ..ir.task import Collective, CommType
from ..lang.builder import AlgoProgram

#: state[rank][chunk] -> frozenset of contributing ranks.
BufferState = List[List[FrozenSet[int]]]


class SemanticsError(ValueError):
    """Raised when a program is symbolically executable but ill-formed."""


@dataclass
class VerificationResult:
    """Outcome of symbolically executing and checking one program."""

    ok: bool
    errors: List[str] = field(default_factory=list)
    final_state: BufferState = field(default_factory=list)

    def raise_if_failed(self) -> None:
        if not self.ok:
            preview = "\n  - ".join(self.errors[:10])
            raise SemanticsError(
                f"{len(self.errors)} correctness issue(s):\n  - {preview}"
            )


def initial_state(program: AlgoProgram) -> BufferState:
    """Pre-collective buffer contents for the program's collective."""
    nranks, nchunks = program.nranks, program.nchunks
    collective = program.collective
    state: BufferState = []
    for rank in range(nranks):
        row: List[FrozenSet[int]] = []
        for chunk in range(nchunks):
            if collective is Collective.ALLGATHER:
                row.append(frozenset({chunk}) if chunk == rank else frozenset())
            else:
                row.append(frozenset({rank}))
        state.append(row)
    return state


def execute_symbolic(program: AlgoProgram) -> Tuple[BufferState, List[str]]:
    """Run the program step-by-step over symbolic buffers.

    Transfers within one step are concurrent: all reads observe the
    pre-step state, and two writes to the same slot in one step are an
    error.  Returns the final state and any errors encountered.
    """
    state = initial_state(program)
    errors: List[str] = []
    by_step: Dict[int, List] = defaultdict(list)
    for transfer in program.transfers:
        by_step[transfer.step].append(transfer)

    for step in sorted(by_step):
        writes: Dict[Tuple[int, int], FrozenSet[int]] = {}
        writers: Dict[Tuple[int, int], List] = defaultdict(list)
        for t in by_step[step]:
            payload = state[t.src][t.chunk]
            if not payload:
                errors.append(
                    f"step {step}: rank {t.src} sends chunk {t.chunk} "
                    "before holding any data for it"
                )
            slot = (t.dst, t.chunk)
            writers[slot].append(t)
            if t.op is CommType.RRC:
                writes[slot] = state[t.dst][t.chunk] | payload
            else:
                writes[slot] = payload
        for slot, slot_writers in writers.items():
            if len(slot_writers) > 1:
                errors.append(
                    f"step {step}: {len(slot_writers)} concurrent writes to "
                    f"chunk {slot[1]} on rank {slot[0]}"
                )
        for (dst, chunk), value in writes.items():
            state[dst][chunk] = value
    return state, errors


def _check_postcondition(
    program: AlgoProgram, state: BufferState
) -> List[str]:
    errors: List[str] = []
    nranks = program.nranks
    everyone = frozenset(range(nranks))
    collective = program.collective
    for rank in range(nranks):
        for chunk in range(program.nchunks):
            value = state[rank][chunk]
            if collective is Collective.ALLGATHER:
                expected = frozenset({chunk})
                if value != expected:
                    errors.append(
                        f"AllGather: rank {rank} chunk {chunk} holds "
                        f"{sorted(value)}, expected {sorted(expected)}"
                    )
            elif collective is Collective.ALLREDUCE:
                if value != everyone:
                    errors.append(
                        f"AllReduce: rank {rank} chunk {chunk} reduced over "
                        f"{sorted(value)}, expected all {nranks} ranks"
                    )
            elif collective is Collective.REDUCESCATTER:
                if chunk == rank and value != everyone:
                    errors.append(
                        f"ReduceScatter: rank {rank} chunk {chunk} reduced "
                        f"over {sorted(value)}, expected all {nranks} ranks"
                    )
    return errors


def verify_collective(program: AlgoProgram) -> VerificationResult:
    """Symbolically execute a program and check its postcondition."""
    state, errors = execute_symbolic(program)
    errors.extend(_check_postcondition(program, state))
    return VerificationResult(ok=not errors, errors=errors, final_state=state)


def execute_sequential(
    program: AlgoProgram, order: List[int]
) -> Tuple[BufferState, List[str]]:
    """Apply transfers one at a time in an explicit (dynamic) order.

    ``order`` lists indices into ``program.transfers`` — e.g. the order a
    runtime actually completed them in.  Unlike :func:`execute_symbolic`,
    each transfer observes every earlier one's writes, which is exactly
    the memory model of a serialized completion trace.
    """
    state = initial_state(program)
    errors: List[str] = []
    if sorted(order) != list(range(len(program.transfers))):
        errors.append(
            f"order covers {len(set(order))} of "
            f"{len(program.transfers)} transfers"
        )
        return state, errors
    for position, index in enumerate(order):
        t = program.transfers[index]
        payload = state[t.src][t.chunk]
        if not payload:
            errors.append(
                f"position {position}: rank {t.src} sends chunk {t.chunk} "
                "before holding any data for it"
            )
        if t.op is CommType.RRC:
            state[t.dst][t.chunk] = state[t.dst][t.chunk] | payload
        else:
            state[t.dst][t.chunk] = payload
    return state, errors


def verify_completion_order(
    program: AlgoProgram, order: List[int]
) -> VerificationResult:
    """Verify that a dynamic completion order realizes the collective.

    This is the end-to-end soundness check of a *runtime execution*: the
    simulator reports the order in which task invocations completed;
    replaying that order sequentially through the symbolic buffers must
    still establish the collective's postcondition, or the execution
    violated a data dependency.
    """
    state, errors = execute_sequential(program, order)
    errors.extend(_check_postcondition(program, state))
    return VerificationResult(ok=not errors, errors=errors, final_state=state)


__all__ = [
    "BufferState",
    "SemanticsError",
    "VerificationResult",
    "initial_state",
    "execute_symbolic",
    "execute_sequential",
    "verify_collective",
    "verify_completion_order",
]

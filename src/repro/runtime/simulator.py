"""Discrete-event execution of a plan over the fluid-flow fabric model.

Execution semantics (mirroring an RDMA-write, credit-based transport —
NCCL's Simple protocol):

* Every thread block executes its invocation list strictly in order.
* A **send** invocation waits for its task's data dependencies (the DAG
  predecessors, same micro-batch) and for a FIFO credit on its
  connection, then streams the chunk as a flow; the TB is busy for the
  flow's duration.  Credits let a sender run ahead of its receiver by
  ``fifo_depth`` chunks — running further ahead blocks (sync wait).
* A **recv** invocation waits for the data to have arrived and for its
  own data dependencies, then copies the chunk out of the communication
  buffer (busy at the TB's copy bandwidth, plus the reduction cost for
  ``recvReduceCopy``).  Completion of the copy completes the task
  invocation: dependents unblock and the FIFO credit is released.
* Interpreter mode charges every invocation a decode cost; kernel mode
  charges a one-time pipeline load per TB (Equation 5's ``t_Load``).

The simulator reports a :class:`~repro.runtime.metrics.SimReport` and
raises :class:`SimulationDeadlock` (with per-TB diagnostics) if progress
stops — which turns plan-construction bugs into loud failures instead of
silent hangs.
"""

from __future__ import annotations

import itertools
from collections import defaultdict, deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..ir.task import CommType
from ..obs.metrics import current_registry
from ..obs.spans import span as obs_span
from .aggregate import collapse_microbatch_runs, expand_report
from .events import make_event_queue
from .flows import Flow, FlowNetwork
from .metrics import (
    FaultStats,
    LinkStats,
    SimCounters,
    SimReport,
    TBStats,
    TraceEvent,
)
from .plan import ExecMode, ExecutionPlan, Invocation, Side


class SimulationDeadlock(RuntimeError):
    """The event queue drained while thread blocks were still blocked."""


class SimulationStall(SimulationDeadlock):
    """The progress watchdog declared a stall no recovery policy cleared.

    Carries the structured :class:`~repro.faults.watchdog.ProgressStall`
    diagnostic as ``.stall`` — per-TB wait kinds and durations plus the
    per-edge flow census at detection time.
    """

    def __init__(self, message: str, stall=None) -> None:
        super().__init__(message)
        self.stall = stall


_EPS = 1e-6
_INF = float("inf")

# TB phases.
_FETCH = "fetch"  # about to pay control overhead for the next invocation
_READY = "ready"  # overhead paid; waiting to satisfy start conditions
_INFLIGHT = "inflight"  # streaming a flow / copying out a chunk
_DONE = "done"


class _TB:
    """Mutable execution state of one thread block."""

    __slots__ = (
        "index",
        "program",
        "pc",
        "phase",
        "blocked_on",
        "wait_start",
        "wait_kind",
        "stats",
    )

    def __init__(self, index: int, program, stats: TBStats) -> None:
        self.index = index
        self.program = program
        self.pc = 0
        self.phase = _FETCH
        self.blocked_on: Optional[Tuple[str, object]] = None
        self.wait_start: float = 0.0
        self.wait_kind: str = ""
        self.stats = stats

    def current(self) -> Optional[Invocation]:
        if self.pc < len(self.program.invocations):
            return self.program.invocations[self.pc]
        return None


class Simulator:
    """Executes one :class:`ExecutionPlan` and gathers metrics."""

    def __init__(
        self,
        plan: ExecutionPlan,
        background_traffic: Optional[List[Tuple[Tuple[str, ...], float]]] = None,
        record_trace: bool = False,
        injector=None,
        recovery=None,
        start_at_us: float = 0.0,
    ) -> None:
        """Args:
            plan: the execution plan to run.
            background_traffic: optional external congestors — a list of
                ``(edges, rate_cap)`` persistent flows occupying the
                given contention edges for the whole run (e.g. another
                job's traffic sharing a NIC).  Used by the
                network-contention experiments of section 4.4.
            record_trace: collect per-TB activity intervals into
                ``report.trace`` (timeline/Chrome-trace export).
            injector: optional :class:`~repro.faults.FaultInjector`; when
                armed, its scheduled fault events are applied during the
                run and ``report.fault_stats`` is populated.
            recovery: optional recovery policy (see
                :mod:`repro.faults.recovery`) consulted by the progress
                watchdog before a stall is raised.
            start_at_us: clock origin.  A resume plan produced by the
                replan-and-resume recovery path starts where the failed
                primary attempt stalled, so its completion time — and
                every trace/fault timestamp — is already in global run
                time and stitches directly onto the checkpoint.
        """
        plan.validate()
        self.plan = plan
        self.cluster = plan.cluster
        self.config = plan.config
        self.dag = plan.dag
        # Ambient metrics registry; None (the common case) means every
        # publish site is a single attribute test and nothing else.
        self._metrics = current_registry()
        self.network = FlowNetwork(
            {e: self.cluster.edge_capacity(e) for e in self.cluster.edges},
            gamma=self.config.gamma,
            metrics=self._metrics,
            incremental=self.config.incremental_rates,
            rate_rel_epsilon=self.config.rate_rel_epsilon,
            vectorize=self.config.vectorized_rates,
            vectorize_min_flows=self.config.vectorize_min_flows,
        )
        self.start_at_us = start_at_us
        self.now = start_at_us
        self.counters = SimCounters()
        self._queue = make_event_queue(
            self.config.event_queue,
            plan.total_invocations,
            self.config.event_bucket_width_us,
        )
        self._seq = itertools.count()
        # Lazy invalidation (default): the live completion-event entry of
        # each flow is tracked in `_flow_cell` and cancelled in place
        # when a re-rate supersedes it, so stale events are skipped
        # inside the queue without a dispatch.  With
        # ``lazy_invalidation=False`` (the pre-bucket discipline, kept as
        # the benchmark baseline) stale events are dispatched and
        # recognised by a per-flow version check instead.
        self._lazy_inval = self.config.lazy_invalidation
        self._flow_cell: Dict[int, list] = {}
        # Batched finish re-rates (lazy mode): edges whose membership
        # changed at `self.now` but whose reallocation is still pending.
        # Simultaneous completions — pervasive in symmetric collectives —
        # then share one re-rate pass and one repost wave.  The batch is
        # flushed before the clock advances, before any non-flow event,
        # and before any admission or other rate read, so no observable
        # state ever sees a stale rate (no simulated time passes between
        # the deferred removals and the flush).
        self._dirty_edges: Dict[str, None] = {}
        # Per-task protocol-adjusted route latency (hot on flow finish).
        self._task_latency: Dict[int, float] = {}
        # Exact micro-batch aggregation: one representative instance's
        # schedule metadata (route + send cap, recv copy duration) is
        # computed once per task and shared by its siblings.  Disabled
        # (recomputed per instance) when ``aggregate_microbatches`` is
        # off; both modes are bit-identical.
        self._agg_meta = self.config.aggregate_microbatches
        self._task_send_meta: Dict[int, Tuple[Tuple[str, ...], float]] = {}
        self._task_recv_duration: Dict[int, float] = {}
        for edges, cap in background_traffic or ():
            # Effectively-infinite payload: the congestor never drains.
            self.network.start_flow(
                edges=tuple(edges), nbytes=float("inf"), cap=cap, now=self.now
            )

        self.tbs = [
            _TB(
                i,
                tbp,
                TBStats(
                    rank=tbp.rank,
                    tb_index=tbp.tb_index,
                    label=tbp.label,
                    nwarps=tbp.nwarps,
                ),
            )
            for i, tbp in enumerate(plan.tb_programs)
        ]

        # Data-dependency tracking (per micro-batch; micro-batches are
        # data-independent, so dependencies never cross them).
        self._deps_left: Dict[Tuple[int, int], int] = {}
        self._completed: Set[Tuple[int, int]] = set()
        self._dep_waiters: Dict[Tuple[int, int], List[int]] = defaultdict(list)

        # Flow-progress tracking.  ``_flow_started`` marks (task, mb) whose
        # sender began streaming (a receiver may then start its overlapped
        # copy); ``_flow_done`` marks fully-arrived payloads.
        self._flow_started: Set[Tuple[int, int]] = set()
        self._flow_done: Set[Tuple[int, int]] = set()
        self._data_waiters: Dict[Tuple[int, int], int] = {}
        # In-progress receives: key -> [tb_index, start_time, copy_elapsed].
        self._recv_state: Dict[Tuple[int, int], list] = {}

        # FIFO credits, per (sender TB, destination rank): each sending TB
        # owns a private chunk FIFO towards each peer, as NCCL channels do.
        self._credits: Dict[Tuple[int, int], int] = defaultdict(
            lambda: self.config.fifo_depth
        )
        self._credit_queue: Dict[Tuple[int, int], Deque[int]] = defaultdict(deque)
        # Which credit key each in-flight (task, mb) must release.
        self._credit_owner: Dict[Tuple[int, int], Tuple[int, int]] = {}

        # Active flows: flow_id -> (flow, task_id, mb, sender tb index).
        self._flows: Dict[int, Tuple[Flow, int, int, int]] = {}
        self._flow_version: Dict[int, int] = {}

        # Completed (task, mb) invocations in completion order — lets
        # callers replay the dynamic schedule through the symbolic
        # correctness engine.
        self._completion_log: List[Tuple[int, int]] = []

        self._record_trace = record_trace
        self._trace: List[TraceEvent] = []
        # Fault/detection/recovery events live in their own bounded ring
        # buffer: they are recorded even with tracing off, so a long
        # chaos run must not grow memory without limit.
        self._fault_trace: Deque[TraceEvent] = deque()
        self._trace_dropped = 0
        # Link-occupancy counter samples (link, time, active flows).
        self._link_trace: List[Tuple[str, float, int]] = []

        # Per-logical-link activity.
        self._link_stats: Dict[str, LinkStats] = {}
        self._link_active: Dict[str, int] = defaultdict(int)
        self._link_busy_since: Dict[str, float] = {}

        self._unfinished = len(self.tbs)

        # --- Progress watchdog & fault-injection state -----------------
        # ``_progress_counter`` bumps on every byte-moving or
        # pc-advancing action; the watchdog declares a stall only when it
        # has not moved for a full window AND nothing currently scheduled
        # could move it (no draining flow, no pending recv clock, no
        # pending TB timer).
        self._progress_counter = 0
        self._last_progress_us = self.now
        self._watchdog_seen_counter = -1
        self._stall_reported = False
        self._tb_timers = 0  # pending "tb" wakeups (overhead / unfreeze)
        self._frozen: Dict[int, float] = {}  # tb_index -> stall end time
        self._frozen_posted: Set[int] = set()
        #: Stall episodes the watchdog detected (also without an injector).
        self.stalls_detected = 0

        self.injector = injector
        self.recovery = recovery
        self.fault_stats: Optional[FaultStats] = None
        if injector is not None:
            self.fault_stats = FaultStats()
            injector.arm(self)
        if recovery is not None:
            recovery.bind(self)

    @property
    def watchdog_window_us(self) -> float:
        return self.config.watchdog_window_us

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _post(self, time: float, kind: str, payload: object) -> list:
        if kind == "tb":
            self._tb_timers += 1
        self.counters.events_posted += 1
        return self._queue.post(time, next(self._seq), kind, payload)

    def _progress(self) -> None:
        """Record a unit of real progress (bytes moved or pc advanced)."""
        self._progress_counter += 1
        self._last_progress_us = self.now
        self._stall_reported = False

    def _trace_event(
        self,
        tb: "_TB",
        kind: str,
        start: float,
        end: float,
        task_id: int = -1,
        mb: int = -1,
    ) -> None:
        if self._record_trace and end > start:
            self._trace.append(
                TraceEvent(
                    tb_index=tb.index,
                    rank=tb.program.rank,
                    kind=kind,
                    start_us=start,
                    end_us=end,
                    task_id=task_id,
                    mb=mb,
                )
            )

    def run(self) -> SimReport:
        """Run to completion and return the measurement report."""
        for tb in self.tbs:
            self._advance(tb)
        if self.watchdog_window_us > 0:
            self._post(self.now + self.watchdog_window_us, "watchdog", None)
        queue = self._queue
        while True:
            if self._dirty_edges:
                # A deferred finish re-rate is pending at self.now.  It
                # may stay deferred only while the next event is another
                # flow event at the same instant (whose completion check
                # is rate-independent over a zero-length interval);
                # anything else — a later event, a non-flow event, or an
                # empty queue — must see reconciled rates, and the flush
                # may post completion events earlier than the next entry.
                nxt = queue.peek()
                if nxt is None or nxt[0] != self.now or nxt[2] != "flow":
                    self._flush_rerate()
            entry = queue.pop()
            if entry is None:
                break
            time = entry[0]
            kind = entry[2]
            payload = entry[3]
            self.counters.events_popped += 1
            if time > self.now:
                self.now = time
            if kind == "tb":
                self._tb_timers -= 1
                tb = self.tbs[payload]  # type: ignore[index]
                self._advance(tb)
            elif kind == "flow":
                self._maybe_finish_flow(payload)
            elif kind == "recv_copy":
                self._recv_copy_elapsed(payload)  # type: ignore[arg-type]
            elif kind == "watchdog":
                self._watchdog_tick()
            elif kind == "fault":
                self.injector.on_event(self, payload)
            elif kind == "retry":
                self.recovery.on_event(self, payload)
            elif kind == "credit":
                self._release_credit(payload)  # type: ignore[arg-type]
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")
        if self._unfinished:
            raise SimulationDeadlock(self._deadlock_report())
        return self._report()

    # ------------------------------------------------------------------
    # TB state machine
    # ------------------------------------------------------------------

    def _advance(self, tb: _TB) -> None:
        """Drive a TB forward as far as it can go at the current time."""
        while True:
            if tb.phase == _DONE or tb.phase == _INFLIGHT:
                return
            if self._frozen:
                until = self._frozen.get(tb.index)
                if until is not None:
                    if self.now < until - _EPS:
                        # Injected TB stall: defer all control progress
                        # until the stall window ends.
                        if tb.index not in self._frozen_posted:
                            self._frozen_posted.add(tb.index)
                            self._post(until, "tb", tb.index)
                        return
                    self._frozen.pop(tb.index, None)
                    self._frozen_posted.discard(tb.index)
            inv = tb.current()
            if inv is None:
                tb.phase = _DONE
                tb.stats.release_time = self.now
                self._unfinished -= 1
                return
            if tb.phase == _FETCH:
                overhead = self._control_overhead(tb)
                tb.phase = _READY
                if overhead > 0.0:
                    tb.stats.overhead += overhead
                    self._trace_event(tb, "overhead", self.now, self.now + overhead)
                    self._post(self.now + overhead, "tb", tb.index)
                    return
                continue
            # _READY: try to start the invocation.
            if inv.side is Side.SEND:
                if not self._try_start_send(tb, inv):
                    return
            else:
                if not self._try_start_recv(tb, inv):
                    return

    def _control_overhead(self, tb: _TB) -> float:
        """Per-invocation decode cost, or one-time kernel pipeline load."""
        if self.plan.mode is ExecMode.INTERPRETER:
            return self.config.interp_cost_us
        if tb.pc == 0:
            return self.config.kernel_load_us
        return 0.0

    def _block(self, tb: _TB, kind: str, key: object, wait_kind: str) -> None:
        tb.blocked_on = (kind, key)
        tb.wait_start = self.now
        tb.wait_kind = wait_kind

    def _unblock(self, tb: _TB) -> None:
        if tb.blocked_on is None:
            return
        waited = self.now - tb.wait_start
        if waited > 0:
            if tb.wait_kind == "data":
                tb.stats.data_wait += waited
            else:
                tb.stats.sync_wait += waited
            if self._metrics is not None:
                self._metrics.observe(
                    "sim_wait_us", waited, kind=tb.wait_kind
                )
            # Bind the wait to the blocked task when the key carries one
            # (deps/data waits); the analyzer uses it to splice the
            # critical path across TBs at wait boundaries.
            kind, key = tb.blocked_on
            task_id, mb = key if kind in ("deps", "data") else (-1, -1)
            self._trace_event(
                tb, f"wait:{tb.wait_kind}", tb.wait_start, self.now,
                task_id, mb,
            )
        tb.blocked_on = None
        tb.wait_kind = ""

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------

    def _deps_satisfied(self, task_id: int, mb: int) -> bool:
        key = (task_id, mb)
        left = self._deps_left.get(key)
        if left is None:
            preds = self.dag.preds[task_id]
            left = sum(1 for p in preds if (p, mb) not in self._completed)
            self._deps_left[key] = left
        return left == 0

    def _try_start_send(self, tb: _TB, inv: Invocation) -> bool:
        task = self.dag.task(inv.task_id)
        key = (inv.task_id, inv.mb)
        if not self._deps_satisfied(inv.task_id, inv.mb):
            if tb.blocked_on is None:
                self._block(tb, "deps", key, "data")
                self._dep_waiters[key].append(tb.index)
            return False
        credit_key = (tb.index, task.dst)
        if self._credits[credit_key] <= 0:
            if tb.blocked_on is None or tb.blocked_on[0] != "credit":
                # May transition from a deps wait into a credit wait.
                self._unblock(tb)
                self._block(tb, "credit", credit_key, "sync")
                self._credit_queue[credit_key].append(tb.index)
                if self._metrics is not None:
                    self._metrics.inc("sim_credit_stalls_total")
                    self._metrics.observe(
                        "sim_credit_queue_depth",
                        len(self._credit_queue[credit_key]),
                    )
            return False
        self._unblock(tb)
        self._credits[credit_key] -= 1
        self._credit_owner[(inv.task_id, inv.mb)] = credit_key
        self._start_flow(tb, inv, task)
        return True

    def _send_meta(self, tb: _TB, task_id: int, task) -> Tuple[Tuple[str, ...], float]:
        """Route edges and TB send cap for one task's transfer.

        With exact micro-batch aggregation on, the representative
        instance's values are shared by every sibling; otherwise they
        are recomputed per instance (identical results either way).
        """
        if self._agg_meta:
            meta = self._task_send_meta.get(task_id)
            if meta is not None:
                return meta
        edges = self.cluster.path(task.src, task.dst).edges
        cap = (
            self.cluster.profile.tb_copy_bandwidth(tb.program.nwarps)
            * self.config.protocol.bandwidth_efficiency
        )
        if self._agg_meta:
            self._task_send_meta[task_id] = (edges, cap)
        return edges, cap

    def _start_flow(self, tb: _TB, inv: Invocation, task) -> None:
        if self._dirty_edges:
            # A same-instant completion's re-rate is still deferred; the
            # admission below must see reconciled memberships and rates.
            self._flush_rerate()
        edges, cap = self._send_meta(tb, inv.task_id, task)
        flow, changed = self.network.start_flow(
            edges=edges,
            nbytes=self.plan.chunk_bytes,
            cap=cap,
            now=self.now + self._route_latency(inv.task_id, task),
            ordered=not self._lazy_inval,
        )
        self._flows[flow.flow_id] = (flow, inv.task_id, inv.mb, tb.index)
        if not self._lazy_inval:
            self._flow_version[flow.flow_id] = 0
        tb.phase = _INFLIGHT
        self._progress()
        if self._metrics is not None:
            self._metrics.inc("sim_flows_started_total")
        self._link_enter(task.link)
        self._post_flow_eta(flow)
        if not self._lazy_inval:
            # Pre-bucket discipline: every peer rate change reposts.
            for other in changed:
                if other.flow_id != flow.flow_id:
                    self._post_flow_eta(other)
        # Earliest-wins discipline: an admission can only *lower* its
        # peers' rates — adding demand never raises a water-filled edge
        # share (the released-cap gain is bounded by the old equal share,
        # so the new share is a mediant below the old one, and the
        # Equation 1 contention penalty only pushes further down).  Every
        # peer ETA therefore moved later, and each peer's pending
        # completion event already fires at-or-before it, so no peer
        # needs a repost check at all.
        # The receiver may begin its overlapped copy as soon as the stream
        # is in flight (recvCopySend semantics).
        key = (inv.task_id, inv.mb)
        self._flow_started.add(key)
        waiter = self._data_waiters.pop(key, None)
        if waiter is not None:
            self._advance(self.tbs[waiter])

    def _flush_rerate(self) -> None:
        """Apply the deferred finish re-rates and repost changed ETAs."""
        dirty = self._dirty_edges
        if not dirty:
            return
        self._dirty_edges = {}
        changed = self.network.rerate_edges(tuple(dirty), self.now)
        for other in changed:
            self._post_flow_eta(other)

    def _post_flow_eta(self, flow: Flow) -> None:
        flow_id = flow.flow_id
        if self._lazy_inval:
            # Earliest-wins discipline: a completion event is (re)posted
            # only when the flow's ETA moved *earlier* than the pending
            # event (or none is pending).  When a rate drop moves the ETA
            # later, the pending event is kept — it wakes early, finds
            # the flow unfinished, and reposts itself at the then-current
            # ETA (see :meth:`_maybe_finish_flow`).  Admission waves,
            # which only ever slow their peers down, therefore post
            # nothing at all.  A superseded (later-firing) event is
            # cancelled in place (``cell[4] = False`` inlines
            # ``EventQueue.cancel`` — this is the hottest call site in
            # the simulator) and skipped inside the queue.
            eta = flow.eta()
            cell = self._flow_cell.get(flow_id)
            if cell is not None:
                if cell[0] <= eta:
                    return
                cell[4] = False
            if eta != _INF:
                if eta < self.now:
                    eta = self.now
                self.counters.events_posted += 1
                self._flow_cell[flow_id] = self._queue.post(
                    eta, next(self._seq), "flow", flow_id
                )
            elif cell is not None:
                del self._flow_cell[flow_id]
        else:
            # Pre-bucket discipline (the scale benchmark's baseline):
            # every rate change bumps the flow's version and posts a
            # fresh event at the new ETA; superseded events stay live in
            # the queue and are recognised at dispatch by their stale
            # version.  Physical completion times match the earliest-wins
            # discipline exactly, but the completion *tie-break order*
            # of simultaneous completions may differ, so this mode is a
            # wall-time baseline, not a golden-fingerprint variant.
            version = self._flow_version.get(flow_id, 0) + 1
            self._flow_version[flow_id] = version
            eta = flow.eta()
            if eta != _INF:
                if eta < self.now:
                    eta = self.now
                self.counters.events_posted += 1
                self._queue.post(
                    eta, next(self._seq), "flow", (flow_id, version)
                )

    def _maybe_finish_flow(self, payload) -> None:
        if type(payload) is tuple:
            # Eager (versioned) discipline: payload carries the version
            # current when the event was posted.
            flow_id, version = payload
            if self._flow_version.get(flow_id) != version:
                # A superseded (version-bumped) flow event: skip without
                # touching any state.
                self.counters.stale_events_skipped += 1
                return
        else:
            flow_id = payload
        entry = self._flows.get(flow_id)
        if entry is None:
            # An already-torn-down flow (with lazy invalidation this is
            # purely defensive — cancelled cells never dispatch).
            self.counters.stale_events_skipped += 1
            return
        flow, task_id, mb, sender_index = entry
        if self._lazy_inval:
            # Early-wakeup check WITHOUT reconciling the flow: the
            # remaining-bytes expression below is the same float
            # arithmetic ``advance_to`` would apply, so the completion
            # decision is bit-identical to reconcile-then-test, but a
            # kept-early event does not perturb the flow's
            # ``(remaining, last_update)`` reduction sequence.
            rate = flow.rate
            remaining = flow.remaining
            if self.now > flow.last_update and rate > 0.0:
                remaining = remaining - rate * (self.now - flow.last_update)
            if remaining > _EPS:
                # The rate dropped since this event was posted: the flow
                # is not done.  Consume the cell, reconcile any deferred
                # same-instant re-rate (it may have raised this flow's
                # rate), and repost at the current ETA.
                self._flow_cell.pop(flow_id, None)
                if self._dirty_edges:
                    self._flush_rerate()
                self._post_flow_eta(flow)
                return
            flow.advance_to(self.now)
        else:
            flow.advance_to(self.now)
            if flow.remaining > _EPS:
                self._post_flow_eta(flow)
                return
        del self._flows[flow_id]
        self._flow_version.pop(flow_id, None)
        self._flow_cell.pop(flow_id, None)
        if self._lazy_inval:
            # Defer the reallocation: simultaneous completions (the
            # common case in symmetric collectives) share one re-rate
            # pass and one repost wave, flushed before any rate is read.
            self.network.finish_flow(flow, self.now, rerate=False)
            dirty = self._dirty_edges
            for edge in flow.edges:
                dirty[edge] = None
        else:
            changed = self.network.finish_flow(flow, self.now)
            for other in changed:
                self._post_flow_eta(other)

        task = self.dag.task(task_id)
        self._link_exit(task.link, flow.nbytes)
        if self._metrics is not None:
            self._metrics.inc("sim_flows_completed_total")
            self._metrics.inc(
                "sim_link_bytes_total", flow.nbytes, link=task.link
            )

        sender = self.tbs[sender_index]
        send_start = flow.start_time - self._route_latency(task_id, task)
        sender.stats.busy += self.now - send_start
        self._trace_event(sender, "send", send_start, self.now, task_id, mb)
        sender.stats.invocations += 1
        sender.phase = _FETCH
        sender.pc += 1
        self._progress()
        self._advance(sender)

        key = (task_id, mb)
        self._flow_done.add(key)
        state = self._recv_state.get(key)
        if state is not None and state[2]:
            # The receiver's copy clock already elapsed: the recv completes
            # the moment the last byte lands.
            self._finish_recv(key)

    def _route_latency(self, task_id: int, task) -> float:
        latency = self._task_latency.get(task_id)
        if latency is None:
            latency = self._task_latency[task_id] = (
                self.cluster.path(task.src, task.dst).latency_us
                * self.config.protocol.latency_factor
            )
        return latency

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------

    def _try_start_recv(self, tb: _TB, inv: Invocation) -> bool:
        key = (inv.task_id, inv.mb)
        if key not in self._flow_started:
            if tb.blocked_on is None:
                self._block(tb, "data", key, "sync")
                self._data_waiters[key] = tb.index
            return False
        if not self._deps_satisfied(inv.task_id, inv.mb):
            if tb.blocked_on is None or tb.blocked_on[0] != "deps":
                self._unblock(tb)
                self._block(tb, "deps", key, "data")
                self._dep_waiters[key].append(tb.index)
            return False
        self._unblock(tb)
        duration = (
            self._task_recv_duration.get(inv.task_id) if self._agg_meta else None
        )
        if duration is None:
            task = self.dag.task(inv.task_id)
            copy_bw = self.cluster.profile.tb_copy_bandwidth(tb.program.nwarps)
            duration = self.plan.chunk_bytes / copy_bw
            if task.op is CommType.RRC:
                duration += (
                    self.plan.chunk_bytes
                    * self.cluster.profile.reduce_cost_per_byte_us
                )
            if self._agg_meta:
                self._task_recv_duration[inv.task_id] = duration
        tb.phase = _INFLIGHT
        self._progress()
        self._recv_state[key] = [tb.index, self.now, False]
        self._post(self.now + duration, "recv_copy", key)
        return True

    def _recv_copy_elapsed(self, key: Tuple[int, int]) -> None:
        """The receiver's copy clock ran out; finish if the data is in."""
        state = self._recv_state.get(key)
        if state is None:  # pragma: no cover - defensive
            return
        if key in self._flow_done:
            self._finish_recv(key)
        else:
            state[2] = True  # now gated on flow completion only

    def _finish_recv(self, key: Tuple[int, int]) -> None:
        task_id, mb = key
        tb_index, start_time, _ = self._recv_state.pop(key)
        tb = self.tbs[tb_index]
        tb.stats.busy += self.now - start_time
        self._trace_event(tb, "recv", start_time, self.now, task_id, mb)
        tb.stats.invocations += 1
        tb.phase = _FETCH
        tb.pc += 1
        self._progress()

        # Task invocation complete: release the FIFO credit and satisfy
        # dependents.  An armed injector may delay the credit return
        # (modeling a slow acknowledgement path).
        credit_key = self._credit_owner.pop(key)
        delay = (
            self.injector.credit_delay(self.now)
            if self.injector is not None
            else 0.0
        )
        if delay > 0.0:
            self._post(self.now + delay, "credit", credit_key)
        else:
            self._release_credit(credit_key)

        self._completed.add(key)
        self._completion_log.append(key)
        self._satisfy_dependents(task_id, mb)
        self._advance(tb)

    def _release_credit(self, credit_key: Tuple[int, int]) -> None:
        self._credits[credit_key] += 1
        queue = self._credit_queue[credit_key]
        if queue and self._credits[credit_key] > 0:
            self._advance(self.tbs[queue.popleft()])

    def _satisfy_dependents(self, task_id: int, mb: int) -> None:
        for succ in self.dag.succs[task_id]:
            succ_key = (succ, mb)
            left = self._deps_left.get(succ_key)
            if left is not None and left > 0:
                self._deps_left[succ_key] = left - 1
                if left - 1 == 0:
                    for waiter in self._dep_waiters.pop(succ_key, ()):
                        self._advance(self.tbs[waiter])

    # ------------------------------------------------------------------
    # Link activity accounting
    # ------------------------------------------------------------------

    def _link_enter(self, link: str) -> None:
        stats = self._link_stats.get(link)
        if stats is None:
            stats = self._link_stats[link] = LinkStats(link=link)
        stats.flows_carried += 1
        if self._link_active[link] == 0:
            self._link_busy_since[link] = self.now
        self._link_active[link] += 1
        if self._record_trace:
            self._link_trace.append((link, self.now, self._link_active[link]))

    def _link_exit(self, link: str, bytes_moved: float) -> None:
        stats = self._link_stats[link]
        stats.bytes_moved += bytes_moved
        self._link_active[link] -= 1
        if self._link_active[link] == 0:
            stats.busy_time += self.now - self._link_busy_since.pop(link)
        if self._record_trace:
            self._link_trace.append((link, self.now, self._link_active[link]))

    # ------------------------------------------------------------------
    # Progress watchdog
    # ------------------------------------------------------------------

    def _is_quiescent(self) -> bool:
        """True when nothing currently scheduled can produce progress.

        Quiescence + an unchanged progress counter across a watchdog
        window is the stall condition: every payload flow is rate-zero,
        no receiver copy clock is running, and no TB timer (control
        overhead or injected-stall wakeup) is pending.
        """
        if self._tb_timers > 0:
            return False
        for flow, _task, _mb, _tb in self._flows.values():
            if flow.rate > 0.0:
                return False
        for state in self._recv_state.values():
            if not state[2]:  # copy clock still running
                return False
        return True

    def _watchdog_tick(self) -> None:
        if self._unfinished == 0:
            return  # run is over; let the heap drain
        window = self.watchdog_window_us
        stalled = (
            self._progress_counter == self._watchdog_seen_counter
            and self.now - self._last_progress_us >= window - _EPS
            and self._is_quiescent()
        )
        self._watchdog_seen_counter = self._progress_counter
        if not stalled:
            self._post(self.now + window, "watchdog", None)
            return
        stall = self._build_stall()
        if not self._stall_reported:
            self._stall_reported = True
            self.stalls_detected += 1
            if self._metrics is not None:
                self._metrics.inc("sim_watchdog_stalls_total")
            if self.fault_stats is not None:
                self.fault_stats.detected_stalls += 1
            self.record_fault_event(
                "detect:stall", self._last_progress_us, self.now
            )
        # A pending fault-timeline *restoration* (a flap's link-up) may
        # unstick the run by itself; defer to it before escalating.
        # Pending applications (a future kill/degrade) cannot, so they do
        # not delay escalation.
        if (
            self.injector is not None
            and self.injector.has_pending_restorations()
        ):
            self._post(self.now + window, "watchdog", None)
            return
        if self.recovery is not None and self.recovery.on_stall(self, stall):
            self._post(self.now + window, "watchdog", None)
            return
        if self.fault_stats is not None:
            self.fault_stats.unrecovered += 1
        raise SimulationStall(
            f"watchdog stall: no progress for {window:.0f}us and "
            f"{self._unfinished} TB(s) never finished\n" + stall.render(),
            stall=stall,
        )

    def _build_stall(self):
        from ..faults.watchdog import build_progress_stall

        return build_progress_stall(self)

    # ------------------------------------------------------------------
    # Fault-injection hooks (no-ops unless an injector/recovery is armed)
    # ------------------------------------------------------------------

    def record_fault_event(
        self, kind: str, start: float, end: float, tb_index: int = -1
    ) -> None:
        """Append a fault/detection/recovery event to the fault trace.

        Unlike :meth:`_trace_event` these are recorded unconditionally:
        a faulted run's trace must show its fault timeline even when
        per-TB activity tracing is off.  The buffer is a bounded ring
        (``SimConfig.fault_trace_cap``) so long chaos runs cannot grow
        memory without limit; evictions surface as
        ``SimReport.trace_dropped``.
        """
        cap = self.config.fault_trace_cap
        if cap > 0 and len(self._fault_trace) >= cap:
            self._fault_trace.popleft()
            self._trace_dropped += 1
        rank = self.tbs[tb_index].program.rank if tb_index >= 0 else -1
        self._fault_trace.append(
            TraceEvent(
                tb_index=tb_index,
                rank=rank,
                kind=kind,
                start_us=start,
                end_us=end,
            )
        )
        if self._metrics is not None:
            self._metrics.inc("sim_fault_events_total", kind=kind)

    def apply_edge_factor(self, edge: str, factor: float) -> None:
        """Derate (or restore) a contention edge mid-run."""
        changed = self.network.set_capacity_factor(edge, factor, self.now)
        for flow in changed:
            self._post_flow_eta(flow)

    def freeze_tb(self, tb_index: int, until_us: float) -> None:
        """Stall one TB's control progress until ``until_us``."""
        current = self._frozen.get(tb_index, 0.0)
        self._frozen[tb_index] = max(current, until_us)
        self.record_fault_event(
            "fault:tb-stall", self.now, until_us, tb_index=tb_index
        )

    def abort_flow(self, flow_id: int) -> Tuple[Flow, int, int, int]:
        """Tear down an in-flight flow (fault recovery retransmit path).

        Returns ``(flow, task_id, mb, sender_tb_index)``; the sender TB
        stays in-flight and resumes when the flow is re-admitted via
        :meth:`register_flow`.
        """
        flow, task_id, mb, sender_index = self._flows.pop(flow_id)
        self._flow_version.pop(flow_id, None)
        cell = self._flow_cell.pop(flow_id, None)
        if cell is not None:
            self._queue.cancel(cell)
        for other in self.network.abort_flow(flow, self.now):
            self._post_flow_eta(other)
        task = self.dag.task(task_id)
        self._link_exit(task.link, flow.nbytes - flow.remaining)
        return flow, task_id, mb, sender_index

    def register_flow(
        self, flow: Flow, changed: List[Flow], task_id: int, mb: int,
        sender_index: int,
    ) -> None:
        """Adopt a re-admitted flow started directly on the network."""
        self._flows[flow.flow_id] = (flow, task_id, mb, sender_index)
        if not self._lazy_inval:
            self._flow_version[flow.flow_id] = 0
        self._link_enter(self.dag.task(task_id).link)
        self._progress()
        self._post_flow_eta(flow)
        for other in changed:
            if other.flow_id != flow.flow_id:
                self._post_flow_eta(other)

    def on_edge_restored(self, edge: str) -> None:
        """Called by the injector when a downed edge comes back up."""
        if self.recovery is not None:
            self.recovery.on_edge_restored(self, edge)

    def zero_rate_flows(self) -> List[Tuple[Flow, int, int, int]]:
        """In-flight payload flows currently starved to rate zero."""
        return [
            entry for entry in self._flows.values() if entry[0].rate <= 0.0
        ]

    def export_checkpoint(self) -> Dict[str, object]:
        """Snapshot delivered progress for the replan-and-resume path.

        Returns the raw material a
        :class:`~repro.faults.checkpoint.CollectiveCheckpoint` is built
        from: the ordered ``(task_id, micro_batch)`` completion log (the
        instances whose payload has fully landed and been copied out),
        per-instance bytes already streamed by in-flight-but-unfinished
        flows, and the current clock.  Partial in-flight bytes are
        reported for accounting only — recovery retransmits those chunks
        whole, which is always safe because a send never destroys its
        source slot and the receive that would apply the payload has not
        completed.
        """
        inflight: Dict[Tuple[int, int], float] = {}
        for flow, task_id, mb, _sender in self._flows.values():
            flow.advance_to(self.now)
            inflight[(task_id, mb)] = max(0.0, flow.nbytes - flow.remaining)
        return {
            "plan_name": self.plan.name,
            "at_us": self.now,
            "completed": list(self._completion_log),
            "inflight_bytes": inflight,
        }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(self) -> SimReport:
        # Completion is when the last TB retires; stale (version-
        # invalidated) flow events may leave self.now slightly past that.
        completion = max(
            (tb.stats.release_time for tb in self.tbs), default=self.now
        )
        trace = self._trace
        if self._fault_trace:
            # Interleave the (bounded) fault timeline chronologically.
            trace = sorted(
                [*trace, *self._fault_trace],
                key=lambda e: (e.start_us, e.end_us),
            )
        counters = self.counters
        counters.reallocations = self.network.reallocations
        counters.shares_computed = self.network.shares_computed
        counters.rate_updates = self.network.rate_updates
        counters.flows_admitted = self.network.flows_admitted
        counters.vectorized_passes = self.network.vectorized_passes
        counters.scalar_passes = self.network.scalar_passes
        queue = self._queue
        # Cancelled (superseded) entries never dispatched; fold them into
        # the pop/stale totals so the counters keep the pre-bucket
        # semantics: every posted event is either dispatched or skipped.
        counters.events_popped += queue.cancelled_skipped
        counters.stale_events_skipped += queue.cancelled_skipped
        counters.queue_depth_max = queue.depth_max
        counters.bucket_occupancy_max = queue.bucket_occupancy_max
        counters.queue_refills = queue.refills
        counters.agg_tasks_cached = len(self._task_send_meta) + len(
            self._task_recv_duration
        )
        if self._metrics is not None:
            self._metrics.set("sim_completion_time_us", completion)
            self._metrics.inc("sim_events_posted_total", counters.events_posted)
            self._metrics.inc("sim_events_popped_total", counters.events_popped)
            self._metrics.inc(
                "sim_stale_events_skipped_total",
                counters.stale_events_skipped,
            )
            self._metrics.inc(
                "sim_rate_reallocations_total", counters.reallocations
            )
            self._metrics.inc(
                "sim_edge_shares_computed_total", counters.shares_computed
            )
            self._metrics.set("sim_queue_depth_max", counters.queue_depth_max)
            self._metrics.set(
                "sim_bucket_occupancy_max", counters.bucket_occupancy_max
            )
            if counters.vectorized_passes:
                self._metrics.inc(
                    "sim_vectorized_passes_total", counters.vectorized_passes
                )
            if counters.agg_tasks_cached:
                self._metrics.set(
                    "sim_agg_tasks_cached", counters.agg_tasks_cached
                )
            for link, stats in self._link_stats.items():
                self._metrics.set(
                    "sim_link_busy_us", stats.busy_time, link=link
                )
        return SimReport(
            plan_name=self.plan.name,
            mode=self.plan.mode,
            completion_time_us=completion,
            total_bytes=self.plan.total_bytes,
            tb_stats=[tb.stats for tb in self.tbs],
            link_stats=self._link_stats,
            completion_order=self._completion_log,
            trace=trace,
            fault_stats=self.fault_stats,
            trace_dropped=self._trace_dropped,
            link_trace=self._link_trace,
            counters=counters,
        )

    def _describe_invocation(self, inv: Optional[Invocation]) -> str:
        """``pc`` context for diagnostics: primitive, task, and route."""
        if inv is None:
            return "<end of program>"
        task = self.dag.task(inv.task_id)
        return (
            f"{inv.side.value} task {inv.task_id} "
            f"({task.op.value} {task.src}->{task.dst}) mb {inv.mb}"
        )

    def _deadlock_report(self) -> str:
        lines = [
            f"deadlock at t={self.now:.1f}us: "
            f"{self._unfinished} TB(s) never finished"
        ]
        shown = 0
        for tb in self.tbs:
            if tb.phase == _DONE:
                continue
            waited = max(0.0, self.now - tb.wait_start) if tb.blocked_on else 0.0
            lines.append(
                f"  rank {tb.program.rank} TB{tb.program.tb_index} "
                f"({tb.program.label}) pc={tb.pc}/{len(tb.program.invocations)} "
                f"phase={tb.phase} blocked_on={tb.blocked_on} "
                f"(waited {waited:.1f}us) pending "
                f"{self._describe_invocation(tb.current())}"
            )
            shown += 1
            if shown >= 16:
                lines.append("  ...")
                break
        occupancy = self._credit_occupancy()
        if occupancy:
            lines.append("  connection FIFO credits (used/depth, waiters):")
            lines.extend(occupancy[:16])
        return "\n".join(lines)

    def _credit_occupancy(self) -> List[str]:
        """Per-connection FIFO credit usage for stall/deadlock reports."""
        depth = self.config.fifo_depth
        lines = []
        for (tb_index, dst), available in sorted(self._credits.items()):
            used = depth - available
            waiters = len(self._credit_queue.get((tb_index, dst), ()))
            if used == 0 and waiters == 0:
                continue
            tb = self.tbs[tb_index]
            lines.append(
                f"    rank {tb.program.rank} TB{tb.program.tb_index} -> "
                f"rank {dst}: {used}/{depth} in flight, "
                f"{waiters} TB(s) queued"
            )
        return lines


def simulate(
    plan: ExecutionPlan,
    background_traffic: Optional[List[Tuple[Tuple[str, ...], float]]] = None,
    record_trace: bool = False,
    injector=None,
    recovery=None,
) -> SimReport:
    """Convenience wrapper: build a simulator, run it, return the report.

    When the plan's config enables fast-fidelity micro-batch collapse,
    each uniform micro-batch run is folded into one representative
    instance before simulation and the report is fanned back out
    afterwards (see :mod:`repro.runtime.aggregate`).  Collapse is
    refused — recorded as ``counters.agg_collapse_disabled`` — whenever
    a fault injector, recovery policy, or background traffic is present,
    because sibling timing is observable in those runs (checkpoints,
    per-instance retries, external contention).  A collapse that is
    *permitted but has nothing to fold* (single micro-batch) is recorded
    as ``counters.agg_collapse_noop`` so fast-fidelity screens can tell
    when they silently measured the exact plan.
    """
    collapsed = None
    collapse_disabled = False
    collapse_noop = False
    if plan.config.collapse_microbatches:
        if injector is not None or recovery is not None or background_traffic:
            collapse_disabled = True
        elif plan.n_microbatches > 1:
            collapsed = collapse_microbatch_runs(plan)
            if collapsed is None:
                collapse_noop = True
        else:
            # Nothing to fold: the plan has a single micro-batch, so
            # fast fidelity silently measures the exact plan (the
            # >= 8x8 / 64 MB mesh-allreduce gotcha).
            collapse_noop = True
    with obs_span("simulate", plan=plan.name) as sp:
        report = Simulator(
            collapsed.plan if collapsed is not None else plan,
            background_traffic=background_traffic,
            record_trace=record_trace,
            injector=injector,
            recovery=recovery,
        ).run()
        if collapsed is not None:
            report = expand_report(report, collapsed)
            registry = current_registry()
            if registry is not None:
                registry.inc(
                    "sim_agg_runs_collapsed_total",
                    report.counters.agg_runs_collapsed,
                )
                registry.inc(
                    "sim_agg_instances_expanded_total",
                    report.counters.agg_instances_expanded,
                )
        if collapse_disabled:
            report.counters.agg_collapse_disabled = 1
        if collapse_noop:
            report.counters.agg_collapse_noop = 1
            registry = current_registry()
            if registry is not None:
                registry.inc("sim_agg_collapse_noop_total")
        sp.set(
            completion_time_us=report.completion_time_us,
            tbs=report.tb_count(),
            trace_events=len(report.trace),
        )
    return report


__all__ = ["Simulator", "SimulationDeadlock", "SimulationStall", "simulate"]

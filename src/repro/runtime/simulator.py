"""Discrete-event execution of a plan over the fluid-flow fabric model.

Execution semantics (mirroring an RDMA-write, credit-based transport —
NCCL's Simple protocol):

* Every thread block executes its invocation list strictly in order.
* A **send** invocation waits for its task's data dependencies (the DAG
  predecessors, same micro-batch) and for a FIFO credit on its
  connection, then streams the chunk as a flow; the TB is busy for the
  flow's duration.  Credits let a sender run ahead of its receiver by
  ``fifo_depth`` chunks — running further ahead blocks (sync wait).
* A **recv** invocation waits for the data to have arrived and for its
  own data dependencies, then copies the chunk out of the communication
  buffer (busy at the TB's copy bandwidth, plus the reduction cost for
  ``recvReduceCopy``).  Completion of the copy completes the task
  invocation: dependents unblock and the FIFO credit is released.
* Interpreter mode charges every invocation a decode cost; kernel mode
  charges a one-time pipeline load per TB (Equation 5's ``t_Load``).

The simulator reports a :class:`~repro.runtime.metrics.SimReport` and
raises :class:`SimulationDeadlock` (with per-TB diagnostics) if progress
stops — which turns plan-construction bugs into loud failures instead of
silent hangs.
"""

from __future__ import annotations

import heapq
import itertools
from collections import defaultdict, deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..ir.task import CommType
from .flows import Flow, FlowNetwork
from .metrics import LinkStats, SimReport, TBStats, TraceEvent
from .plan import ExecMode, ExecutionPlan, Invocation, Side


class SimulationDeadlock(RuntimeError):
    """The event queue drained while thread blocks were still blocked."""


_EPS = 1e-6

# TB phases.
_FETCH = "fetch"  # about to pay control overhead for the next invocation
_READY = "ready"  # overhead paid; waiting to satisfy start conditions
_INFLIGHT = "inflight"  # streaming a flow / copying out a chunk
_DONE = "done"


class _TB:
    """Mutable execution state of one thread block."""

    __slots__ = (
        "index",
        "program",
        "pc",
        "phase",
        "blocked_on",
        "wait_start",
        "wait_kind",
        "stats",
    )

    def __init__(self, index: int, program, stats: TBStats) -> None:
        self.index = index
        self.program = program
        self.pc = 0
        self.phase = _FETCH
        self.blocked_on: Optional[Tuple[str, object]] = None
        self.wait_start: float = 0.0
        self.wait_kind: str = ""
        self.stats = stats

    def current(self) -> Optional[Invocation]:
        if self.pc < len(self.program.invocations):
            return self.program.invocations[self.pc]
        return None


class Simulator:
    """Executes one :class:`ExecutionPlan` and gathers metrics."""

    def __init__(
        self,
        plan: ExecutionPlan,
        background_traffic: Optional[List[Tuple[Tuple[str, ...], float]]] = None,
        record_trace: bool = False,
    ) -> None:
        """Args:
            plan: the execution plan to run.
            background_traffic: optional external congestors — a list of
                ``(edges, rate_cap)`` persistent flows occupying the
                given contention edges for the whole run (e.g. another
                job's traffic sharing a NIC).  Used by the
                network-contention experiments of section 4.4.
            record_trace: collect per-TB activity intervals into
                ``report.trace`` (timeline/Chrome-trace export).
        """
        plan.validate()
        self.plan = plan
        self.cluster = plan.cluster
        self.config = plan.config
        self.dag = plan.dag
        self.network = FlowNetwork(
            {e: self.cluster.edge_capacity(e) for e in self.cluster.edges},
            gamma=self.config.gamma,
        )
        self.now = 0.0
        self._heap: List[Tuple[float, int, str, object]] = []
        self._seq = itertools.count()
        for edges, cap in background_traffic or ():
            # Effectively-infinite payload: the congestor never drains.
            self.network.start_flow(
                edges=tuple(edges), nbytes=float("inf"), cap=cap, now=0.0
            )

        self.tbs = [
            _TB(
                i,
                tbp,
                TBStats(
                    rank=tbp.rank,
                    tb_index=tbp.tb_index,
                    label=tbp.label,
                    nwarps=tbp.nwarps,
                ),
            )
            for i, tbp in enumerate(plan.tb_programs)
        ]

        # Data-dependency tracking (per micro-batch; micro-batches are
        # data-independent, so dependencies never cross them).
        self._deps_left: Dict[Tuple[int, int], int] = {}
        self._completed: Set[Tuple[int, int]] = set()
        self._dep_waiters: Dict[Tuple[int, int], List[int]] = defaultdict(list)

        # Flow-progress tracking.  ``_flow_started`` marks (task, mb) whose
        # sender began streaming (a receiver may then start its overlapped
        # copy); ``_flow_done`` marks fully-arrived payloads.
        self._flow_started: Set[Tuple[int, int]] = set()
        self._flow_done: Set[Tuple[int, int]] = set()
        self._data_waiters: Dict[Tuple[int, int], int] = {}
        # In-progress receives: key -> [tb_index, start_time, copy_elapsed].
        self._recv_state: Dict[Tuple[int, int], list] = {}

        # FIFO credits, per (sender TB, destination rank): each sending TB
        # owns a private chunk FIFO towards each peer, as NCCL channels do.
        self._credits: Dict[Tuple[int, int], int] = defaultdict(
            lambda: self.config.fifo_depth
        )
        self._credit_queue: Dict[Tuple[int, int], Deque[int]] = defaultdict(deque)
        # Which credit key each in-flight (task, mb) must release.
        self._credit_owner: Dict[Tuple[int, int], Tuple[int, int]] = {}

        # Active flows: flow_id -> (flow, task_id, mb, sender tb index).
        self._flows: Dict[int, Tuple[Flow, int, int, int]] = {}
        self._flow_version: Dict[int, int] = {}

        # Completed (task, mb) invocations in completion order — lets
        # callers replay the dynamic schedule through the symbolic
        # correctness engine.
        self._completion_log: List[Tuple[int, int]] = []

        self._record_trace = record_trace
        self._trace: List[TraceEvent] = []

        # Per-logical-link activity.
        self._link_stats: Dict[str, LinkStats] = {}
        self._link_active: Dict[str, int] = defaultdict(int)
        self._link_busy_since: Dict[str, float] = {}

        self._unfinished = len(self.tbs)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------

    def _post(self, time: float, kind: str, payload: object) -> None:
        heapq.heappush(self._heap, (time, next(self._seq), kind, payload))

    def _trace_event(
        self,
        tb: "_TB",
        kind: str,
        start: float,
        end: float,
        task_id: int = -1,
        mb: int = -1,
    ) -> None:
        if self._record_trace and end > start:
            self._trace.append(
                TraceEvent(
                    tb_index=tb.index,
                    rank=tb.program.rank,
                    kind=kind,
                    start_us=start,
                    end_us=end,
                    task_id=task_id,
                    mb=mb,
                )
            )

    def run(self) -> SimReport:
        """Run to completion and return the measurement report."""
        for tb in self.tbs:
            self._advance(tb)
        while self._heap:
            time, _, kind, payload = heapq.heappop(self._heap)
            self.now = max(self.now, time)
            if kind == "tb":
                tb = self.tbs[payload]  # type: ignore[index]
                self._advance(tb)
            elif kind == "flow":
                flow_id, version = payload  # type: ignore[misc]
                self._maybe_finish_flow(flow_id, version)
            elif kind == "recv_copy":
                self._recv_copy_elapsed(payload)  # type: ignore[arg-type]
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")
        if self._unfinished:
            raise SimulationDeadlock(self._deadlock_report())
        return self._report()

    # ------------------------------------------------------------------
    # TB state machine
    # ------------------------------------------------------------------

    def _advance(self, tb: _TB) -> None:
        """Drive a TB forward as far as it can go at the current time."""
        while True:
            if tb.phase == _DONE or tb.phase == _INFLIGHT:
                return
            inv = tb.current()
            if inv is None:
                tb.phase = _DONE
                tb.stats.release_time = self.now
                self._unfinished -= 1
                return
            if tb.phase == _FETCH:
                overhead = self._control_overhead(tb)
                tb.phase = _READY
                if overhead > 0.0:
                    tb.stats.overhead += overhead
                    self._trace_event(tb, "overhead", self.now, self.now + overhead)
                    self._post(self.now + overhead, "tb", tb.index)
                    return
                continue
            # _READY: try to start the invocation.
            if inv.side is Side.SEND:
                if not self._try_start_send(tb, inv):
                    return
            else:
                if not self._try_start_recv(tb, inv):
                    return

    def _control_overhead(self, tb: _TB) -> float:
        """Per-invocation decode cost, or one-time kernel pipeline load."""
        if self.plan.mode is ExecMode.INTERPRETER:
            return self.config.interp_cost_us
        if tb.pc == 0:
            return self.config.kernel_load_us
        return 0.0

    def _block(self, tb: _TB, kind: str, key: object, wait_kind: str) -> None:
        tb.blocked_on = (kind, key)
        tb.wait_start = self.now
        tb.wait_kind = wait_kind

    def _unblock(self, tb: _TB) -> None:
        if tb.blocked_on is None:
            return
        waited = self.now - tb.wait_start
        if waited > 0:
            if tb.wait_kind == "data":
                tb.stats.data_wait += waited
            else:
                tb.stats.sync_wait += waited
            self._trace_event(
                tb, f"wait:{tb.wait_kind}", tb.wait_start, self.now
            )
        tb.blocked_on = None
        tb.wait_kind = ""

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------

    def _deps_satisfied(self, task_id: int, mb: int) -> bool:
        key = (task_id, mb)
        left = self._deps_left.get(key)
        if left is None:
            preds = self.dag.preds[task_id]
            left = sum(1 for p in preds if (p, mb) not in self._completed)
            self._deps_left[key] = left
        return left == 0

    def _try_start_send(self, tb: _TB, inv: Invocation) -> bool:
        task = self.dag.task(inv.task_id)
        key = (inv.task_id, inv.mb)
        if not self._deps_satisfied(inv.task_id, inv.mb):
            if tb.blocked_on is None:
                self._block(tb, "deps", key, "data")
                self._dep_waiters[key].append(tb.index)
            return False
        credit_key = (tb.index, task.dst)
        if self._credits[credit_key] <= 0:
            if tb.blocked_on is None or tb.blocked_on[0] != "credit":
                # May transition from a deps wait into a credit wait.
                self._unblock(tb)
                self._block(tb, "credit", credit_key, "sync")
                self._credit_queue[credit_key].append(tb.index)
            return False
        self._unblock(tb)
        self._credits[credit_key] -= 1
        self._credit_owner[(inv.task_id, inv.mb)] = credit_key
        self._start_flow(tb, inv, task)
        return True

    def _start_flow(self, tb: _TB, inv: Invocation, task) -> None:
        route = self.cluster.path(task.src, task.dst)
        protocol = self.config.protocol
        cap = (
            self.cluster.profile.tb_copy_bandwidth(tb.program.nwarps)
            * protocol.bandwidth_efficiency
        )
        flow, changed = self.network.start_flow(
            edges=route.edges,
            nbytes=self.plan.chunk_bytes,
            cap=cap,
            now=self.now + route.latency_us * protocol.latency_factor,
        )
        self._flows[flow.flow_id] = (flow, inv.task_id, inv.mb, tb.index)
        self._flow_version[flow.flow_id] = 0
        tb.phase = _INFLIGHT
        self._link_enter(task.link)
        self._post_flow_eta(flow)
        for other in changed:
            if other.flow_id != flow.flow_id:
                self._post_flow_eta(other)
        # The receiver may begin its overlapped copy as soon as the stream
        # is in flight (recvCopySend semantics).
        key = (inv.task_id, inv.mb)
        self._flow_started.add(key)
        waiter = self._data_waiters.pop(key, None)
        if waiter is not None:
            self._advance(self.tbs[waiter])

    def _post_flow_eta(self, flow: Flow) -> None:
        self._flow_version[flow.flow_id] = (
            self._flow_version.get(flow.flow_id, 0) + 1
        )
        eta = flow.eta()
        if eta != float("inf"):
            self._post(
                max(eta, self.now),
                "flow",
                (flow.flow_id, self._flow_version[flow.flow_id]),
            )

    def _maybe_finish_flow(self, flow_id: int, version: int) -> None:
        entry = self._flows.get(flow_id)
        if entry is None or self._flow_version.get(flow_id) != version:
            return
        flow, task_id, mb, sender_index = entry
        flow.advance_to(self.now)
        if flow.remaining > _EPS:
            self._post_flow_eta(flow)
            return
        del self._flows[flow_id]
        del self._flow_version[flow_id]
        changed = self.network.finish_flow(flow, self.now)
        for other in changed:
            self._post_flow_eta(other)

        task = self.dag.task(task_id)
        self._link_exit(task.link, flow)

        sender = self.tbs[sender_index]
        send_start = flow.start_time - self._route_latency(task)
        sender.stats.busy += self.now - send_start
        self._trace_event(sender, "send", send_start, self.now, task_id, mb)
        sender.stats.invocations += 1
        sender.phase = _FETCH
        sender.pc += 1
        self._advance(sender)

        key = (task_id, mb)
        self._flow_done.add(key)
        state = self._recv_state.get(key)
        if state is not None and state[2]:
            # The receiver's copy clock already elapsed: the recv completes
            # the moment the last byte lands.
            self._finish_recv(key)

    def _route_latency(self, task) -> float:
        return (
            self.cluster.path(task.src, task.dst).latency_us
            * self.config.protocol.latency_factor
        )

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------

    def _try_start_recv(self, tb: _TB, inv: Invocation) -> bool:
        key = (inv.task_id, inv.mb)
        if key not in self._flow_started:
            if tb.blocked_on is None:
                self._block(tb, "data", key, "sync")
                self._data_waiters[key] = tb.index
            return False
        if not self._deps_satisfied(inv.task_id, inv.mb):
            if tb.blocked_on is None or tb.blocked_on[0] != "deps":
                self._unblock(tb)
                self._block(tb, "deps", key, "data")
                self._dep_waiters[key].append(tb.index)
            return False
        self._unblock(tb)
        task = self.dag.task(inv.task_id)
        copy_bw = self.cluster.profile.tb_copy_bandwidth(tb.program.nwarps)
        duration = self.plan.chunk_bytes / copy_bw
        if task.op is CommType.RRC:
            duration += (
                self.plan.chunk_bytes * self.cluster.profile.reduce_cost_per_byte_us
            )
        tb.phase = _INFLIGHT
        self._recv_state[key] = [tb.index, self.now, False]
        self._post(self.now + duration, "recv_copy", key)
        return True

    def _recv_copy_elapsed(self, key: Tuple[int, int]) -> None:
        """The receiver's copy clock ran out; finish if the data is in."""
        state = self._recv_state.get(key)
        if state is None:  # pragma: no cover - defensive
            return
        if key in self._flow_done:
            self._finish_recv(key)
        else:
            state[2] = True  # now gated on flow completion only

    def _finish_recv(self, key: Tuple[int, int]) -> None:
        task_id, mb = key
        tb_index, start_time, _ = self._recv_state.pop(key)
        tb = self.tbs[tb_index]
        tb.stats.busy += self.now - start_time
        self._trace_event(tb, "recv", start_time, self.now, task_id, mb)
        tb.stats.invocations += 1
        tb.phase = _FETCH
        tb.pc += 1

        # Task invocation complete: release the FIFO credit and satisfy
        # dependents.
        credit_key = self._credit_owner.pop(key)
        self._credits[credit_key] += 1
        queue = self._credit_queue[credit_key]
        if queue and self._credits[credit_key] > 0:
            self._advance(self.tbs[queue.popleft()])

        self._completed.add(key)
        self._completion_log.append(key)
        for succ in self.dag.succs[task_id]:
            succ_key = (succ, mb)
            left = self._deps_left.get(succ_key)
            if left is not None and left > 0:
                self._deps_left[succ_key] = left - 1
                if left - 1 == 0:
                    for waiter in self._dep_waiters.pop(succ_key, ()):
                        self._advance(self.tbs[waiter])
        self._advance(tb)

    # ------------------------------------------------------------------
    # Link activity accounting
    # ------------------------------------------------------------------

    def _link_enter(self, link: str) -> None:
        stats = self._link_stats.get(link)
        if stats is None:
            stats = self._link_stats[link] = LinkStats(link=link)
        stats.flows_carried += 1
        if self._link_active[link] == 0:
            self._link_busy_since[link] = self.now
        self._link_active[link] += 1

    def _link_exit(self, link: str, flow: Flow) -> None:
        stats = self._link_stats[link]
        stats.bytes_moved += flow.nbytes
        self._link_active[link] -= 1
        if self._link_active[link] == 0:
            stats.busy_time += self.now - self._link_busy_since.pop(link)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _report(self) -> SimReport:
        # Completion is when the last TB retires; stale (version-
        # invalidated) flow events may leave self.now slightly past that.
        completion = max(
            (tb.stats.release_time for tb in self.tbs), default=self.now
        )
        return SimReport(
            plan_name=self.plan.name,
            mode=self.plan.mode,
            completion_time_us=completion,
            total_bytes=self.plan.total_bytes,
            tb_stats=[tb.stats for tb in self.tbs],
            link_stats=self._link_stats,
            completion_order=self._completion_log,
            trace=self._trace,
        )

    def _deadlock_report(self) -> str:
        lines = [
            f"deadlock at t={self.now:.1f}us: "
            f"{self._unfinished} TB(s) never finished"
        ]
        for tb in self.tbs:
            if tb.phase == _DONE:
                continue
            inv = tb.current()
            lines.append(
                f"  rank {tb.program.rank} TB{tb.program.tb_index} "
                f"({tb.program.label}) pc={tb.pc}/{len(tb.program.invocations)} "
                f"phase={tb.phase} blocked_on={tb.blocked_on} at {inv}"
            )
            if len(lines) > 20:
                lines.append("  ...")
                break
        return "\n".join(lines)


def simulate(
    plan: ExecutionPlan,
    background_traffic: Optional[List[Tuple[Tuple[str, ...], float]]] = None,
    record_trace: bool = False,
) -> SimReport:
    """Convenience wrapper: build a simulator, run it, return the report."""
    return Simulator(
        plan,
        background_traffic=background_traffic,
        record_trace=record_trace,
    ).run()


__all__ = ["Simulator", "SimulationDeadlock", "simulate"]

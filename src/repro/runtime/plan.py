"""Execution plans: what each thread block runs, in what order.

A backend (ResCCL, NCCL-like, MSCCL-like) turns an algorithm into an
:class:`ExecutionPlan`: a set of per-rank thread-block programs, each an
ordered list of primitive :class:`Invocation`\\ s — one side of one
transmission task for one micro-batch.  The plan also fixes the runtime
mode:

* ``kernel`` — ResCCL's generated lightweight kernels: a one-time
  pipeline-load cost per TB, then zero per-invocation control overhead;
* ``interpreter`` — the MSCCL-style runtime interpreter: every primitive
  invocation pays a fixed decode cost (the Figure 3 overhead).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..ir.dag import DependencyDAG
from ..lang.builder import AlgoProgram
from ..topology import Cluster

MB = float(1 << 20)


class Side(enum.Enum):
    """Which half of a transmission task an invocation executes."""

    SEND = "send"
    RECV = "recv"


class ExecMode(enum.Enum):
    """Runtime control-plane style."""

    KERNEL = "kernel"
    INTERPRETER = "interpreter"


class Protocol(enum.Enum):
    """Transport protocol (Table 2): the latency/bandwidth trade-off.

    * ``SIMPLE`` — rendezvous transport, full bandwidth, full startup
      latency (the paper's evaluation protocol);
    * ``LL`` — 8-byte flag-interleaved low-latency protocol: half the
      startup latency, but flags consume half the wire (50% efficiency);
    * ``LL128`` — 128-byte-line variant: low latency with 120/128 of the
      wire carrying payload.
    """

    SIMPLE = "Simple"
    LL = "LL"
    LL128 = "LL128"

    @property
    def latency_factor(self) -> float:
        return 1.0 if self is Protocol.SIMPLE else 0.5

    @property
    def bandwidth_efficiency(self) -> float:
        if self is Protocol.SIMPLE:
            return 1.0
        if self is Protocol.LL:
            return 0.5
        return 120.0 / 128.0


@dataclass(frozen=True)
class Invocation:
    """One primitive execution: (task, side, micro-batch)."""

    task_id: int
    side: Side
    mb: int


@dataclass
class TBProgram:
    """An ordered primitive program bound to one thread block.

    Attributes:
        rank: the GPU the TB runs on.
        tb_index: TB slot within the rank (dense, for reporting).
        invocations: the program, executed strictly in order.
        nwarps: warp count — sets the TB's copy bandwidth.
        label: human-readable provenance (connection/stage/pipeline).
    """

    rank: int
    tb_index: int
    invocations: List[Invocation]
    nwarps: int = 4
    label: str = ""

    def __len__(self) -> int:
        return len(self.invocations)


@dataclass
class SimConfig:
    """Runtime constants of the simulated backend execution.

    Attributes:
        gamma: Equation 1 link-contention penalty coefficient.
        fifo_depth: connection FIFO depth in chunks — how far a sender
            may run ahead of its receiver before blocking on credits.
        interp_cost_us: per-invocation decode cost in interpreter mode
            (continuous loading/parsing of the algorithm, section 2.2).
        kernel_load_us: one-time pipeline-load cost ``t_Load`` per TB in
            kernel mode (Equation 5).
        protocol: transport protocol; the paper evaluates with Simple
            (highest sustained bandwidth).
        watchdog_window_us: progress-watchdog check interval.  A run with
            no byte progress and no TB phase transition across a full
            window — and nothing scheduled that could produce either —
            is declared stalled.  Set to 0 to disable the watchdog and
            fall back to the drained-queue deadlock check only.
        fault_trace_cap: ring-buffer bound on the unconditionally
            recorded fault/detection/recovery trace events.  Long chaos
            runs evict oldest-first past the cap (surfaced as
            ``SimReport.trace_dropped``); 0 means unbounded.
        incremental_rates: use the incremental dirty-edge rate solver
            (default).  ``False`` selects the brute-force reference
            allocator, which recomputes every occupied edge and re-rates
            every live flow per pass; both modes produce bit-identical
            reports (see ``docs/performance.md``).
        rate_rel_epsilon: relative rate-change threshold below which a
            re-rated flow keeps its old rate (suppressing the completion
            event repost).  The default 0.0 keeps only the absolute
            1e-12 floor and is bit-exact; non-zero values are an opt-in
            approximation for very large fabrics.
    """

    gamma: float = 0.03
    fifo_depth: int = 2
    interp_cost_us: float = 10.0
    kernel_load_us: float = 5.0
    protocol: Protocol = Protocol.SIMPLE
    watchdog_window_us: float = 2000.0
    fault_trace_cap: int = 4096
    incremental_rates: bool = True
    rate_rel_epsilon: float = 0.0


@dataclass
class ExecutionPlan:
    """Everything the simulator needs to execute one collective call.

    ``chunks_per_microbatch`` is the size of the plan's chunk-id space —
    normally the program's chunk count, but backends that slice data
    across parallel channel instances (NCCL) extend it to
    ``nchannels * nchunks``.
    """

    name: str
    cluster: Cluster
    program: AlgoProgram
    dag: DependencyDAG
    n_microbatches: int
    chunk_bytes: float
    tb_programs: List[TBProgram]
    mode: ExecMode = ExecMode.KERNEL
    config: SimConfig = field(default_factory=SimConfig)
    chunks_per_microbatch: int = 0

    def __post_init__(self) -> None:
        if self.chunks_per_microbatch <= 0:
            self.chunks_per_microbatch = self.program.nchunks

    @property
    def total_bytes(self) -> float:
        """Per-rank buffer size this plan synchronizes."""
        return self.n_microbatches * self.chunks_per_microbatch * self.chunk_bytes

    @property
    def total_invocations(self) -> int:
        return sum(len(tb) for tb in self.tb_programs)

    def max_tbs_per_rank(self) -> int:
        """Peak TB footprint on any one GPU (the SM-overhead metric)."""
        per_rank: Dict[int, int] = {}
        for tb in self.tb_programs:
            per_rank[tb.rank] = per_rank.get(tb.rank, 0) + 1
        return max(per_rank.values(), default=0)

    def validate(self) -> None:
        """Check plan completeness and side placement.

        Every (task, micro-batch) must have exactly one SEND invocation on
        the task's source rank and one RECV invocation on its destination
        rank.
        """
        expected = len(self.dag) * self.n_microbatches
        seen: Dict[Tuple[int, int, Side], int] = {}
        for tb in self.tb_programs:
            for inv in tb.invocations:
                key = (inv.task_id, inv.mb, inv.side)
                if key in seen:
                    raise ValueError(
                        f"plan {self.name!r}: duplicate invocation {key}"
                    )
                seen[key] = tb.rank
                task = self.dag.task(inv.task_id)
                owner = task.src if inv.side is Side.SEND else task.dst
                if tb.rank != owner:
                    raise ValueError(
                        f"plan {self.name!r}: {inv.side.value} of task "
                        f"{inv.task_id} placed on rank {tb.rank}, expected "
                        f"rank {owner}"
                    )
                if not 0 <= inv.mb < self.n_microbatches:
                    raise ValueError(
                        f"plan {self.name!r}: micro-batch {inv.mb} out of "
                        f"range [0, {self.n_microbatches})"
                    )
        sends = sum(1 for key in seen if key[2] is Side.SEND)
        recvs = sum(1 for key in seen if key[2] is Side.RECV)
        if sends != expected or recvs != expected:
            raise ValueError(
                f"plan {self.name!r}: expected {expected} send and recv "
                f"invocations, found {sends} sends / {recvs} recvs"
            )


def plan_microbatches(
    buffer_bytes: float,
    nchunks: int,
    target_chunk_bytes: float = MB,
    max_microbatches: int = 64,
) -> Tuple[int, float]:
    """Split a buffer into micro-batches of ``nchunks`` chunks each.

    The paper fixes the transfer chunk at 1 MB (Table 2); one micro-batch
    moves ``nchunks`` chunks, so a buffer of ``B`` bytes yields roughly
    ``B / (nchunks * 1MB)`` micro-batches.  The count is clamped to
    ``max_microbatches`` (scaling the chunk up instead, as real backends
    do for very large buffers) and to a minimum of one (scaling the chunk
    down for small buffers).

    Returns ``(n_microbatches, chunk_bytes)``.
    """
    if buffer_bytes <= 0:
        raise ValueError(f"buffer must be positive, got {buffer_bytes}")
    if nchunks < 1:
        raise ValueError(f"need at least one chunk, got {nchunks}")
    raw = buffer_bytes / (nchunks * target_chunk_bytes)
    n_mb = max(1, min(max_microbatches, int(round(raw))))
    chunk_bytes = buffer_bytes / (nchunks * n_mb)
    return n_mb, chunk_bytes


__all__ = [
    "MB",
    "Side",
    "ExecMode",
    "Protocol",
    "Invocation",
    "TBProgram",
    "SimConfig",
    "ExecutionPlan",
    "plan_microbatches",
]

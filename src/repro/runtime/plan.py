"""Execution plans: what each thread block runs, in what order.

A backend (ResCCL, NCCL-like, MSCCL-like) turns an algorithm into an
:class:`ExecutionPlan`: a set of per-rank thread-block programs, each an
ordered list of primitive :class:`Invocation`\\ s — one side of one
transmission task for one micro-batch.  The plan also fixes the runtime
mode:

* ``kernel`` — ResCCL's generated lightweight kernels: a one-time
  pipeline-load cost per TB, then zero per-invocation control overhead;
* ``interpreter`` — the MSCCL-style runtime interpreter: every primitive
  invocation pays a fixed decode cost (the Figure 3 overhead).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from ..ir.dag import DependencyDAG
from ..lang.builder import AlgoProgram
from ..topology import Cluster
from .flows import VECTORIZE_MIN_FLOWS

MB = float(1 << 20)


class Side(enum.Enum):
    """Which half of a transmission task an invocation executes."""

    SEND = "send"
    RECV = "recv"


class ExecMode(enum.Enum):
    """Runtime control-plane style."""

    KERNEL = "kernel"
    INTERPRETER = "interpreter"


class Protocol(enum.Enum):
    """Transport protocol (Table 2): the latency/bandwidth trade-off.

    * ``SIMPLE`` — rendezvous transport, full bandwidth, full startup
      latency (the paper's evaluation protocol);
    * ``LL`` — 8-byte flag-interleaved low-latency protocol: half the
      startup latency, but flags consume half the wire (50% efficiency);
    * ``LL128`` — 128-byte-line variant: low latency with 120/128 of the
      wire carrying payload.
    """

    SIMPLE = "Simple"
    LL = "LL"
    LL128 = "LL128"

    @property
    def latency_factor(self) -> float:
        return 1.0 if self is Protocol.SIMPLE else 0.5

    @property
    def bandwidth_efficiency(self) -> float:
        if self is Protocol.SIMPLE:
            return 1.0
        if self is Protocol.LL:
            return 0.5
        return 120.0 / 128.0


@dataclass(frozen=True)
class Invocation:
    """One primitive execution: (task, side, micro-batch)."""

    task_id: int
    side: Side
    mb: int


@dataclass
class TBProgram:
    """An ordered primitive program bound to one thread block.

    Attributes:
        rank: the GPU the TB runs on.
        tb_index: TB slot within the rank (dense, for reporting).
        invocations: the program, executed strictly in order.
        nwarps: warp count — sets the TB's copy bandwidth.
        label: human-readable provenance (connection/stage/pipeline).
    """

    rank: int
    tb_index: int
    invocations: List[Invocation]
    nwarps: int = 4
    label: str = ""

    def __len__(self) -> int:
        return len(self.invocations)


@dataclass
class SimConfig:
    """Runtime constants of the simulated backend execution.

    Attributes:
        gamma: Equation 1 link-contention penalty coefficient.
        fifo_depth: connection FIFO depth in chunks — how far a sender
            may run ahead of its receiver before blocking on credits.
        interp_cost_us: per-invocation decode cost in interpreter mode
            (continuous loading/parsing of the algorithm, section 2.2).
        kernel_load_us: one-time pipeline-load cost ``t_Load`` per TB in
            kernel mode (Equation 5).
        protocol: transport protocol; the paper evaluates with Simple
            (highest sustained bandwidth).
        watchdog_window_us: progress-watchdog check interval.  A run with
            no byte progress and no TB phase transition across a full
            window — and nothing scheduled that could produce either —
            is declared stalled.  Set to 0 to disable the watchdog and
            fall back to the drained-queue deadlock check only.
        fault_trace_cap: ring-buffer bound on the unconditionally
            recorded fault/detection/recovery trace events.  Long chaos
            runs evict oldest-first past the cap (surfaced as
            ``SimReport.trace_dropped``); 0 means unbounded.
        incremental_rates: use the incremental dirty-edge rate solver
            (default).  ``False`` selects the brute-force reference
            allocator, which recomputes every occupied edge and re-rates
            every live flow per pass; both modes produce bit-identical
            reports (see ``docs/performance.md``).
        rate_rel_epsilon: relative rate-change threshold below which a
            re-rated flow keeps its old rate (suppressing the completion
            event repost).  The default 0.0 keeps only the absolute
            1e-12 floor and is bit-exact; non-zero values are an opt-in
            approximation for very large fabrics (the ``fast`` fidelity
            preset sets 1e-3).
        vectorized_rates: allow the numpy vectorized re-rating path in
            the flow network.  Engaged per reallocation pass when the
            affected-flow count reaches ``vectorize_min_flows``; always
            bit-identical to the scalar path, which remains the
            small-N and reference mode.
        vectorize_min_flows: affected-flow threshold for the vectorized
            re-rater.
        event_queue: event-queue backend — ``auto`` (bucket calendar
            queue for large plans, binary heap for small ones),
            ``heap``, or ``bucket``.  Backends pop in the identical
            total order, so the choice only affects wall time.
        event_bucket_width_us: time width of one calendar-queue bucket.
        lazy_invalidation: cancel a superseded flow-completion event in
            place in the queue (the default), so it is skipped without a
            dispatch.  ``False`` restores the pre-bucket discipline —
            stale events are dispatched and recognised by a version
            check — which the scale benchmark uses as its baseline.
            Both disciplines are bit-identical.
        aggregate_microbatches: share one representative instance's
            validation and schedule metadata (route, send cap, receive
            copy duration) across its micro-batch siblings instead of
            recomputing per instance.  Bit-identical by construction;
            ``False`` selects the fully expanded per-instance
            bookkeeping the golden suite compares against.
        collapse_microbatches: *fast-fidelity* temporal aggregation —
            collapse each task's micro-batch run into one representative
            instance carrying the whole payload, then fan the report
            back out.  Approximate (see ``docs/performance.md``) and
            automatically disabled under fault injection, recovery
            policies, or background traffic.
    """

    gamma: float = 0.03
    fifo_depth: int = 2
    interp_cost_us: float = 10.0
    kernel_load_us: float = 5.0
    protocol: Protocol = Protocol.SIMPLE
    watchdog_window_us: float = 2000.0
    fault_trace_cap: int = 4096
    incremental_rates: bool = True
    rate_rel_epsilon: float = 0.0
    vectorized_rates: bool = True
    vectorize_min_flows: int = VECTORIZE_MIN_FLOWS
    event_queue: str = "auto"
    event_bucket_width_us: float = 64.0
    lazy_invalidation: bool = True
    aggregate_microbatches: bool = True
    collapse_microbatches: bool = False

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {self.gamma}")
        if not isinstance(self.fifo_depth, int) or self.fifo_depth < 1:
            raise ValueError(
                f"fifo_depth must be a positive integer, got {self.fifo_depth!r}"
            )
        for name in ("interp_cost_us", "kernel_load_us", "watchdog_window_us",
                     "rate_rel_epsilon"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")
        if self.fault_trace_cap < 0:
            raise ValueError(
                f"fault_trace_cap must be non-negative, got {self.fault_trace_cap}"
            )
        if self.vectorize_min_flows < 0:
            raise ValueError(
                "vectorize_min_flows must be non-negative, "
                f"got {self.vectorize_min_flows}"
            )
        if self.event_queue not in ("auto", "heap", "bucket"):
            raise ValueError(
                f"event_queue must be 'auto', 'heap', or 'bucket', "
                f"got {self.event_queue!r}"
            )
        if self.event_bucket_width_us <= 0:
            raise ValueError(
                "event_bucket_width_us must be positive, "
                f"got {self.event_bucket_width_us}"
            )

    def with_fidelity(self, preset: str) -> "SimConfig":
        """Return a copy configured for a named fidelity preset.

        * ``exact`` — the bit-identical golden reference: no approximate
          re-rating, no temporal micro-batch collapse.
        * ``fast`` — the documented approximate mode for very large
          fabrics: ``rate_rel_epsilon=1e-3`` suppresses completion-event
          reposts for sub-0.1% rate changes and
          ``collapse_microbatches`` folds each task's micro-batch run
          into one representative transfer.  The completion-time error
          bound is asserted by ``benchmarks/test_sim_scale.py``.
        """
        if preset == "exact":
            return replace(
                self, rate_rel_epsilon=0.0, collapse_microbatches=False
            )
        if preset == "fast":
            return replace(
                self, rate_rel_epsilon=1e-3, collapse_microbatches=True
            )
        raise ValueError(
            f"unknown fidelity preset {preset!r} (expected 'exact' or 'fast')"
        )


@dataclass
class ExecutionPlan:
    """Everything the simulator needs to execute one collective call.

    ``chunks_per_microbatch`` is the size of the plan's chunk-id space —
    normally the program's chunk count, but backends that slice data
    across parallel channel instances (NCCL) extend it to
    ``nchannels * nchunks``.
    """

    name: str
    cluster: Cluster
    program: AlgoProgram
    dag: DependencyDAG
    n_microbatches: int
    chunk_bytes: float
    tb_programs: List[TBProgram]
    mode: ExecMode = ExecMode.KERNEL
    config: SimConfig = field(default_factory=SimConfig)
    chunks_per_microbatch: int = 0

    def __post_init__(self) -> None:
        if self.chunks_per_microbatch <= 0:
            self.chunks_per_microbatch = self.program.nchunks

    @property
    def total_bytes(self) -> float:
        """Per-rank buffer size this plan synchronizes."""
        return self.n_microbatches * self.chunks_per_microbatch * self.chunk_bytes

    @property
    def total_invocations(self) -> int:
        return sum(len(tb) for tb in self.tb_programs)

    def max_tbs_per_rank(self) -> int:
        """Peak TB footprint on any one GPU (the SM-overhead metric)."""
        per_rank: Dict[int, int] = {}
        for tb in self.tb_programs:
            per_rank[tb.rank] = per_rank.get(tb.rank, 0) + 1
        return max(per_rank.values(), default=0)

    def validate(self) -> None:
        """Check plan completeness and side placement.

        Every (task, micro-batch) must have exactly one SEND invocation on
        the task's source rank and one RECV invocation on its destination
        rank.

        Plans whose thread-block programs interleave micro-batches as
        uniform consecutive runs — the shape the kernel generator emits —
        are validated one representative run at a time
        (:meth:`_validate_microbatch_runs`), dropping the per-instance
        bookkeeping from the hot path at large scale.  Any plan that does
        not match the pattern (including every invalid plan) falls back
        to the exhaustive per-instance scan below, so the accepted set
        and the raised diagnostics are unchanged.
        """
        if self.config.aggregate_microbatches and self._validate_microbatch_runs():
            return
        expected = len(self.dag) * self.n_microbatches
        seen: Dict[Tuple[int, int, Side], int] = {}
        for tb in self.tb_programs:
            for inv in tb.invocations:
                key = (inv.task_id, inv.mb, inv.side)
                if key in seen:
                    raise ValueError(
                        f"plan {self.name!r}: duplicate invocation {key}"
                    )
                seen[key] = tb.rank
                task = self.dag.task(inv.task_id)
                owner = task.src if inv.side is Side.SEND else task.dst
                if tb.rank != owner:
                    raise ValueError(
                        f"plan {self.name!r}: {inv.side.value} of task "
                        f"{inv.task_id} placed on rank {tb.rank}, expected "
                        f"rank {owner}"
                    )
                if not 0 <= inv.mb < self.n_microbatches:
                    raise ValueError(
                        f"plan {self.name!r}: micro-batch {inv.mb} out of "
                        f"range [0, {self.n_microbatches})"
                    )
        sends = sum(1 for key in seen if key[2] is Side.SEND)
        recvs = sum(1 for key in seen if key[2] is Side.RECV)
        if sends != expected or recvs != expected:
            raise ValueError(
                f"plan {self.name!r}: expected {expected} send and recv "
                f"invocations, found {sends} sends / {recvs} recvs"
            )

    def _validate_microbatch_runs(self) -> bool:
        """Run-at-a-time validation; ``True`` iff the plan is provably valid.

        Succeeds only when every TB program is a sequence of full
        micro-batch runs ``(task, side, 0..M-1)``; each run is then
        checked once (uniqueness, placement) instead of per instance.
        Returns ``False`` — never raises — on any pattern mismatch or
        violation, deferring to the exhaustive scan for canonical
        errors.
        """
        n_mb = self.n_microbatches
        expected_mbs = list(range(n_mb))
        seen: Dict[Tuple[int, Side], None] = {}
        for tb in self.tb_programs:
            invs = tb.invocations
            if len(invs) % n_mb:
                return False
            for i in range(0, len(invs), n_mb):
                first = invs[i]
                if first.mb != 0:
                    return False
                run = invs[i : i + n_mb]
                if n_mb > 1:
                    task_id, side = first.task_id, first.side
                    if [inv.mb for inv in run] != expected_mbs:
                        return False
                    for inv in run[1:]:
                        if inv.task_id != task_id or inv.side is not side:
                            return False
                key = (first.task_id, first.side)
                if key in seen:
                    return False
                seen[key] = None
                task = self.dag.task(first.task_id)
                owner = task.src if first.side is Side.SEND else task.dst
                if tb.rank != owner:
                    return False
        sends = sum(1 for key in seen if key[1] is Side.SEND)
        return sends == len(self.dag) and len(seen) == 2 * len(self.dag)


def plan_microbatches(
    buffer_bytes: float,
    nchunks: int,
    target_chunk_bytes: float = MB,
    max_microbatches: int = 64,
) -> Tuple[int, float]:
    """Split a buffer into micro-batches of ``nchunks`` chunks each.

    The paper fixes the transfer chunk at 1 MB (Table 2); one micro-batch
    moves ``nchunks`` chunks, so a buffer of ``B`` bytes yields roughly
    ``B / (nchunks * 1MB)`` micro-batches.  The count is clamped to
    ``max_microbatches`` (scaling the chunk up instead, as real backends
    do for very large buffers) and to a minimum of one (scaling the chunk
    down for small buffers).

    Returns ``(n_microbatches, chunk_bytes)``.
    """
    if buffer_bytes <= 0:
        raise ValueError(f"buffer must be positive, got {buffer_bytes}")
    if nchunks < 1:
        raise ValueError(f"need at least one chunk, got {nchunks}")
    raw = buffer_bytes / (nchunks * target_chunk_bytes)
    n_mb = max(1, min(max_microbatches, int(round(raw))))
    chunk_bytes = buffer_bytes / (nchunks * n_mb)
    return n_mb, chunk_bytes


__all__ = [
    "MB",
    "Side",
    "ExecMode",
    "Protocol",
    "Invocation",
    "TBProgram",
    "SimConfig",
    "ExecutionPlan",
    "plan_microbatches",
]

"""Event queues for the discrete-event simulator.

Two interchangeable backends behind one interface, both popping events
in exactly the same total order — ascending ``(time, seq)``, with ``seq``
a unique monotone sequence number — so the simulator's event stream (and
therefore every report) is bit-identical regardless of backend:

* :class:`HeapEventQueue` — the classic single binary heap.  Optimal for
  small runs; every push/pop pays ``O(log n)`` on the whole queue.
* :class:`BucketEventQueue` — a calendar queue: pending events live in
  fixed-width time buckets (a sparse dict keyed by ``floor(time/width)``
  plus a small heap of non-empty bucket keys).  Posting into a future
  bucket is an O(1) list append; a bucket is sorted once (C timsort)
  when the clock reaches it.  Posts that land in the *active* bucket go
  to a small "near" heap consulted alongside the sorted run, so
  intra-bucket arrivals cannot be reordered.  Million-event runs stop
  paying a 20-level heap sift per ETA repost.

Both backends support **lazy invalidation**: :meth:`~EventQueue.cancel`
marks an entry dead in place, and dead entries are skipped (and counted)
during ``pop`` without dispatching.  The simulator uses this to retire
superseded flow-ETA events the moment a re-rate posts a fresh one,
instead of paying a full dispatch + version check per stale event.

Entries are small mutable lists ``[time, seq, kind, payload, alive]``.
Because ``seq`` is unique, ordering comparisons never reach ``kind`` —
payloads are never compared.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from typing import List, Optional

# Entry field indices.
_TIME = 0
_SEQ = 1
_ALIVE = 4

#: ``event_queue="auto"`` selects the bucket backend at or above this
#: many plan invocations (a proxy for expected event volume).  The
#: binary heap's C-level sift beats the bucket queue's Python-level
#: bookkeeping until queues get very deep, so the bar is high.
AUTO_BUCKET_MIN_INVOCATIONS = 262144


class EventQueue:
    """Common interface; concrete backends override the four methods.

    The queue owns two occupancy gauges surfaced through
    :class:`~repro.runtime.metrics.SimCounters`:

    * ``depth_max`` — high-water mark of pending entries (dead included);
    * ``bucket_occupancy_max`` — largest bucket activated (bucket
      backend only; 0 for the heap backend);
    * ``refills`` — bucket activations (bucket backend only).
    """

    def __init__(self) -> None:
        self.depth = 0
        self.depth_max = 0
        self.bucket_occupancy_max = 0
        self.refills = 0
        self.cancelled_skipped = 0

    def post(self, time: float, seq: int, kind: str, payload: object) -> list:
        raise NotImplementedError

    def cancel(self, entry: list) -> None:
        """Mark a pending entry dead; it will be skipped at pop time."""
        entry[_ALIVE] = False

    def pop(self) -> Optional[list]:
        raise NotImplementedError

    def peek(self) -> Optional[list]:
        """Next live entry without consuming it (dead entries are
        discarded and counted, exactly as :meth:`pop` would)."""
        raise NotImplementedError

    def __len__(self) -> int:
        return self.depth


class HeapEventQueue(EventQueue):
    """Single binary heap of entry lists (the pre-bucket discipline)."""

    def __init__(self) -> None:
        super().__init__()
        self._heap: List[list] = []

    def post(self, time: float, seq: int, kind: str, payload: object) -> list:
        entry = [time, seq, kind, payload, True]
        _heappush(self._heap, entry)
        depth = self.depth + 1
        self.depth = depth
        if depth > self.depth_max:
            self.depth_max = depth
        return entry

    def pop(self) -> Optional[list]:
        heap = self._heap
        while heap:
            entry = _heappop(heap)
            self.depth -= 1
            if entry[_ALIVE]:
                return entry
            self.cancelled_skipped += 1
        return None

    def peek(self) -> Optional[list]:
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[_ALIVE]:
                return entry
            _heappop(heap)
            self.depth -= 1
            self.cancelled_skipped += 1
        return None


class BucketEventQueue(EventQueue):
    """Calendar queue: sparse fixed-width time buckets, sorted on demand.

    Invariant: every pending entry lives in exactly one of

    * ``_run`` — the active bucket, sorted ascending, consumed via
      ``_run_pos``;
    * ``_near`` — a heap of entries that arrived for the active (or an
      already-passed) bucket after it was activated;
    * ``_buckets[key]`` — an unsorted list for a future bucket ``key``.

    Pop order is globally ascending ``(time, seq)``: future buckets are
    activated in key order (via a lazily deduplicated key heap), each is
    sorted once on activation, and the near heap is merged entry-wise
    with the sorted run.  Events are never posted into the past relative
    to the simulation clock, but the near heap would absorb such posts
    correctly anyway.
    """

    def __init__(self, width_us: float = 64.0) -> None:
        super().__init__()
        if width_us <= 0:
            raise ValueError(f"bucket width must be positive, got {width_us}")
        self._width = width_us
        # Bucket keys come from a multiply (cheaper than a divide on the
        # post hot path); all that matters is that the same monotone
        # time->key map is used consistently.
        self._inv_width = 1.0 / width_us
        self._buckets = {}
        # A future key is on this heap iff its bucket exists (a bucket is
        # created with its first entry and consumed whole on activation),
        # so no presence set is needed to dedup.
        self._key_heap: List[int] = []
        self._run: List[list] = []
        self._run_pos = 0
        # All keys <= _active_key route to the near heap.
        self._active_key = -1
        self._near: List[list] = []

    def post(self, time: float, seq: int, kind: str, payload: object) -> list:
        entry = [time, seq, kind, payload, True]
        key = int(time * self._inv_width)
        if key <= self._active_key:
            _heappush(self._near, entry)
        else:
            buckets = self._buckets
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [entry]
                _heappush(self._key_heap, key)
            else:
                bucket.append(entry)
        depth = self.depth + 1
        self.depth = depth
        if depth > self.depth_max:
            self.depth_max = depth
        return entry

    def _activate_next(self) -> bool:
        """Sort the next non-empty future bucket into the run."""
        while self._key_heap:
            key = _heappop(self._key_heap)
            bucket = self._buckets.pop(key, None)
            if not bucket:  # pragma: no cover - defensive
                continue
            bucket.sort()
            self._run = bucket
            self._run_pos = 0
            self._active_key = key
            self.refills += 1
            if len(bucket) > self.bucket_occupancy_max:
                self.bucket_occupancy_max = len(bucket)
            return True
        return False

    def pop(self) -> Optional[list]:
        while True:
            run, pos, near = self._run, self._run_pos, self._near
            have_run = pos < len(run)
            if have_run and (not near or run[pos] <= near[0]):
                entry = run[pos]
                self._run_pos = pos + 1
            elif near:
                entry = _heappop(near)
            elif have_run:  # pragma: no cover - unreachable (branch 1 wins)
                entry = run[pos]
                self._run_pos = pos + 1
            else:
                if not self._activate_next():
                    return None
                continue
            self.depth -= 1
            if entry[_ALIVE]:
                return entry
            self.cancelled_skipped += 1

    def peek(self) -> Optional[list]:
        while True:
            run, near = self._run, self._near
            # Discard dead entries at the run front / near top so the
            # returned entry is the one pop() would deliver.
            pos = self._run_pos
            nrun = len(run)
            while pos < nrun and not run[pos][_ALIVE]:
                pos += 1
                self.depth -= 1
                self.cancelled_skipped += 1
            self._run_pos = pos
            while near and not near[0][_ALIVE]:
                _heappop(near)
                self.depth -= 1
                self.cancelled_skipped += 1
            have_run = pos < nrun
            if have_run and (not near or run[pos] <= near[0]):
                return run[pos]
            if near:
                return near[0]
            if not self._activate_next():
                return None


def make_event_queue(
    backend: str, total_invocations: int, width_us: float = 64.0
) -> EventQueue:
    """Build the queue selected by ``SimConfig.event_queue``.

    ``auto`` picks the bucket backend for plans large enough that event
    volume dominates (``total_invocations >=``
    :data:`AUTO_BUCKET_MIN_INVOCATIONS`) and the plain heap below that,
    where the heap's lower constant factors win.  The choice never
    affects results — only wall time.
    """
    if backend == "auto":
        backend = (
            "bucket"
            if total_invocations >= AUTO_BUCKET_MIN_INVOCATIONS
            else "heap"
        )
    if backend == "heap":
        return HeapEventQueue()
    if backend == "bucket":
        return BucketEventQueue(width_us)
    raise ValueError(
        f"unknown event queue backend {backend!r} "
        "(expected 'auto', 'heap', or 'bucket')"
    )


__all__ = [
    "AUTO_BUCKET_MIN_INVOCATIONS",
    "EventQueue",
    "HeapEventQueue",
    "BucketEventQueue",
    "make_event_queue",
]

"""Micro-batch aggregation: representative instances with report fan-out.

The kernel generator emits every thread-block program as uniform
micro-batch *runs*: for each task side assigned to a TB, the ``M``
instances ``(task, side, 0..M-1)`` appear consecutively.  Siblings of
one run share their route, per-TB send cap, receive copy duration, and
dependency shape — everything about them is identical except *when* they
execute, because the TB serializes them.  Aggregation exploits the
identical part at two fidelity levels:

* **Exact** (``SimConfig.aggregate_microbatches``) — one representative
  instance's *schedule metadata* (validation, route edges, send cap,
  receive copy duration, route latency) is computed once per task and
  shared across its siblings.  Timing is untouched, so reports are
  bit-identical to fully expanded bookkeeping; the golden determinism
  suite pins this.

* **Fast** (``SimConfig.collapse_microbatches``, part of the ``fast``
  fidelity preset) — :func:`collapse_microbatch_runs` rewrites the plan
  so each run becomes a *single* representative instance carrying the
  run's whole payload (``chunk_bytes * M``), and
  :func:`expand_report` fans the representative back out into ``M``
  per-instance report entries afterwards.  This is approximate: it
  ignores the per-instance route-latency gaps and FIFO-credit
  round-trips between siblings (error sources and the measured bound
  live in ``docs/performance.md``; ``benchmarks/test_sim_scale.py``
  asserts the bound).  Collapse is refused whenever a fault injector,
  recovery policy, or background traffic is present — sibling timing is
  then observable (checkpoints, per-instance retries, contention from
  outside the plan), so only the expanded simulation is correct.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import List, Optional

from .metrics import SimReport, TraceEvent
from .plan import ExecutionPlan, Invocation, TBProgram


@dataclass(frozen=True)
class CollapsedPlan:
    """A plan rewritten to one representative instance per run."""

    plan: ExecutionPlan
    #: Micro-batch count of the original plan (the fan-out factor).
    n_microbatches: int
    #: Micro-batch runs collapsed (send and receive sides counted
    #: separately).
    runs_collapsed: int


def collapse_microbatch_runs(plan: ExecutionPlan) -> Optional[CollapsedPlan]:
    """Collapse each uniform micro-batch run into one instance.

    Returns ``None`` when the plan has a single micro-batch or any TB
    program does not match the uniform-run pattern (in which case the
    caller simulates the plan unchanged).
    """
    n_mb = plan.n_microbatches
    if n_mb <= 1:
        return None
    if not plan._validate_microbatch_runs():
        return None
    runs = 0
    programs: List[TBProgram] = []
    for tb in plan.tb_programs:
        collapsed = [
            Invocation(inv.task_id, inv.side, 0)
            for inv in tb.invocations[::n_mb]
        ]
        runs += len(collapsed)
        programs.append(
            TBProgram(
                rank=tb.rank,
                tb_index=tb.tb_index,
                invocations=collapsed,
                nwarps=tb.nwarps,
                label=tb.label,
            )
        )
    collapsed_plan = dc_replace(
        plan,
        n_microbatches=1,
        chunk_bytes=plan.chunk_bytes * n_mb,
        tb_programs=programs,
    )
    return CollapsedPlan(
        plan=collapsed_plan, n_microbatches=n_mb, runs_collapsed=runs
    )


def expand_report(report: SimReport, collapsed: CollapsedPlan) -> SimReport:
    """Fan a collapsed run's report back out to per-instance entries.

    Mutates ``report`` in place and returns it: each representative
    completion becomes ``M`` sibling completions, each representative
    send/recv trace interval is split into ``M`` equal sub-intervals,
    and per-TB invocation / per-link flow counts are scaled back to
    instance granularity.  Timing fields are left exactly as simulated —
    the collapse itself, not the fan-out, is the approximation.
    """
    n_mb = collapsed.n_microbatches
    report.completion_order = [
        (task_id, mb)
        for task_id, _ in report.completion_order
        for mb in range(n_mb)
    ]
    for tb in report.tb_stats:
        tb.invocations *= n_mb
    for stats in report.link_stats.values():
        stats.flows_carried *= n_mb
    if report.trace:
        expanded: List[TraceEvent] = []
        for ev in report.trace:
            if ev.kind in ("send", "recv") and ev.task_id >= 0:
                step = (ev.end_us - ev.start_us) / n_mb
                for mb in range(n_mb):
                    expanded.append(
                        TraceEvent(
                            tb_index=ev.tb_index,
                            rank=ev.rank,
                            kind=ev.kind,
                            start_us=ev.start_us + mb * step,
                            end_us=ev.start_us + (mb + 1) * step,
                            task_id=ev.task_id,
                            mb=mb,
                        )
                    )
            else:
                expanded.append(ev)
        report.trace = expanded
    counters = report.counters
    counters.agg_runs_collapsed += collapsed.runs_collapsed
    counters.agg_instances_expanded += collapsed.runs_collapsed * (n_mb - 1)
    return report


__all__ = ["CollapsedPlan", "collapse_microbatch_runs", "expand_report"]

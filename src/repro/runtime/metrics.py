"""Measurement results of one simulated collective execution.

The report captures exactly the quantities the paper's evaluation tracks:

* **algorithm bandwidth** — total synchronized bytes over completion time
  (footnote 3 of section 5.2: bandwidth and latency are equivalent);
* **per-TB time breakdown** — busy (execution), control overhead,
  sync-blocking (waiting for peers/credits), data stalls, and the tail a
  TB spends occupying its SM after finishing, when the backend cannot
  release it early (Figure 2, Figure 12, Table 3);
* **per-link activity** — busy intervals and bytes, from which global
  link utilization (Table 1) is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .plan import ExecMode


@dataclass
class TBStats:
    """Time breakdown for one thread block.

    All durations are in microseconds.  ``sync_wait`` counts time blocked
    on peers (missing data at a receiver, exhausted FIFO credits at a
    sender); ``data_wait`` counts time blocked on unsatisfied data
    dependencies; ``overhead`` is control-plane cost (interpreter decode
    or one-time kernel load).
    """

    rank: int
    tb_index: int
    label: str
    nwarps: int
    busy: float = 0.0
    overhead: float = 0.0
    data_wait: float = 0.0
    sync_wait: float = 0.0
    release_time: float = 0.0
    invocations: int = 0

    def lifetime(self, global_end: float, early_release: bool) -> float:
        """SM occupancy span: until release (ResCCL) or kernel end."""
        return self.release_time if early_release else global_end

    def idle_time(self, global_end: float, early_release: bool) -> float:
        """Occupied-but-not-executing time within the TB's lifetime."""
        span = self.lifetime(global_end, early_release)
        return max(0.0, span - self.busy - self.overhead)

    def idle_fraction(self, global_end: float, early_release: bool) -> float:
        span = self.lifetime(global_end, early_release)
        if span <= 0:
            return 0.0
        return self.idle_time(global_end, early_release) / span

    def busy_fraction(self, global_end: float, early_release: bool) -> float:
        span = self.lifetime(global_end, early_release)
        if span <= 0:
            return 0.0
        return (self.busy + self.overhead) / span


@dataclass
class LinkStats:
    """Activity of one logical link (NVLink pair or NIC direction)."""

    link: str
    busy_time: float = 0.0
    bytes_moved: float = 0.0
    flows_carried: int = 0

    def utilization(self, total_time: float) -> float:
        """Fraction of the run during which the link was moving data."""
        if total_time <= 0:
            return 0.0
        return min(1.0, self.busy_time / total_time)


@dataclass(frozen=True)
class TraceEvent:
    """One recorded thread-block activity interval (optional tracing).

    ``kind`` is one of ``send``, ``recv``, ``overhead``, ``wait:data``,
    ``wait:sync``.  ``task_id`` and ``mb`` are -1 for non-transfer
    intervals.
    """

    tb_index: int
    rank: int
    kind: str
    start_us: float
    end_us: float
    task_id: int = -1
    mb: int = -1

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class FaultStats:
    """Fault-injection, detection, and recovery counters for one run.

    Populated only when a :class:`~repro.faults.FaultInjector` is armed;
    ``SimReport.fault_stats`` stays ``None`` on healthy runs so the
    disarmed path is provably untouched.  ``recovery_latencies_us``
    records, per recovered transfer, the span from the instant the fault
    stalled it to the instant bytes moved again.
    """

    injected: int = 0
    detected_stalls: int = 0
    recovered: int = 0
    retries: int = 0
    unrecovered: int = 0
    fallbacks: int = 0
    #: Resume plans compiled after a checkpoint (replan-and-resume rung).
    replans: int = 0
    downtime_us: float = 0.0
    fallback_overhead_us: float = 0.0
    recovery_latencies_us: List[float] = field(default_factory=list)

    @property
    def mean_recovery_latency_us(self) -> float:
        if not self.recovery_latencies_us:
            return 0.0
        return sum(self.recovery_latencies_us) / len(self.recovery_latencies_us)

    def summary(self) -> str:
        """One-line digest for CLI output."""
        return (
            f"faults: {self.injected} injected, "
            f"{self.detected_stalls} stall(s) detected, "
            f"{self.recovered} recovered "
            f"(mean latency {self.mean_recovery_latency_us:.0f} us), "
            f"{self.retries} retries, {self.replans} replan(s), "
            f"{self.fallbacks} fallback(s), "
            f"{self.unrecovered} unrecovered"
        )


@dataclass
class SimCounters:
    """Cheap event-loop and rate-solver counters for one simulated run.

    Maintained unconditionally (plain integer bumps on paths that are
    already per-event), surfaced by ``resccl profile`` and the ``sim_*``
    metric series, and asserted on by ``benchmarks/test_perf_scaling.py``
    to keep the incremental solver's work bounded.

    Physical report fields must be bit-identical across every exact
    solver/queue/aggregation configuration; a few *work counters* are
    allowed to differ because they describe how the answer was computed,
    not the answer: ``shares_computed`` (incremental vs reference
    allocator), ``vectorized_passes``/``scalar_passes`` (which re-rater
    ran), ``bucket_occupancy_max``/``queue_refills`` (queue backend),
    and the ``agg_*`` family (aggregation on/off).  The golden
    determinism suite masks exactly that set and pins everything else.
    """

    events_posted: int = 0
    events_popped: int = 0
    stale_events_skipped: int = 0
    reallocations: int = 0
    shares_computed: int = 0
    rate_updates: int = 0
    flows_admitted: int = 0
    #: Reallocation passes re-rated by the numpy path vs the scalar loop.
    vectorized_passes: int = 0
    scalar_passes: int = 0
    #: Event-queue occupancy high-water mark (cancelled entries included).
    queue_depth_max: int = 0
    #: Largest calendar bucket activated (0 under the heap backend).
    bucket_occupancy_max: int = 0
    #: Calendar bucket activations (0 under the heap backend).
    queue_refills: int = 0
    #: Tasks whose schedule metadata one representative instance computed
    #: for all its micro-batch siblings (exact aggregation).
    agg_tasks_cached: int = 0
    #: Micro-batch runs temporally collapsed (fast fidelity only).
    agg_runs_collapsed: int = 0
    #: Sibling instances reconstructed by report fan-out after collapse.
    agg_instances_expanded: int = 0
    #: 1 when collapse was requested but refused (faults, recovery, or
    #: background traffic present).
    agg_collapse_disabled: int = 0
    #: 1 when collapse was requested and permitted but had nothing to
    #: fold — ``n_microbatches == 1`` (or no uniform run survived the
    #: eligibility checks), so ``fast`` fidelity silently measured the
    #: exact plan.  Mesh-allreduce at >= 8x8 / 64 MB plans a single
    #: micro-batch and hits exactly this.
    agg_collapse_noop: int = 0

    #: Work-counter fields allowed to differ between configurations that
    #: must otherwise produce bit-identical reports.
    WORK_COUNTER_FIELDS = (
        "shares_computed",
        "vectorized_passes",
        "scalar_passes",
        "bucket_occupancy_max",
        "queue_refills",
        "agg_tasks_cached",
        "agg_runs_collapsed",
        "agg_instances_expanded",
        "agg_collapse_disabled",
        "agg_collapse_noop",
    )

    def summary(self) -> str:
        """One-line digest for CLI output."""
        text = (
            f"events: {self.events_posted} posted / "
            f"{self.events_popped} popped "
            f"({self.stale_events_skipped} stale skipped, "
            f"queue depth <= {self.queue_depth_max}"
        )
        if self.queue_refills:
            text += (
                f", {self.queue_refills} bucket refill(s), "
                f"occupancy <= {self.bucket_occupancy_max}"
            )
        text += (
            f"); rates: {self.reallocations} reallocation passes "
            f"({self.vectorized_passes} vectorized / "
            f"{self.scalar_passes} scalar), "
            f"{self.shares_computed} edge shares computed, "
            f"{self.rate_updates} rate updates; "
            f"{self.flows_admitted} flow(s) admitted"
        )
        if self.agg_tasks_cached:
            text += f"; aggregation: {self.agg_tasks_cached} task(s) cached"
        if self.agg_runs_collapsed:
            text += (
                f"; collapse: {self.agg_runs_collapsed} run(s) -> "
                f"{self.agg_instances_expanded} instance(s) fanned out"
            )
        if self.agg_collapse_disabled:
            text += "; collapse disabled (faults/background traffic)"
        if self.agg_collapse_noop:
            text += (
                "; collapse no-op (single micro-batch — fast fidelity "
                "measured the exact plan)"
            )
        return text


@dataclass
class SimReport:
    """Full outcome of simulating one execution plan."""

    plan_name: str
    mode: ExecMode
    completion_time_us: float
    total_bytes: float
    tb_stats: List[TBStats] = field(default_factory=list)
    link_stats: Dict[str, LinkStats] = field(default_factory=dict)
    #: (task_id, micro_batch) pairs in dynamic completion order — the
    #: executed schedule, replayable through the symbolic engine.
    completion_order: List[Tuple[int, int]] = field(default_factory=list)
    #: Per-TB activity intervals; populated only when the simulator runs
    #: with ``record_trace=True``.  Fault, detection, and recovery events
    #: are recorded unconditionally whenever an injector is armed, into a
    #: bounded ring buffer (``SimConfig.fault_trace_cap``).
    trace: List["TraceEvent"] = field(default_factory=list)
    #: Fault-injection counters; ``None`` unless an injector was armed.
    fault_stats: Optional["FaultStats"] = None
    #: Fault/recovery events evicted from the bounded fault-trace ring
    #: buffer (oldest first) because a chaos run outgrew the cap.
    trace_dropped: int = 0
    #: Link-occupancy counter samples ``(link, time_us, active_flows)``;
    #: populated only with ``record_trace=True``.  Feeds the Perfetto
    #: counter tracks of the unified trace export.
    link_trace: List[Tuple[str, float, int]] = field(default_factory=list)
    #: Event-loop and rate-solver work counters (always populated).
    counters: SimCounters = field(default_factory=SimCounters)

    # ------------------------------------------------------------------
    # Headline metrics
    # ------------------------------------------------------------------

    @property
    def algo_bandwidth(self) -> float:
        """Algorithm bandwidth in bytes/us (== GB/s * 1e-3 * 1e3)."""
        if self.completion_time_us <= 0:
            return 0.0
        return self.total_bytes / self.completion_time_us

    @property
    def algo_bandwidth_gbps(self) -> float:
        """Algorithm bandwidth in GB/s."""
        return self.algo_bandwidth / 1000.0

    @property
    def early_release(self) -> bool:
        """Generated kernels release finished TBs; interpreters do not."""
        return self.mode is ExecMode.KERNEL

    # ------------------------------------------------------------------
    # Aggregates used by the paper's tables
    # ------------------------------------------------------------------

    def tb_count(self) -> int:
        return len(self.tb_stats)

    def max_tbs_per_rank(self) -> int:
        per_rank: Dict[int, int] = {}
        for tb in self.tb_stats:
            per_rank[tb.rank] = per_rank.get(tb.rank, 0) + 1
        return max(per_rank.values(), default=0)

    def avg_busy_fraction(self) -> float:
        """Mean "Comm Time" share across TBs (Table 3)."""
        if not self.tb_stats:
            return 0.0
        end = self.completion_time_us
        return sum(
            tb.busy_fraction(end, self.early_release) for tb in self.tb_stats
        ) / len(self.tb_stats)

    def avg_idle_fraction(self) -> float:
        """Mean TB idle ratio (Table 3 "Avg Idle")."""
        if not self.tb_stats:
            return 0.0
        end = self.completion_time_us
        return sum(
            tb.idle_fraction(end, self.early_release) for tb in self.tb_stats
        ) / len(self.tb_stats)

    def max_idle_fraction(self) -> float:
        """Worst TB idle ratio (Table 3 "Max Idle")."""
        end = self.completion_time_us
        return max(
            (tb.idle_fraction(end, self.early_release) for tb in self.tb_stats),
            default=0.0,
        )

    def link_utilization(self) -> float:
        """Global link utilization: mean busy fraction over active links.

        This is Table 1's metric — how much of the run each link that the
        algorithm uses actually spends transferring.
        """
        active = [ls for ls in self.link_stats.values() if ls.flows_carried > 0]
        if not active:
            return 0.0
        return sum(
            ls.utilization(self.completion_time_us) for ls in active
        ) / len(active)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.plan_name}: {self.algo_bandwidth_gbps:.2f} GB/s algbw, "
            f"{self.completion_time_us / 1000.0:.2f} ms, "
            f"{self.tb_count()} TBs ({self.max_tbs_per_rank()}/rank), "
            f"link util {self.link_utilization():.1%}, "
            f"avg TB idle {self.avg_idle_fraction():.1%}"
        )


__all__ = [
    "TBStats",
    "LinkStats",
    "SimCounters",
    "SimReport",
    "TraceEvent",
    "FaultStats",
]

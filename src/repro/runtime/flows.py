"""Fluid-flow link model with contention-aware incremental rate allocation.

A transfer invocation becomes a *flow* over the contention edges of its
route (NVLink ports intra-node, NIC directions inter-node).  Rates follow
the paper's Equation 1 cost model:

* each flow is capped by the issuing thread block's copy capability
  (``warps * warp_copy_bandwidth`` — Figure 4 shows a 4-warp TB moving
  about a quarter of NIC line rate);
* an edge carrying ``k`` flows shares its capacity fairly, and beyond one
  flow pays the contention penalty ``gamma * L(z)``: effective capacity is
  ``C / (1 + gamma * (k - 1))``, so aggregate throughput *decreases* as
  over-subscription grows — reproducing the Figure 4 roll-off beyond four
  TBs.

The allocation is per-edge fair share with a per-flow cap: a flow's rate
is ``min(tb_cap, min over edges of share(e))``.  Spare share from capped
flows is redistributed among the uncapped flows of each edge (one
water-filling round per edge), which keeps rate updates local to the
edges a starting/finishing flow touches.

Incremental solver
------------------

A flow admission/completion (or a fault derating) changes the share of
exactly the edges whose membership or capacity changed — an edge's share
is a pure function of its member set (membership + caps), its raw
capacity, and its fault derating factor.  The network therefore keeps

* an **authoritative per-edge flow index** (`_edge_flows`, an
  insertion-ordered id set) — the only membership structure; nothing
  ever scans the global flow table to find the flows of an edge — and
* a **per-edge share cache** (`_share`) invalidated exactly when an
  edge's membership or derating factor changes.

A reallocation pass then recomputes shares for the *dirty* edges only
and re-rates only the flows crossing them; every other edge's share is
served from the cache bit-for-bit.  Setting ``incremental=False``
selects the brute-force reference allocator (recompute every occupied
edge, re-rate every live flow) that the golden determinism tests and the
``benchmarks/test_perf_scaling.py`` baseline compare against: both modes
produce identical rates, and hence bit-identical simulations (see
``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

#: Absolute rate-change floor below which a re-rated flow keeps its old
#: rate (and no completion event is re-posted).  Matches the seed
#: implementation's threshold, so the default solver is bit-exact.
ABS_RATE_EPS = 1e-12


@dataclass
class Flow:
    """One in-flight chunk transfer.

    Attributes:
        flow_id: unique id.
        edges: contention edges the flow occupies for its whole lifetime.
        nbytes: payload size.
        cap: per-flow rate ceiling from the sending TB (bytes/us).
        start_time: when the flow was admitted (after path latency).
        remaining: bytes still to move (updated lazily).
        rate: current allocated rate (bytes/us).
        last_update: sim time at which ``remaining`` was last reconciled.
    """

    flow_id: int
    edges: Tuple[str, ...]
    nbytes: float
    cap: float
    start_time: float
    remaining: float = field(init=False)
    rate: float = 0.0
    last_update: float = field(init=False)

    def __post_init__(self) -> None:
        self.remaining = float(self.nbytes)
        self.last_update = self.start_time

    def advance_to(self, now: float) -> None:
        """Reconcile remaining bytes up to ``now`` at the current rate."""
        if now > self.last_update:
            self.remaining = max(0.0, self.remaining - self.rate * (now - self.last_update))
            self.last_update = now

    def eta(self) -> float:
        """Projected completion time at the current rate."""
        if self.remaining <= 1e-9:
            return self.last_update
        if self.rate <= 0.0:
            return float("inf")
        return self.last_update + self.remaining / self.rate


class FlowNetwork:
    """Tracks active flows and allocates contended edge bandwidth.

    Args:
        edge_capacity: raw capacity (bytes/us) per contention edge.
        gamma: Equation 1 contention penalty coefficient.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`.
        incremental: use the dirty-edge incremental solver (default).
            ``False`` selects the brute-force reference allocator, which
            produces identical rates at ``O(edges + flows)`` per pass.
        rate_rel_epsilon: optional *relative* rate-change threshold below
            which a re-rated flow keeps its previous rate.  The default
            ``0.0`` keeps only the absolute :data:`ABS_RATE_EPS` floor
            and is bit-exact; a non-zero value trades exactness for
            fewer completion-event reposts on large fabrics.
    """

    def __init__(
        self,
        edge_capacity: Dict[str, float],
        gamma: float = 0.03,
        metrics=None,
        incremental: bool = True,
        rate_rel_epsilon: float = 0.0,
    ) -> None:
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        if rate_rel_epsilon < 0:
            raise ValueError(
                f"rate_rel_epsilon must be non-negative, got {rate_rel_epsilon}"
            )
        self._capacity = dict(edge_capacity)
        self._gamma = gamma
        self._flows: Dict[int, Flow] = {}
        # Authoritative per-edge membership: edge -> ordered flow-id set
        # (a dict used as an insertion-ordered set, so iteration — and
        # therefore every downstream event sequence — is deterministic).
        self._edge_flows: Dict[str, Dict[int, None]] = {}
        # Per-edge share cache; an entry is invalidated exactly when the
        # edge's membership or derating factor changes.
        self._share: Dict[str, float] = {}
        self._next_id = 0
        self._incremental = incremental
        self._rate_rel_epsilon = rate_rel_epsilon
        # Fault-injection capacity scaling; empty when no faults are armed,
        # so the healthy-fabric math is untouched.
        self._factor: Dict[str, float] = {}
        # Optional repro.obs.metrics.MetricsRegistry; None means every
        # publish site is a single attribute test (observability off).
        self._metrics = metrics
        # Cheap solver counters, folded into SimReport.counters.
        self.reallocations = 0
        self.shares_computed = 0
        self.rate_updates = 0
        self.flows_admitted = 0

    @property
    def gamma(self) -> float:
        return self._gamma

    @property
    def incremental(self) -> bool:
        return self._incremental

    def active_count(self) -> int:
        return len(self._flows)

    def edge_load(self, edge: str) -> int:
        """Number of flows currently crossing an edge."""
        return len(self._edge_flows.get(edge, ()))

    def capacity_factor(self, edge: str) -> float:
        """Current fault-injection derating of an edge (1.0 = healthy)."""
        return self._factor.get(edge, 1.0)

    def effective_capacity(self, edge: str) -> float:
        """Capacity after derating and the Equation 1 contention penalty."""
        k = self.edge_load(edge)
        base = self._capacity[edge]
        if self._factor:
            base *= self._factor.get(edge, 1.0)
        if k <= 1:
            return base
        return base / (1.0 + self._gamma * (k - 1))

    def set_capacity_factor(
        self, edge: str, factor: float, now: float
    ) -> List[Flow]:
        """Derate (or restore) an edge's capacity; used by fault injection.

        ``factor`` scales the raw capacity: 0 means the link is down,
        1 restores full health.  Returns every flow whose rate changed so
        the caller can reschedule completion events.
        """
        if edge not in self._capacity:
            raise KeyError(f"unknown contention edge {edge!r}")
        if factor >= 1.0:
            self._factor.pop(edge, None)
        else:
            self._factor[edge] = max(0.0, factor)
        if self._metrics is not None:
            self._metrics.inc("net_capacity_derates_total", edge=edge)
        return self._reallocate((edge,), now)

    # ------------------------------------------------------------------

    def start_flow(
        self, edges: Tuple[str, ...], nbytes: float, cap: float, now: float
    ) -> Tuple[Flow, List[Flow]]:
        """Admit a flow; returns it plus every flow whose rate changed."""
        for edge in edges:
            if edge not in self._capacity:
                raise KeyError(f"unknown contention edge {edge!r}")
        flow = Flow(
            flow_id=self._next_id,
            edges=tuple(edges),
            nbytes=nbytes,
            cap=cap,
            start_time=now,
        )
        self._next_id += 1
        self._flows[flow.flow_id] = flow
        for edge in flow.edges:
            self._edge_flows.setdefault(edge, {})[flow.flow_id] = None
        self.flows_admitted += 1
        if self._metrics is not None:
            self._metrics.inc("net_flows_admitted_total")
            for edge in flow.edges:
                self._metrics.observe(
                    "net_edge_flow_depth", len(self._edge_flows[edge]),
                    edge=edge,
                )
        changed = self._reallocate(flow.edges, now)
        return flow, changed

    def finish_flow(self, flow: Flow, now: float) -> List[Flow]:
        """Remove a completed flow; returns flows whose rate changed."""
        flow.advance_to(now)
        del self._flows[flow.flow_id]
        for edge in flow.edges:
            peers = self._edge_flows.get(edge)
            if peers is not None:
                peers.pop(flow.flow_id, None)
                if not peers:
                    del self._edge_flows[edge]
                    self._share.pop(edge, None)
        return self._reallocate(flow.edges, now)

    def abort_flow(self, flow: Flow, now: float) -> List[Flow]:
        """Tear down an in-flight flow mid-transfer (fault recovery).

        Identical plumbing to :meth:`finish_flow`; the distinct name keeps
        caller intent explicit — the payload has NOT fully arrived, and
        ``flow.remaining`` tells the recovery layer how much to retransmit.
        """
        return self.finish_flow(flow, now)

    def flows_on_edge(self, edge: str) -> List[Flow]:
        """Live flows currently crossing an edge (via the per-edge index)."""
        return [self._flows[fid] for fid in self._edge_flows.get(edge, ())]

    def edge_census(self) -> Dict[str, Tuple[int, int, float]]:
        """Per-occupied-edge ``(flows, zero_rate_flows, effective_capacity)``.

        The watchdog embeds this census in its stall diagnostics so a
        stuck run shows *where* bytes stopped moving.  Served entirely
        from the per-edge index — no global flow scan.
        """
        census: Dict[str, Tuple[int, int, float]] = {}
        for edge, flow_ids in self._edge_flows.items():
            zero = sum(1 for fid in flow_ids if self._flows[fid].rate <= 0.0)
            census[edge] = (len(flow_ids), zero, self.effective_capacity(edge))
        return census

    # ------------------------------------------------------------------

    def _edge_share(self, edge: str) -> float:
        """Per-flow share on one edge after one water-filling round.

        Flows capped below the equal share donate their spare capacity to
        the remaining flows of the edge.
        """
        self.shares_computed += 1
        flow_ids = self._edge_flows.get(edge, ())
        k = len(flow_ids)
        if k == 0:
            return self.effective_capacity(edge)
        capacity = self.effective_capacity(edge)
        equal = capacity / k
        capped = [
            self._flows[fid].cap
            for fid in flow_ids
            if self._flows[fid].cap < equal
        ]
        uncapped = k - len(capped)
        if uncapped == 0:
            return equal
        return (capacity - sum(capped)) / uncapped

    def _share_of(self, edge: str) -> float:
        """Cached share of a (clean) edge; computed on first demand."""
        share = self._share.get(edge)
        if share is None:
            share = self._share[edge] = self._edge_share(edge)
        return share

    def _reallocate(self, dirty_edges: Iterable[str], now: float) -> List[Flow]:
        """Recompute rates after ``dirty_edges`` changed; returns changes.

        Incremental mode recomputes the share of each dirty edge and
        re-rates only the flows crossing one; clean edges are served from
        the share cache.  Reference mode recomputes every occupied edge
        and re-rates every live flow — same rates, no cache.  The changed
        list is sorted by flow id so both modes hand the simulator the
        exact same event-post sequence.
        """
        self.reallocations += 1
        if self._incremental:
            affected: List[Flow] = []
            seen = set()
            for edge in dirty_edges:
                members = self._edge_flows.get(edge)
                if members is None:
                    self._share.pop(edge, None)
                    continue
                self._share[edge] = self._edge_share(edge)
                for flow_id in members:
                    if flow_id not in seen:
                        seen.add(flow_id)
                        affected.append(self._flows[flow_id])
            share = self._share_of
        else:
            shares = {e: self._edge_share(e) for e in self._edge_flows}
            affected = list(self._flows.values())
            share = shares.__getitem__

        rel = self._rate_rel_epsilon
        changed: List[Flow] = []
        for flow in affected:
            new_rate = min(flow.cap, min(share(e) for e in flow.edges))
            threshold = ABS_RATE_EPS
            if rel > 0.0:
                threshold = max(threshold, rel * abs(flow.rate))
            if abs(new_rate - flow.rate) > threshold:
                flow.advance_to(now)
                flow.rate = new_rate
                changed.append(flow)
        changed.sort(key=lambda f: f.flow_id)
        self.rate_updates += len(changed)
        if self._metrics is not None:
            self._metrics.inc("net_reallocations_total")
            if changed:
                self._metrics.inc("net_rate_changes_total", len(changed))
        return changed


__all__ = ["ABS_RATE_EPS", "Flow", "FlowNetwork"]

"""Fluid-flow link model with contention-aware incremental rate allocation.

A transfer invocation becomes a *flow* over the contention edges of its
route (NVLink ports intra-node, NIC directions inter-node).  Rates follow
the paper's Equation 1 cost model:

* each flow is capped by the issuing thread block's copy capability
  (``warps * warp_copy_bandwidth`` — Figure 4 shows a 4-warp TB moving
  about a quarter of NIC line rate);
* an edge carrying ``k`` flows shares its capacity fairly, and beyond one
  flow pays the contention penalty ``gamma * L(z)``: effective capacity is
  ``C / (1 + gamma * (k - 1))``, so aggregate throughput *decreases* as
  over-subscription grows — reproducing the Figure 4 roll-off beyond four
  TBs.

The allocation is per-edge fair share with a per-flow cap: a flow's rate
is ``min(tb_cap, min over edges of share(e))``.  Spare share from capped
flows is redistributed among the uncapped flows of each edge (one
water-filling round per edge), which keeps rate updates local to the
edges a starting/finishing flow touches.

Incremental solver
------------------

A flow admission/completion (or a fault derating) changes the share of
exactly the edges whose membership or capacity changed — an edge's share
is a pure function of its member set (membership + caps), its raw
capacity, and its fault derating factor.  The network therefore keeps

* an **authoritative per-edge flow index** (`_edge_flows`, an
  insertion-ordered id set) — the only membership structure; nothing
  ever scans the global flow table to find the flows of an edge — and
* a **per-edge share cache** (`_share`) invalidated exactly when an
  edge's membership or derating factor changes.

A reallocation pass then recomputes shares for the *dirty* edges only
and re-rates only the flows crossing them; every other edge's share is
served from the cache bit-for-bit.  Setting ``incremental=False``
selects the brute-force reference allocator (recompute every occupied
edge, re-rate every live flow) that the golden determinism tests and the
``benchmarks/test_perf_scaling.py`` baseline compare against: both modes
produce identical rates, and hence bit-identical simulations (see
``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

try:  # numpy powers the vectorized re-rating path; optional at runtime.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: Absolute rate-change floor below which a re-rated flow keeps its old
#: rate (and no completion event is re-posted).  Matches the seed
#: implementation's threshold, so the default solver is bit-exact.
ABS_RATE_EPS = 1e-12

#: Default minimum affected-flow count at which a reallocation pass
#: switches to the vectorized re-rater.  Below it, plain Python loops
#: have lower constant factors.
VECTORIZE_MIN_FLOWS = 24


@dataclass
class Flow:
    """One in-flight chunk transfer.

    Attributes:
        flow_id: unique id.
        edges: contention edges the flow occupies for its whole lifetime.
        nbytes: payload size.
        cap: per-flow rate ceiling from the sending TB (bytes/us).
        start_time: when the flow was admitted (after path latency).
        remaining: bytes still to move (updated lazily).
        rate: current allocated rate (bytes/us).
        last_update: sim time at which ``remaining`` was last reconciled.
    """

    flow_id: int
    edges: Tuple[str, ...]
    nbytes: float
    cap: float
    start_time: float
    remaining: float = field(init=False)
    rate: float = 0.0
    last_update: float = field(init=False)

    def __post_init__(self) -> None:
        self.remaining = float(self.nbytes)
        self.last_update = self.start_time

    def advance_to(self, now: float) -> None:
        """Reconcile remaining bytes up to ``now`` at the current rate."""
        if now > self.last_update:
            self.remaining = max(0.0, self.remaining - self.rate * (now - self.last_update))
            self.last_update = now

    def eta(self) -> float:
        """Projected completion time at the current rate."""
        if self.remaining <= 1e-9:
            return self.last_update
        if self.rate <= 0.0:
            return float("inf")
        return self.last_update + self.remaining / self.rate


class FlowNetwork:
    """Tracks active flows and allocates contended edge bandwidth.

    Args:
        edge_capacity: raw capacity (bytes/us) per contention edge.
        gamma: Equation 1 contention penalty coefficient.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`.
        incremental: use the dirty-edge incremental solver (default).
            ``False`` selects the brute-force reference allocator, which
            produces identical rates at ``O(edges + flows)`` per pass.
        rate_rel_epsilon: optional *relative* rate-change threshold below
            which a re-rated flow keeps its previous rate.  The default
            ``0.0`` keeps only the absolute :data:`ABS_RATE_EPS` floor
            and is bit-exact; a non-zero value trades exactness for
            fewer completion-event reposts on large fabrics.
        vectorize: allow the numpy re-rating path (used only when numpy
            is importable and the solver is incremental).  The scalar
            loop remains the reference; both produce bit-identical
            rates, so a pass may pick either freely.
        vectorize_min_flows: affected-flow count at which a pass engages
            the vectorized re-rater (:data:`VECTORIZE_MIN_FLOWS`).
    """

    def __init__(
        self,
        edge_capacity: Dict[str, float],
        gamma: float = 0.03,
        metrics=None,
        incremental: bool = True,
        rate_rel_epsilon: float = 0.0,
        vectorize: bool = True,
        vectorize_min_flows: int = VECTORIZE_MIN_FLOWS,
    ) -> None:
        if gamma < 0:
            raise ValueError(f"gamma must be non-negative, got {gamma}")
        if rate_rel_epsilon < 0:
            raise ValueError(
                f"rate_rel_epsilon must be non-negative, got {rate_rel_epsilon}"
            )
        self._capacity = dict(edge_capacity)
        self._gamma = gamma
        self._flows: Dict[int, Flow] = {}
        # Authoritative per-edge membership: edge -> ordered flow-id set
        # (a dict used as an insertion-ordered set, so iteration — and
        # therefore every downstream event sequence — is deterministic).
        self._edge_flows: Dict[str, Dict[int, None]] = {}
        # Per-edge share cache; an entry is invalidated exactly when the
        # edge's membership or derating factor changes.
        self._share: Dict[str, float] = {}
        self._next_id = 0
        self._incremental = incremental
        self._rate_rel_epsilon = rate_rel_epsilon
        self._vectorize = bool(vectorize and _np is not None and incremental)
        self._vectorize_min_flows = max(0, vectorize_min_flows)
        if self._vectorize:
            # Dense edge ids (insertion order of the capacity map, which
            # is deterministic) and per-flow cached edge-index arrays:
            # the CSR-style incidence the vectorized re-rater gathers.
            self._edge_ids = {e: i for i, e in enumerate(self._capacity)}
            self._flow_edge_idx: Dict[int, "_np.ndarray"] = {}
            # Persistent numpy mirrors, so a vectorized pass is pure C
            # gathers with no per-pass Python marshalling:
            # * `_share_arr[edge_id]` mirrors every `_share` dict write
            #   (an occupied edge always has a fresh entry by the time a
            #   re-rate runs — membership changes dirty the edge);
            # * `_cap_arr[slot]` / `_rate_arr[slot]` mirror each live
            #   flow's cap and rate, slot-indexed with free-list reuse.
            self._flow_slot: Dict[int, int] = {}
            self._free_slots: List[int] = []
            self._nslots = 0
            self._share_arr = _np.zeros(len(self._capacity))
            self._cap_arr = _np.zeros(256)
            self._rate_arr = _np.zeros(256)
            # Admission fast path state: per-edge member *slot* lists
            # (kept in sync with `_edge_flows`), a slot -> Flow table,
            # and a scratch vector for the combined-minimum scatter.
            self._edge_slots: Dict[str, List[int]] = {}
            self._slot_flow: List[Flow] = []
            self._scratch = _np.zeros(256)
        # Fault-injection capacity scaling; empty when no faults are armed,
        # so the healthy-fabric math is untouched.
        self._factor: Dict[str, float] = {}
        # Optional repro.obs.metrics.MetricsRegistry; None means every
        # publish site is a single attribute test (observability off).
        self._metrics = metrics
        # Cheap solver counters, folded into SimReport.counters.
        self.reallocations = 0
        self.shares_computed = 0
        self.rate_updates = 0
        self.flows_admitted = 0
        self.vectorized_passes = 0
        self.scalar_passes = 0

    @property
    def gamma(self) -> float:
        return self._gamma

    @property
    def incremental(self) -> bool:
        return self._incremental

    def active_count(self) -> int:
        return len(self._flows)

    def edge_load(self, edge: str) -> int:
        """Number of flows currently crossing an edge."""
        return len(self._edge_flows.get(edge, ()))

    def capacity_factor(self, edge: str) -> float:
        """Current fault-injection derating of an edge (1.0 = healthy)."""
        return self._factor.get(edge, 1.0)

    def effective_capacity(self, edge: str) -> float:
        """Capacity after derating and the Equation 1 contention penalty."""
        k = self.edge_load(edge)
        base = self._capacity[edge]
        if self._factor:
            base *= self._factor.get(edge, 1.0)
        if k <= 1:
            return base
        return base / (1.0 + self._gamma * (k - 1))

    def set_capacity_factor(
        self, edge: str, factor: float, now: float
    ) -> List[Flow]:
        """Derate (or restore) an edge's capacity; used by fault injection.

        ``factor`` scales the raw capacity: 0 means the link is down,
        1 restores full health.  Returns every flow whose rate changed so
        the caller can reschedule completion events.
        """
        if edge not in self._capacity:
            raise KeyError(f"unknown contention edge {edge!r}")
        if factor >= 1.0:
            self._factor.pop(edge, None)
        else:
            self._factor[edge] = max(0.0, factor)
        if self._metrics is not None:
            self._metrics.inc("net_capacity_derates_total", edge=edge)
        return self._reallocate((edge,), now)

    # ------------------------------------------------------------------

    def start_flow(
        self,
        edges: Tuple[str, ...],
        nbytes: float,
        cap: float,
        now: float,
        ordered: bool = True,
    ) -> Tuple[Flow, List[Flow]]:
        """Admit a flow; returns it plus every flow whose rate changed.

        ``ordered=False`` skips the deterministic flow-id sort of the
        changed list — for callers that do not consume the list's order
        (the simulator's earliest-wins event discipline never reposts on
        an admission, since peer rates only ever drop).
        """
        for edge in edges:
            if edge not in self._capacity:
                raise KeyError(f"unknown contention edge {edge!r}")
        flow = Flow(
            flow_id=self._next_id,
            edges=tuple(edges),
            nbytes=nbytes,
            cap=cap,
            start_time=now,
        )
        self._next_id += 1
        self._flows[flow.flow_id] = flow
        for edge in flow.edges:
            self._edge_flows.setdefault(edge, {})[flow.flow_id] = None
        if self._vectorize:
            ids = self._edge_ids
            self._flow_edge_idx[flow.flow_id] = _np.fromiter(
                (ids[e] for e in flow.edges),
                dtype=_np.intp,
                count=len(flow.edges),
            )
            free = self._free_slots
            if free:
                slot = free.pop()
                self._slot_flow[slot] = flow
            else:
                slot = self._nslots
                self._nslots = slot + 1
                if slot >= self._cap_arr.shape[0]:
                    grow = _np.zeros(self._cap_arr.shape[0])
                    self._cap_arr = _np.concatenate([self._cap_arr, grow])
                    self._rate_arr = _np.concatenate([self._rate_arr, grow])
                    self._scratch = _np.concatenate([self._scratch, grow])
                self._slot_flow.append(flow)
            self._flow_slot[flow.flow_id] = slot
            self._cap_arr[slot] = flow.cap
            self._rate_arr[slot] = 0.0
            edge_slots = self._edge_slots
            for edge in flow.edges:
                lst = edge_slots.get(edge)
                if lst is None:
                    edge_slots[edge] = [slot]
                else:
                    lst.append(slot)
        self.flows_admitted += 1
        if self._metrics is not None:
            self._metrics.inc("net_flows_admitted_total")
            for edge in flow.edges:
                self._metrics.observe(
                    "net_edge_flow_depth", len(self._edge_flows[edge]),
                    edge=edge,
                )
        if not ordered and self._vectorize and self._incremental:
            changed = self._rerate_admission(flow, now)
        else:
            changed = self._reallocate(flow.edges, now, ordered=ordered)
        return flow, changed

    def finish_flow(
        self, flow: Flow, now: float, rerate: bool = True
    ) -> List[Flow]:
        """Remove a completed flow; returns flows whose rate changed.

        ``rerate=False`` removes the flow but defers the reallocation —
        the caller takes responsibility for invoking
        :meth:`rerate_edges` over the flow's edges before any rate is
        read.  The simulator uses this to batch the re-rates of
        simultaneous completions into a single pass (exact: no time
        passes between them, so the intermediate rates are observable
        by nothing).
        """
        flow.advance_to(now)
        del self._flows[flow.flow_id]
        if self._vectorize:
            self._flow_edge_idx.pop(flow.flow_id, None)
            slot = self._flow_slot.pop(flow.flow_id, None)
            if slot is not None:
                self._free_slots.append(slot)
                self._slot_flow[slot] = None  # type: ignore[call-overload]
                edge_slots = self._edge_slots
                for edge in flow.edges:
                    lst = edge_slots.get(edge)
                    if lst is not None:
                        lst.remove(slot)
                        if not lst:
                            del edge_slots[edge]
        for edge in flow.edges:
            peers = self._edge_flows.get(edge)
            if peers is not None:
                peers.pop(flow.flow_id, None)
                if not peers:
                    del self._edge_flows[edge]
                    self._share.pop(edge, None)
        if not rerate:
            return []
        return self._reallocate(flow.edges, now)

    def rerate_edges(self, edges: Iterable[str], now: float) -> List[Flow]:
        """Recompute shares and rates after deferred membership changes.

        Companion to ``finish_flow(..., rerate=False)``: one pass over
        the union of the deferred flows' edges.  The changed list is
        flow-id sorted (``ordered=True``) because the caller posts
        completion events from it, and the post sequence must not depend
        on the solver variant's internal iteration order.
        """
        return self._reallocate(edges, now)

    def abort_flow(self, flow: Flow, now: float) -> List[Flow]:
        """Tear down an in-flight flow mid-transfer (fault recovery).

        Identical plumbing to :meth:`finish_flow`; the distinct name keeps
        caller intent explicit — the payload has NOT fully arrived, and
        ``flow.remaining`` tells the recovery layer how much to retransmit.
        """
        return self.finish_flow(flow, now)

    def flows_on_edge(self, edge: str) -> List[Flow]:
        """Live flows currently crossing an edge (via the per-edge index)."""
        return [self._flows[fid] for fid in self._edge_flows.get(edge, ())]

    def edge_census(self) -> Dict[str, Tuple[int, int, float]]:
        """Per-occupied-edge ``(flows, zero_rate_flows, effective_capacity)``.

        The watchdog embeds this census in its stall diagnostics so a
        stuck run shows *where* bytes stopped moving.  Served entirely
        from the per-edge index — no global flow scan.
        """
        census: Dict[str, Tuple[int, int, float]] = {}
        for edge, flow_ids in self._edge_flows.items():
            zero = sum(1 for fid in flow_ids if self._flows[fid].rate <= 0.0)
            census[edge] = (len(flow_ids), zero, self.effective_capacity(edge))
        return census

    # ------------------------------------------------------------------

    def _edge_share(self, edge: str) -> float:
        """Per-flow share on one edge after one water-filling round.

        Flows capped below the equal share donate their spare capacity to
        the remaining flows of the edge.
        """
        if self._vectorize:
            lst = self._edge_slots.get(edge)
            if lst is None:
                self.shares_computed += 1
                return self.effective_capacity(edge)
            return self._edge_share_arr(
                edge, _np.array(lst, dtype=_np.intp)
            )
        self.shares_computed += 1
        flow_ids = self._edge_flows.get(edge, ())
        k = len(flow_ids)
        if k == 0:
            return self.effective_capacity(edge)
        capacity = self.effective_capacity(edge)
        equal = capacity / k
        capped = [
            self._flows[fid].cap
            for fid in flow_ids
            if self._flows[fid].cap < equal
        ]
        uncapped = k - len(capped)
        if uncapped == 0:
            return equal
        return (capacity - sum(capped)) / uncapped

    def _edge_share_arr(self, edge: str, slots_arr) -> float:
        """Vectorized :meth:`_edge_share` over an edge's member slots.

        Bit-identical to the scalar expression: the slot list preserves
        membership order (append on admit, remove-first on finish, like
        the id dict), the cap compare is the same float64 compare, and
        the donated-capacity sum uses ``np.cumsum`` — a strictly
        sequential left-to-right scan, unlike ``np.sum``'s pairwise
        reduction — so it reproduces Python ``sum``'s rounding exactly.
        """
        self.shares_computed += 1
        k = slots_arr.shape[0]
        capacity = self.effective_capacity(edge)
        equal = capacity / k
        caps = self._cap_arr[slots_arr]
        mask = caps < equal
        ncapped = int(_np.count_nonzero(mask))
        uncapped = k - ncapped
        if uncapped == 0:
            return equal
        if ncapped == 0:
            return capacity / uncapped
        total = float(_np.cumsum(caps[mask])[-1])
        return (capacity - total) / uncapped

    def _share_of(self, edge: str) -> float:
        """Cached share of a (clean) edge; computed on first demand."""
        share = self._share.get(edge)
        if share is None:
            share = self._share[edge] = self._edge_share(edge)
            if self._vectorize:
                self._share_arr[self._edge_ids[edge]] = share
        return share

    def _reallocate(
        self, dirty_edges: Iterable[str], now: float, ordered: bool = True
    ) -> List[Flow]:
        """Recompute rates after ``dirty_edges`` changed; returns changes.

        Incremental mode recomputes the share of each dirty edge and
        re-rates only the flows crossing one; clean edges are served from
        the share cache.  Reference mode recomputes every occupied edge
        and re-rates every live flow — same rates, no cache.  The changed
        list is sorted by flow id (unless the caller opts out with
        ``ordered=False``) so both modes hand the simulator the exact
        same event-post sequence.
        """
        self.reallocations += 1
        vectorize = self._vectorize
        if self._incremental:
            # Union of the dirty edges' member sets, in first-seen order.
            # ``dict.update`` merges the per-edge id dicts at C speed —
            # the same order a Python seen-set loop would produce.
            affected_ids: Dict[int, None] = {}
            for edge in dirty_edges:
                members = self._edge_flows.get(edge)
                if members is None:
                    self._share.pop(edge, None)
                    continue
                fresh = self._share[edge] = self._edge_share(edge)
                if vectorize:
                    self._share_arr[self._edge_ids[edge]] = fresh
                affected_ids.update(members)
            if vectorize and len(affected_ids) >= self._vectorize_min_flows:
                self.vectorized_passes += 1
                changed = self._rerate_vectorized(list(affected_ids), now)
            else:
                self.scalar_passes += 1
                flows = self._flows
                changed = self._rerate_scalar(
                    [flows[fid] for fid in affected_ids],
                    self._share_of,
                    now,
                )
        else:
            shares = {e: self._edge_share(e) for e in self._edge_flows}
            self.scalar_passes += 1
            changed = self._rerate_scalar(
                list(self._flows.values()), shares.__getitem__, now
            )
        if ordered:
            changed.sort(key=lambda f: f.flow_id)
        self.rate_updates += len(changed)
        if self._metrics is not None:
            self._metrics.inc("net_reallocations_total")
            if changed:
                self._metrics.inc("net_rate_changes_total", len(changed))
        return changed

    def _rerate_admission(self, flow: Flow, now: float) -> List[Flow]:
        """Decrease-only re-rate specialized for a flow admission.

        Admitting a flow can never *raise* an edge share: the fair share
        is a mediant that only drops as members join, and the Equation 1
        contention penalty only lowers effective capacity.  Every peer's
        rate is therefore exactly ``min(old_rate, fresh share of each
        dirty edge it crosses)`` — no minimum over its clean edges is
        needed, because those shares did not move and the stored rate
        already reflects them.  That turns the admission pass into pure
        numpy over the per-edge slot lists: gather old rates, combine
        the dirty-share candidates per slot (``np.minimum.at`` handles
        flows crossing several dirty edges, so the threshold compares
        the *combined* minimum against the old rate exactly like the
        generic loop), and touch only the flows that actually changed.

        Bit-identity with the generic path holds even though kept rates
        may carry sub-threshold drift: ``min`` is 1-Lipschitz, so the
        fast path's update decision and stored value always match the
        generic recompute's (see the golden determinism suite).

        The just-admitted flow itself (rate 0 → first allocation) takes
        the scalar expression over its own fresh shares.
        """
        edges = flow.edges
        edge_slots = self._edge_slots
        total = 0
        for edge in edges:
            total += len(edge_slots[edge])
        if total < self._vectorize_min_flows:
            return self._reallocate(edges, now, ordered=False)
        self.reallocations += 1
        self.vectorized_passes += 1
        share_arr = self._share_arr
        edge_ids = self._edge_ids
        share_map = self._share
        parts: List["_np.ndarray"] = []
        cands: List["_np.ndarray"] = []
        fresh_shares: List[float] = []
        for edge in edges:
            part = _np.array(edge_slots[edge], dtype=_np.intp)
            fresh = share_map[edge] = self._edge_share_arr(edge, part)
            share_arr[edge_ids[edge]] = fresh
            fresh_shares.append(fresh)
            parts.append(part)
            cands.append(_np.full(part.shape[0], fresh))
        if len(parts) == 1:
            slots_cat, cand_cat = parts[0], cands[0]
        else:
            slots_cat = _np.concatenate(parts)
            cand_cat = _np.concatenate(cands)
        rate_arr = self._rate_arr
        old = rate_arr[slots_cat]
        scratch = self._scratch
        scratch[slots_cat] = old
        _np.minimum.at(scratch, slots_cat, cand_cat)
        new = scratch[slots_cat]
        rel = self._rate_rel_epsilon
        if rel > 0.0:
            threshold = _np.maximum(ABS_RATE_EPS, rel * _np.abs(old))
        else:
            threshold = ABS_RATE_EPS
        rows = _np.nonzero(old - new > threshold)[0]
        changed: List[Flow] = []
        slot_flow = self._slot_flow
        seen = set()
        # The new flow's own rows (old == new == 0) never pass the
        # threshold; it is handled by the scalar expression below.
        for slot, rate in zip(slots_cat[rows].tolist(), new[rows].tolist()):
            if slot in seen:
                continue  # flow crosses several dirty edges
            seen.add(slot)
            peer = slot_flow[slot]
            if now > peer.last_update:
                peer.remaining = max(
                    0.0, peer.remaining - peer.rate * (now - peer.last_update)
                )
                peer.last_update = now
            peer.rate = rate
            rate_arr[slot] = rate
            changed.append(peer)
        new_rate = min(flow.cap, min(fresh_shares))
        threshold0 = ABS_RATE_EPS
        if rel > 0.0:
            threshold0 = max(threshold0, rel * abs(flow.rate))
        if abs(new_rate - flow.rate) > threshold0:
            flow.rate = new_rate  # last_update == now: just admitted
            rate_arr[self._flow_slot[flow.flow_id]] = new_rate
            changed.append(flow)
        self.rate_updates += len(changed)
        if self._metrics is not None:
            self._metrics.inc("net_reallocations_total")
            if changed:
                self._metrics.inc("net_rate_changes_total", len(changed))
        return changed

    def _rerate_scalar(self, affected, share, now: float) -> List[Flow]:
        """Reference per-flow re-rate loop (`share` maps edge -> share)."""
        vectorize = self._vectorize
        rel = self._rate_rel_epsilon
        changed: List[Flow] = []
        for flow in affected:
            new_rate = min(flow.cap, min(share(e) for e in flow.edges))
            threshold = ABS_RATE_EPS
            if rel > 0.0:
                threshold = max(threshold, rel * abs(flow.rate))
            if abs(new_rate - flow.rate) > threshold:
                flow.advance_to(now)
                flow.rate = new_rate
                if vectorize:
                    self._rate_arr[self._flow_slot[flow.flow_id]] = new_rate
                changed.append(flow)
        return changed

    def _rerate_vectorized(self, ids: List[int], now: float) -> List[Flow]:
        """Numpy re-rate of the flows in ``ids``; bit-identical to the
        scalar loop.

        Gathers each flow's cached edge-index array into one CSR-style
        concatenation, reads the (already-recomputed) per-edge shares
        straight out of the persistent ``_share_arr`` mirror, and takes
        per-flow segment minima with ``np.minimum.reduceat``.  Caps and
        previous rates come from the slot-indexed ``_cap_arr`` /
        ``_rate_arr`` mirrors, so the whole pass is C-side gathers and
        only the flows that actually changed are ever touched as Python
        objects.  ``min`` is exact and order-insensitive over float64 and
        the threshold compare uses the same float64 expression as the
        scalar path, so the changed set and every new rate are bitwise
        equal to the scalar loop's.
        """
        if not ids:
            return []
        idx_map = self._flow_edge_idx
        slot_map = self._flow_slot
        arrs = [idx_map[fid] for fid in ids]
        slots_list = [slot_map[fid] for fid in ids]
        n = len(arrs)
        cat = _np.concatenate(arrs)
        counts = _np.array([a.shape[0] for a in arrs], dtype=_np.intp)
        offsets = _np.zeros(n, dtype=_np.intp)
        _np.cumsum(counts[:-1], out=offsets[1:])
        slots = _np.array(slots_list, dtype=_np.intp)
        seg_min = _np.minimum.reduceat(self._share_arr[cat], offsets)
        caps = self._cap_arr[slots]
        old = self._rate_arr[slots]
        new = _np.minimum(caps, seg_min)
        rel = self._rate_rel_epsilon
        if rel > 0.0:
            threshold = _np.maximum(ABS_RATE_EPS, rel * _np.abs(old))
        else:
            threshold = ABS_RATE_EPS
        changed: List[Flow] = []
        rate_arr = self._rate_arr
        flows = self._flows
        idx = _np.nonzero(_np.abs(new - old) > threshold)[0]
        # One C-side conversion per pass; ``tolist`` yields plain Python
        # floats (same float64 bits), keeping numpy scalars out of the
        # flow state and out of every downstream report field.
        for i, rate in zip(idx.tolist(), new[idx].tolist()):
            flow = flows[ids[i]]
            # Inlined Flow.advance_to (same float expression, no call).
            if now > flow.last_update:
                flow.remaining = max(
                    0.0, flow.remaining - flow.rate * (now - flow.last_update)
                )
                flow.last_update = now
            flow.rate = rate
            rate_arr[slots_list[i]] = rate
            changed.append(flow)
        return changed


__all__ = ["ABS_RATE_EPS", "VECTORIZE_MIN_FLOWS", "Flow", "FlowNetwork"]

# Convenience targets for the ResCCL reproduction.

PYTHON ?= python

.PHONY: install test bench bench-fast examples experiments lint clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/ -q

test-fast:
	$(PYTHON) -m pytest tests/ -q -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q -s

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

experiments:
	@for id in $$($(PYTHON) -m repro experiment --list); do \
		echo "=== $$id ==="; \
		$(PYTHON) -m repro experiment $$id || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +

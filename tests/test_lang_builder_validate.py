"""Tests for the AlgoProgram builder, evaluator, and static validation."""

import pytest

from repro.ir.task import Collective, CommType
from repro.lang import (
    AlgoProgram,
    ProgramValidationError,
    ResCCLangEvalError,
    evaluate_module,
    parse_module,
    validate_program,
)
from repro.lang.builder import MAX_TRANSFERS
from repro.topology import multi_node, single_node


class TestBuilder:
    def test_create_defaults(self):
        program = AlgoProgram.create(8, Collective.ALLREDUCE, name="x")
        assert program.nranks == 8
        assert program.nchunks == 8
        assert program.header.nchannels == 4
        assert program.header.nwarps == 16
        assert len(program) == 0

    def test_transfer_records(self):
        program = AlgoProgram.create(4, Collective.ALLGATHER)
        t = program.transfer(0, 1, 0, 2, "recv")
        assert t.op is CommType.RECV
        assert program.max_step == 0

    def test_transfer_accepts_enum(self):
        program = AlgoProgram.create(4, Collective.ALLREDUCE)
        t = program.transfer(0, 1, 3, 2, CommType.RRC)
        assert t.op is CommType.RRC
        assert program.max_step == 3

    def test_empty_max_step(self):
        assert AlgoProgram.create(4, Collective.ALLGATHER).max_step == -1

    def test_stage_of(self):
        program = AlgoProgram.create(4, Collective.ALLREDUCE)
        program.stage_starts = [0, 3, 6]
        assert program.stage_of(0) == 0
        assert program.stage_of(2) == 0
        assert program.stage_of(3) == 1
        assert program.stage_of(99) == 2
        assert program.num_stages == 3

    def test_header_bounds(self):
        from repro.lang.ast import Header, ResCCLangError

        with pytest.raises(ResCCLangError):
            Header(nranks=1)
        with pytest.raises(ResCCLangError):
            Header(nranks=4, nchannels=0)


class TestEvaluator:
    def test_division_is_integer(self):
        from repro.lang.parser import parse_program

        program = parse_program(
            "def ResCCLAlgo(nRanks=8):\n    transfer(7 / 2, 1, 0, 0, recv)\n"
        )
        assert program.transfers[0].src == 3

    def test_division_by_zero(self):
        module = parse_module(
            "def ResCCLAlgo(nRanks=8):\n    transfer(1 / 0, 1, 0, 0, recv)\n"
        )
        with pytest.raises(ResCCLangEvalError, match="division by zero"):
            evaluate_module(module)

    def test_modulo_by_zero(self):
        module = parse_module(
            "def ResCCLAlgo(nRanks=8):\n    transfer(1 % 0, 1, 0, 0, recv)\n"
        )
        with pytest.raises(ResCCLangEvalError, match="modulo by zero"):
            evaluate_module(module)

    def test_undefined_identifier(self):
        module = parse_module(
            "def ResCCLAlgo(nRanks=8):\n    transfer(bogus, 1, 0, 0, recv)\n"
        )
        with pytest.raises(ResCCLangEvalError, match="undefined identifier"):
            evaluate_module(module)

    def test_runaway_loop_capped(self):
        assert MAX_TRANSFERS >= 1_000_000  # sanity on the safety valve

    def test_loop_variable_scoping(self):
        from repro.lang.parser import parse_program

        program = parse_program(
            "def ResCCLAlgo(nRanks=8):\n"
            "    for i in range(0, 3):\n"
            "        x = i * 2\n"
            "    transfer(x, x + 1, 0, 0, recv)\n"
        )
        # DSL scoping is flat (like the paper's examples): x survives.
        assert program.transfers[0].src == 4


class TestValidation:
    def test_valid_program_passes(self):
        from repro.algorithms import hm_allreduce

        report = validate_program(hm_allreduce(2, 4), multi_node(2, 4))
        assert report.ok
        report.raise_if_failed()  # no-op

    def test_empty_program(self):
        program = AlgoProgram.create(4, Collective.ALLGATHER)
        report = validate_program(program)
        assert not report.ok
        assert any("no transfers" in issue for issue in report.issues)

    def test_rank_out_of_range(self):
        program = AlgoProgram.create(4, Collective.ALLGATHER)
        program.transfer(0, 1, 0, 0)
        program.transfers.append(
            __import__("repro.ir.task", fromlist=["Transfer"]).Transfer(
                src=0, dst=7, step=0, chunk=1, op=CommType.RECV
            )
        )
        report = validate_program(program)
        assert any("dst rank 7" in issue for issue in report.issues)

    def test_chunk_out_of_range(self):
        program = AlgoProgram.create(4, Collective.ALLGATHER)
        program.transfer(0, 1, 0, 99)
        report = validate_program(program)
        assert any("chunk 99" in issue for issue in report.issues)

    def test_duplicate_transfer(self):
        program = AlgoProgram.create(4, Collective.ALLGATHER)
        program.transfer(0, 1, 0, 0)
        program.transfer(0, 1, 0, 0)
        report = validate_program(program)
        assert any("duplicate" in issue for issue in report.issues)

    def test_write_conflict(self):
        program = AlgoProgram.create(4, Collective.ALLREDUCE)
        program.transfer(0, 2, 0, 1, "rrc")
        program.transfer(1, 2, 0, 1, "rrc")
        report = validate_program(program)
        assert any("write conflict" in issue for issue in report.issues)

    def test_cluster_mismatch(self):
        program = AlgoProgram.create(4, Collective.ALLGATHER)
        program.transfer(0, 1, 0, 0)
        report = validate_program(program, single_node(8))
        assert any("cluster has 8" in issue for issue in report.issues)

    def test_raise_if_failed(self):
        program = AlgoProgram.create(4, Collective.ALLGATHER)
        with pytest.raises(ProgramValidationError):
            validate_program(program).raise_if_failed()

    def test_error_message_truncates(self):
        program = AlgoProgram.create(4, Collective.ALLGATHER)
        for chunk in range(90, 110):
            program.transfers.append(
                __import__("repro.ir.task", fromlist=["Transfer"]).Transfer(
                    src=0, dst=1, step=0, chunk=chunk, op=CommType.RECV
                )
            )
        with pytest.raises(ProgramValidationError, match="more"):
            validate_program(program).raise_if_failed()
